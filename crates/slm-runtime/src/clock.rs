//! Virtual time for the serving runtime.
//!
//! The overload machinery (queueing, deadlines, drain) needs a notion of
//! "now" that is *not* the wall clock: wall time makes overload scenarios
//! irreproducible, and the whole verification substrate already runs on
//! simulated milliseconds ([`crate::fallible::simulated_latency_ms`],
//! `RetryPolicy` backoffs, stall inflation). [`Clock`] is the seam, and
//! [`VirtualClock`] the deterministic default: time only moves when the
//! runtime explicitly charges it, extending the seed-keyed determinism of
//! [`crate::faults`] from *what happens* to *when it happens*.
//!
//! [`WallClock`] exists for real deployments; with it the serving layer is
//! honest about elapsed time but gives up bitwise reproducibility, so every
//! test and benchmark in this workspace uses [`VirtualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonically non-decreasing milliseconds.
///
/// `advance_ms` is how simulated work charges its cost: a virtual clock
/// moves exactly that far, a wall clock ignores it (real work already took
/// real time).
pub trait Clock: Send + Sync {
    /// Milliseconds since this clock's epoch.
    fn now_ms(&self) -> f64;

    /// Charge `ms` of simulated work. Must never move time backwards;
    /// non-finite or negative charges are ignored.
    fn advance_ms(&self, ms: f64);
}

/// Deterministic simulated time: starts at 0, moves only via
/// [`Clock::advance_ms`]. Interior-mutable so shared references can charge
/// time (the bits of an `f64` live in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_bits: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock pre-advanced to `start_ms`.
    pub fn starting_at(start_ms: f64) -> Self {
        let clock = Self::new();
        clock.advance_ms(start_ms);
        clock
    }

    /// Move time forward to `target_ms` if it is ahead of now (no-op
    /// otherwise — time never rewinds).
    pub fn advance_to_ms(&self, target_ms: f64) {
        let now = self.now_ms();
        if target_ms > now {
            self.advance_ms(target_ms - now);
        }
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::Acquire))
    }

    fn advance_ms(&self, ms: f64) {
        if !(ms.is_finite() && ms > 0.0) {
            return;
        }
        // Single-writer in the serving loop, but stay correct under races.
        let mut current = self.now_bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(current) + ms).to_bits();
            match self.now_bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

// Both clocks double as observability time sources, so spans and flight
// records in `hallu-obs` are stamped by the same timeline the runtime
// itself runs on — deterministic under a VirtualClock, honest under a
// WallClock.
impl hallu_obs::TimeSource for VirtualClock {
    fn now_ms(&self) -> f64 {
        Clock::now_ms(self)
    }
}

/// Real elapsed time since construction. [`Clock::advance_ms`] is a no-op.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1000.0
    }

    fn advance_ms(&self, _ms: f64) {}
}

impl hallu_obs::TimeSource for WallClock {
    fn now_ms(&self) -> f64 {
        Clock::now_ms(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance_ms(12.5);
        c.advance_ms(7.5);
        assert_eq!(c.now_ms(), 20.0);
    }

    #[test]
    fn virtual_clock_ignores_bad_charges() {
        let c = VirtualClock::new();
        c.advance_ms(-5.0);
        c.advance_ms(f64::NAN);
        c.advance_ms(f64::INFINITY);
        c.advance_ms(0.0);
        assert_eq!(c.now_ms(), 0.0);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = VirtualClock::starting_at(100.0);
        c.advance_to_ms(50.0);
        assert_eq!(c.now_ms(), 100.0);
        c.advance_to_ms(150.0);
        assert_eq!(c.now_ms(), 150.0);
    }

    #[test]
    fn virtual_clock_is_deterministic_across_runs() {
        let run = || {
            let c = VirtualClock::new();
            for i in 0..100 {
                c.advance_ms(0.1 * f64::from(i));
            }
            c.now_ms().to_bits()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_source_mirrors_clock() {
        use hallu_obs::TimeSource;
        let c = VirtualClock::starting_at(42.0);
        assert_eq!(TimeSource::now_ms(&c), 42.0);
        c.advance_ms(8.0);
        assert_eq!(TimeSource::now_ms(&c), 50.0);
    }

    #[test]
    fn wall_clock_moves_on_its_own_and_ignores_advance() {
        let c = WallClock::new();
        let a = c.now_ms();
        c.advance_ms(1_000_000.0);
        let b = c.now_ms();
        assert!(b < 1_000_000.0, "advance must be a no-op, got {b}");
        assert!(b >= a, "wall time is monotone");
    }
}
