//! Transformer model hyperparameters.

/// Numeric precision of the weight storage and GEMM kernels.
///
/// `F32` is the reference path; `Int8` stores projection weights as int8 with
/// per-output-row scales and computes with exact-integer accumulation (see
/// `tensor::int8`). Both paths are bitwise-reproducible from `(seed, config)`;
/// int8 trades a bounded logit perturbation (gated by the detection-AUC eval
/// in `quant_sweep`) for ~4× less weight traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-precision f32 weights and kernels — the reference path.
    #[default]
    F32,
    /// Int8 weights with per-row scales and dynamic activation quantization.
    Int8,
}

impl Precision {
    /// Stable lowercase label for metrics, records and logs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Hyperparameters of a decoder-only transformer.
///
/// Defaults describe the "tiny" configuration used in tests; the
/// [`ModelConfig::qwen2_like`] and [`ModelConfig::minicpm_like`] constructors
/// mirror the shapes of the paper's two SLMs scaled down by ~1000× so the
/// engine remains laptop-runnable (the real checkpoints are unavailable
/// offline — see DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Vocabulary size (including special tokens).
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention heads. Must divide `hidden`.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention). Must divide `n_heads`.
    pub n_kv_heads: usize,
    /// Inner dimension of the SwiGLU feed-forward network.
    pub ffn_hidden: usize,
    /// Maximum sequence length the KV cache allocates for.
    pub max_seq_len: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Epsilon for RMSNorm.
    pub norm_eps: f32,
    /// Weight/GEMM precision the engine should run this model at.
    pub precision: Precision,
}

impl ModelConfig {
    /// Tiny configuration for fast tests.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 32,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            ffn_hidden: 64,
            max_seq_len: 256,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            precision: Precision::F32,
        }
    }

    /// A Qwen2-1.5B-shaped model scaled down ~1000×: GQA with 2 KV heads,
    /// SwiGLU FFN with ~2.7× expansion.
    pub fn qwen2_like(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 96,
            n_layers: 4,
            n_heads: 6,
            n_kv_heads: 2,
            ffn_hidden: 256,
            max_seq_len: 512,
            rope_theta: 1_000_000.0,
            norm_eps: 1e-6,
            precision: Precision::F32,
        }
    }

    /// A wider Qwen2-0.5B-proportioned preset. At `hidden = 96` and below,
    /// prefill time is dominated by precision-independent work (softmax
    /// `exp`, RoPE, norms, the O(n²) attention walk), which caps what any
    /// GEMM optimization can show end to end. This shape keeps the weight
    /// GEMMs dominant — the regime every real half-billion-parameter SLM
    /// lives in — and is what the quantization benchmarks measure.
    pub fn qwen2_wide(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 256,
            n_layers: 4,
            n_heads: 8,
            n_kv_heads: 2,
            ffn_hidden: 1024,
            max_seq_len: 512,
            rope_theta: 1_000_000.0,
            norm_eps: 1e-6,
            precision: Precision::F32,
        }
    }

    /// A MiniCPM-2B-shaped model scaled down ~1000×: MHA (no GQA), wider FFN.
    pub fn minicpm_like(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 64,
            n_layers: 6,
            n_heads: 8,
            n_kv_heads: 8,
            ffn_hidden: 160,
            max_seq_len: 512,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            precision: Precision::F32,
        }
    }

    /// Same configuration with a different [`Precision`] — the per-model knob
    /// the ensemble uses to mix int8 screeners with an f32 tie-breaker.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    /// How many query heads share one KV head.
    pub fn group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Total parameter count implied by this configuration.
    pub fn num_parameters(&self) -> usize {
        let h = self.hidden;
        let kv_dim = self.n_kv_heads * self.head_dim();
        let per_layer = h * h            // Wq
            + h * kv_dim                  // Wk
            + h * kv_dim                  // Wv
            + h * h                       // Wo
            + 3 * h * self.ffn_hidden     // gate, up, down
            + 2 * h; // two norm gains
        self.vocab_size * h               // embedding
            + self.n_layers * per_layer
            + h                           // final norm
            + self.vocab_size * h // lm head (untied)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.hidden.is_multiple_of(self.n_heads) {
            return Err(format!(
                "hidden {} not divisible by n_heads {}",
                self.hidden, self.n_heads
            ));
        }
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!(
                "n_heads {} not divisible by n_kv_heads {}",
                self.n_heads, self.n_kv_heads
            ));
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(format!(
                "head_dim {} must be even for RoPE",
                self.head_dim()
            ));
        }
        if self.vocab_size == 0 || self.n_layers == 0 || self.max_seq_len == 0 {
            return Err("vocab_size, n_layers and max_seq_len must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_configs_are_valid() {
        for cfg in [
            ModelConfig::tiny(128),
            ModelConfig::qwen2_like(1024),
            ModelConfig::minicpm_like(1024),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn head_dim_and_groups() {
        let cfg = ModelConfig::qwen2_like(1024);
        assert_eq!(cfg.head_dim(), 16);
        assert_eq!(cfg.group_size(), 3);
    }

    #[test]
    fn invalid_heads_rejected() {
        let mut cfg = ModelConfig::tiny(128);
        cfg.n_heads = 5;
        assert!(cfg.validate().is_err());
        cfg.n_heads = 4;
        cfg.n_kv_heads = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn odd_head_dim_rejected() {
        let mut cfg = ModelConfig::tiny(128);
        cfg.hidden = 36; // head_dim 9, odd
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parameter_count_scales_with_layers() {
        let mut a = ModelConfig::tiny(128);
        let pa = a.num_parameters();
        a.n_layers += 1;
        assert!(a.num_parameters() > pa);
    }

    #[test]
    fn qwen_like_is_bigger_than_tiny() {
        assert!(
            ModelConfig::qwen2_like(512).num_parameters() > ModelConfig::tiny(512).num_parameters()
        );
    }
}
