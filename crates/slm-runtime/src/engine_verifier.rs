//! A [`YesNoVerifier`] backed by the real transformer engine.
//!
//! This is the paper's deployment exactly: a locally hosted model, one
//! forward pass per (question, context, sentence), `P(token_1 = "yes")`
//! read from the logits. With trained weights this is the production slot;
//! with the synthetic weights available offline it is the *mechanical* path
//! the behavioral simulators stand in for — and the two are interchangeable
//! behind the trait, which is the point.

use std::sync::Arc;

use crate::bpe::Bpe;
use crate::model::{InferenceModel, TransformerLM};
use crate::paged::PagedPrefixCache;
use crate::prefix::PrefixCache;
use crate::prob::{p_yes, p_yes_paged, p_yes_prefix};
use crate::verifier::{VerificationRequest, YesNoVerifier};

/// A verifier slot running an actual engine — the f32 [`TransformerLM`] by
/// default, or the int8 `QuantizedLM` via the `M` parameter. Precision is a
/// per-member knob: an ensemble can mix int8 screeners with an f32
/// tie-breaker, and the AUC eval gate (`quant_sweep`) bounds the verdict
/// drift that mixing introduces.
pub struct EngineVerifier<M: InferenceModel = TransformerLM> {
    name: String,
    model: M,
    tokenizer: Bpe,
    /// When set, `(question, context)` prefixes are prefilled once and forked
    /// per sentence — bitwise-neutral to scores (see [`crate::prefix`]).
    prefix_cache: Option<Arc<PrefixCache>>,
    /// When set, takes priority over `prefix_cache`: forks are O(blocks)
    /// page-handle clones from the shared pool, with [`crate::paged`]'s
    /// exhaustion guarantee (degrade to the uncached path, same bits).
    paged_cache: Option<Arc<PagedPrefixCache>>,
}

impl<M: InferenceModel> EngineVerifier<M> {
    /// Wrap a model + tokenizer under a display name.
    pub fn new(name: impl Into<String>, model: M, tokenizer: Bpe) -> Self {
        Self {
            name: name.into(),
            model,
            tokenizer,
            prefix_cache: None,
            paged_cache: None,
        }
    }

    /// Attach a shared-prefix KV cache. The cache may be shared across
    /// verifiers: snapshots are keyed by verifier name, so models never read
    /// each other's KV state.
    pub fn with_prefix_cache(mut self, cache: Arc<PrefixCache>) -> Self {
        self.prefix_cache = Some(cache);
        self
    }

    /// Attach a paged prefix cache backed by a shared page pool. Dispatch
    /// priority is paged > contiguous prefix > plain; all three produce
    /// bitwise-identical scores, so the choice is purely a cost/footprint
    /// knob.
    pub fn with_paged_cache(mut self, cache: Arc<PagedPrefixCache>) -> Self {
        self.paged_cache = Some(cache);
        self
    }

    /// The attached prefix cache, if any.
    pub fn prefix_cache(&self) -> Option<&Arc<PrefixCache>> {
        self.prefix_cache.as_ref()
    }

    /// The attached paged prefix cache, if any.
    pub fn paged_cache(&self) -> Option<&Arc<PagedPrefixCache>> {
        self.paged_cache.as_ref()
    }

    /// The wrapped model (inspection).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The wrapped tokenizer.
    pub fn tokenizer(&self) -> &Bpe {
        &self.tokenizer
    }
}

impl<M: InferenceModel + Send + Sync> YesNoVerifier for EngineVerifier<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn p_yes(&self, request: &VerificationRequest<'_>) -> f64 {
        if let Some(cache) = &self.paged_cache {
            return p_yes_paged(
                &self.model,
                &self.name,
                cache,
                &self.tokenizer,
                request.question,
                request.context,
                request.response,
            );
        }
        match &self.prefix_cache {
            Some(cache) => p_yes_prefix(
                &self.model,
                &self.name,
                cache,
                &self.tokenizer,
                request.question,
                request.context,
                request.response,
            ),
            None => p_yes(
                &self.model,
                &self.tokenizer,
                request.question,
                request.context,
                request.response,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn verifier() -> EngineVerifier {
        let bpe = Bpe::train(
            &[
                "the store operates from 9 am to 5 pm",
                "is the answer correct according to the context reply yes or no",
            ],
            250,
        );
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 41);
        EngineVerifier::new("engine-tiny", model, bpe)
    }

    #[test]
    fn implements_the_trait() {
        let v = verifier();
        let req = VerificationRequest::new("hours?", "the store operates from 9 am", "9 am");
        let p = v.p_yes(&req);
        assert!((0.0..=1.0).contains(&p));
        assert!(v.exposes_probabilities());
        assert_eq!(v.name(), "engine-tiny");
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let v = verifier();
        let a = v.p_yes(&VerificationRequest::new("q", "ctx 9 am", "9 am"));
        let b = v.p_yes(&VerificationRequest::new("q", "ctx 9 am", "9 am"));
        let c = v.p_yes(&VerificationRequest::new("q", "ctx 9 am", "5 pm"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_cached_scores_are_bit_identical_to_uncached() {
        let plain = verifier();
        let cached = verifier().with_prefix_cache(Arc::new(PrefixCache::new(
            crate::prefix::PrefixCacheConfig::default(),
        )));
        // Several sentences against the same (question, context) cell: the
        // first builds the snapshot, the rest fork it.
        let sentences = ["9 am", "5 pm", "9 am to 5 pm", "the store operates"];
        for r in sentences {
            let req = VerificationRequest::new("hours?", "the store operates from 9 am", r);
            assert_eq!(plain.p_yes(&req), cached.p_yes(&req), "sentence {r:?}");
        }
        let stats = cached.prefix_cache().expect("attached").stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.hits, sentences.len() as u64 - 1);
    }

    #[test]
    fn paged_cached_scores_are_bit_identical_and_take_priority() {
        use crate::paged::{PagedKvPool, PagedPoolConfig};
        let plain = verifier();
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
            plain.model().config(),
            64,
        )));
        let paged_cache = Arc::new(PagedPrefixCache::new(
            Arc::clone(&pool),
            crate::prefix::PrefixCacheConfig::default(),
        ));
        let contiguous = Arc::new(PrefixCache::new(crate::prefix::PrefixCacheConfig::default()));
        // Attach BOTH caches: the paged one must win the dispatch.
        let cached = verifier()
            .with_prefix_cache(Arc::clone(&contiguous))
            .with_paged_cache(Arc::clone(&paged_cache));
        let sentences = ["9 am", "5 pm", "9 am to 5 pm", "the store operates"];
        for r in sentences {
            let req = VerificationRequest::new("hours?", "the store operates from 9 am", r);
            assert_eq!(plain.p_yes(&req), cached.p_yes(&req), "sentence {r:?}");
        }
        let stats = cached.paged_cache().expect("attached").stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.hits, sentences.len() as u64 - 1);
        assert_eq!(
            contiguous.stats().hits + contiguous.stats().misses,
            0,
            "contiguous cache bypassed when a paged cache is attached"
        );
        assert!(pool.stats().pages_live > 0, "snapshot holds pool pages");
    }

    #[test]
    fn slots_into_the_detector_alongside_simulators() {
        // the whole point of the trait: engine-backed and behavioral
        // verifiers are interchangeable ensemble members
        let boxed: Vec<Box<dyn YesNoVerifier>> =
            vec![Box::new(verifier()), Box::new(crate::profiles::qwen2_sim())];
        let req = VerificationRequest::new("q", "the store operates from 9 am", "9 am");
        for v in &boxed {
            let p = v.p_yes(&req);
            assert!((0.0..=1.0).contains(&p), "{}: {p}", v.name());
        }
    }
}
