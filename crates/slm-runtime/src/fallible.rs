//! Fallible verification: the I/O-shaped face of a verifier.
//!
//! [`YesNoVerifier`] models the paper's idealized Eq. 2 oracle — every query
//! returns a probability. Real deployments call a local inference server or a
//! remote API, where queries time out, fail transiently, or return garbage.
//! [`FallibleVerifier`] is that honest signature: `Result<ScoredProbe,
//! VerifierError>` plus an observed latency, so the resilient executor in
//! `hallu-core` can retry, time out, and trip circuit breakers against it.
//!
//! [`Reliable`] adapts any [`YesNoVerifier`] into the fallible world: it never
//! errors, and reports a deterministic simulated latency (a pure function of
//! model name and request, so parallel and sequential runs observe identical
//! timings). Fault injection is layered on top by [`crate::faults`].

use std::fmt;

use crate::sim::{fnv1a, splitmix64};
use crate::verifier::{VerificationRequest, YesNoVerifier};

/// Why a verification call produced no usable score.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifierError {
    /// The call exceeded its latency budget.
    Timeout {
        /// The budget the caller imposed, in simulated milliseconds.
        budget_ms: f64,
        /// How long the call would have taken.
        observed_ms: f64,
    },
    /// A transient failure (connection reset, 5xx, decode error): worth
    /// retrying.
    Transient {
        /// Short machine-readable cause.
        reason: &'static str,
    },
    /// The backing model is down; retrying now cannot help.
    Outage,
    /// The model answered, but the payload was not a probability.
    ///
    /// Produced by callers that validate scores at the boundary; the fault
    /// injector itself delivers garbage as `Ok` payloads precisely so that
    /// downstream quarantine logic is exercised.
    InvalidScore {
        /// The offending value (may be NaN or infinite).
        value: f64,
    },
}

impl VerifierError {
    /// Whether retrying the same call can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Timeout { .. } | Self::Transient { .. })
    }
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout {
                budget_ms,
                observed_ms,
            } => {
                write!(
                    f,
                    "timed out: {observed_ms:.1}ms observed > {budget_ms:.1}ms budget"
                )
            }
            Self::Transient { reason } => write!(f, "transient failure: {reason}"),
            Self::Outage => write!(f, "model outage"),
            Self::InvalidScore { value } => write!(f, "invalid score {value}"),
        }
    }
}

impl std::error::Error for VerifierError {}

/// A successful verification probe: the score plus how long it took.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredProbe {
    /// `P(token_1 = "yes")` as reported by the model. Not validated here:
    /// faulty backends may report values outside `[0, 1]` or non-finite
    /// numbers, which the scoring layer quarantines.
    pub p_yes: f64,
    /// Simulated wall-clock cost of the call in milliseconds.
    pub latency_ms: f64,
}

/// A yes/no verifier that can fail.
///
/// This is the only surface the resilient executor talks to; infallible
/// verifiers enter through [`Reliable`].
pub trait FallibleVerifier: Send + Sync {
    /// Model name, stable across calls (keys per-model statistics, breaker
    /// state, and health counters).
    fn name(&self) -> &str;

    /// Attempt one verification probe.
    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError>;

    /// Attempt one verification probe with the caller naming the attempt
    /// ordinal explicitly.
    ///
    /// This is the episode-pure face of the verifier: the outcome may depend
    /// only on `(request, attempt)`, never on how many times the pair was
    /// asked before. Repeating `try_p_yes_attempt(req, k)` must reproduce the
    /// same result bit-for-bit, which is what makes memoizing a whole probe
    /// episode (attempts `0..n`) semantically invisible — a cache hit replays
    /// exactly what a recomputation would produce. Implementations whose
    /// outcome is already independent of call history (the default) simply
    /// delegate to [`FallibleVerifier::try_p_yes`]; stateful wrappers like the
    /// fault injector key their draws off `attempt` instead of an internal
    /// counter.
    fn try_p_yes_attempt(
        &self,
        request: &VerificationRequest<'_>,
        attempt: u32,
    ) -> Result<ScoredProbe, VerifierError> {
        let _ = attempt;
        self.try_p_yes(request)
    }

    /// See [`YesNoVerifier::exposes_probabilities`].
    fn exposes_probabilities(&self) -> bool {
        true
    }
}

impl FallibleVerifier for Box<dyn FallibleVerifier> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError> {
        (**self).try_p_yes(request)
    }

    fn try_p_yes_attempt(
        &self,
        request: &VerificationRequest<'_>,
        attempt: u32,
    ) -> Result<ScoredProbe, VerifierError> {
        (**self).try_p_yes_attempt(request, attempt)
    }

    fn exposes_probabilities(&self) -> bool {
        (**self).exposes_probabilities()
    }
}

/// Deterministic simulated service time for one probe.
///
/// Each model gets a stable base latency from its name (8–40 ms, mimicking
/// the spread between a 1.5B and a 2B model on shared hardware); each request
/// adds name-and-input-keyed jitter of up to half the base. Pure function of
/// its arguments: no clocks, no call counters.
pub fn simulated_latency_ms(model: &str, request: &VerificationRequest<'_>) -> f64 {
    let base = 8.0 + (splitmix64(fnv1a(0x1a7e_0c15, &[model])) % 33) as f64;
    let h = fnv1a(
        0x1a7e_0c15,
        &[model, request.question, request.context, request.response],
    );
    let jitter = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
    base + jitter * base * 0.5
}

/// Adapts an infallible [`YesNoVerifier`] to the [`FallibleVerifier`]
/// interface. Never errors; latency comes from [`simulated_latency_ms`].
#[derive(Debug, Clone)]
pub struct Reliable<V> {
    inner: V,
}

impl<V: YesNoVerifier> Reliable<V> {
    /// Wrap a verifier.
    pub fn new(inner: V) -> Self {
        Self { inner }
    }

    /// The wrapped verifier.
    pub fn inner(&self) -> &V {
        &self.inner
    }
}

impl<V: YesNoVerifier> FallibleVerifier for Reliable<V> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError> {
        Ok(ScoredProbe {
            p_yes: self.inner.p_yes(request),
            latency_ms: simulated_latency_ms(self.inner.name(), request),
        })
    }

    fn exposes_probabilities(&self) -> bool {
        self.inner.exposes_probabilities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl YesNoVerifier for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.0
        }
    }

    #[test]
    fn reliable_preserves_scores_and_never_fails() {
        let v = Reliable::new(Constant(0.42));
        let req = VerificationRequest::new("q", "c", "r");
        let probe = v.try_p_yes(&req).unwrap();
        assert_eq!(probe.p_yes, 0.42);
        assert!(probe.latency_ms > 0.0);
        assert_eq!(v.name(), "constant");
        assert!(v.exposes_probabilities());
    }

    #[test]
    fn latency_is_deterministic_per_input_and_varies_across_inputs() {
        let a = VerificationRequest::new("q", "c", "r1");
        let b = VerificationRequest::new("q", "c", "r2");
        assert_eq!(simulated_latency_ms("m", &a), simulated_latency_ms("m", &a));
        assert_ne!(simulated_latency_ms("m", &a), simulated_latency_ms("m", &b));
        assert_ne!(
            simulated_latency_ms("m", &a),
            simulated_latency_ms("other", &a)
        );
        let lat = simulated_latency_ms("qwen2-sim", &a);
        assert!((8.0..=62.0).contains(&lat), "{lat}");
    }

    #[test]
    fn retryability_classification() {
        assert!(VerifierError::Timeout {
            budget_ms: 1.0,
            observed_ms: 2.0
        }
        .is_retryable());
        assert!(VerifierError::Transient { reason: "reset" }.is_retryable());
        assert!(!VerifierError::Outage.is_retryable());
        assert!(!VerifierError::InvalidScore { value: f64::NAN }.is_retryable());
    }

    #[test]
    fn errors_display() {
        let e = VerifierError::Timeout {
            budget_ms: 50.0,
            observed_ms: 120.0,
        };
        assert!(e.to_string().contains("timed out"));
        assert!(VerifierError::Outage.to_string().contains("outage"));
    }

    #[test]
    fn boxed_trait_objects_delegate() {
        let boxed: Box<dyn FallibleVerifier> = Box::new(Reliable::new(Constant(0.5)));
        let req = VerificationRequest::new("q", "c", "r");
        assert_eq!(boxed.try_p_yes(&req).unwrap().p_yes, 0.5);
        assert_eq!(FallibleVerifier::name(&boxed), "constant");
    }
}
