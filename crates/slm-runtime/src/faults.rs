//! Deterministic fault injection for verifiers.
//!
//! [`FaultInjector`] wraps any [`FallibleVerifier`] and makes it misbehave on
//! a seeded, reproducible schedule: transient errors, stalls that blow the
//! latency budget, garbage scores (NaN, negative, > 1, infinite), hard
//! outages, and call-ordinal outage bursts.
//!
//! **Determinism contract.** Except for [`FaultProfile::outage_window`],
//! every fault decision is a pure function of `(profile.seed, model name,
//! request text, per-request attempt number)` — never of global call order
//! or wall clock. Two runs that issue the same logical calls see the same
//! faults even when thread interleaving differs, which is what lets the
//! `parallel: true/false` bitwise-equality property hold under injected
//! faults. Outage windows are the exception (a burst is inherently a
//! position-in-time notion), so they are meant for sequential scenarios.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hallu_obs::{Counter, Obs};

use crate::fallible::{FallibleVerifier, ScoredProbe, VerifierError};
use crate::sim::{fnv1a, splitmix64};
use crate::verifier::VerificationRequest;

/// Stall inflation factor: a stalled call takes ~40x its normal latency,
/// far past any sane per-model budget.
pub const STALL_FACTOR: f64 = 40.0;

/// The garbage payloads a faulty backend may report instead of a probability.
pub const GARBAGE_SCORES: [f64; 4] = [f64::NAN, -0.25, 1.5, f64::INFINITY];

/// What faults to inject, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed for all fault draws; same seed, same faults.
    pub seed: u64,
    /// Per-attempt probability of a transient error (`Err(Transient)`).
    pub transient_rate: f64,
    /// Per-attempt probability of a stall: the call "succeeds" but its
    /// latency is inflated by [`STALL_FACTOR`], exceeding any deadline.
    pub stall_rate: f64,
    /// Per-attempt probability of a garbage score delivered as `Ok`: the
    /// failure mode that only downstream quarantine can catch.
    pub garbage_rate: f64,
    /// The model is completely down: every call is `Err(Outage)`.
    pub hard_down: bool,
    /// Burst outage over call ordinals `[start, start + len)`. Order-based,
    /// so only meaningful for sequential execution; prefer `hard_down` for
    /// order-free scenarios.
    pub outage_window: Option<(u64, u64)>,
}

impl FaultProfile {
    /// No faults at all.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            stall_rate: 0.0,
            garbage_rate: 0.0,
            hard_down: false,
            outage_window: None,
        }
    }

    /// A mixed profile where each attempt misbehaves with probability
    /// `rate`, split evenly between transient errors, stalls, and garbage
    /// scores. This is the knob the chaos benchmark sweeps.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let share = rate.clamp(0.0, 1.0) / 3.0;
        Self {
            seed,
            transient_rate: share,
            stall_rate: share,
            garbage_rate: share,
            hard_down: false,
            outage_window: None,
        }
    }

    /// A permanently-down model.
    pub fn down(seed: u64) -> Self {
        Self {
            hard_down: true,
            ..Self::none(seed)
        }
    }
}

/// Cumulative counts of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Calls that reached the injector.
    pub calls: u64,
    /// `Err(Transient)` results injected.
    pub transients: u64,
    /// Stalled (latency-inflated) successes.
    pub stalls: u64,
    /// Garbage scores delivered as `Ok`.
    pub garbage: u64,
    /// `Err(Outage)` results (hard-down or window).
    pub outages: u64,
}

/// Registry counter handles for one injector, labeled by model and fault
/// kind. Disconnected (free) unless [`FaultInjector::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct FaultCounters {
    calls: Counter,
    transients: Counter,
    stalls: Counter,
    garbage: Counter,
    outages: Counter,
}

impl FaultCounters {
    fn register(obs: &Obs, model: &str) -> Self {
        let help = "Faults injected by the deterministic fault injector";
        let kind = |k: &str| {
            obs.counter(
                "hallu_faults_injected_total",
                help,
                &[("model", model), ("kind", k)],
            )
        };
        Self {
            calls: obs.counter(
                "hallu_faults_calls_total",
                "Verifier calls that reached the fault injector",
                &[("model", model)],
            ),
            transients: kind("transient"),
            stalls: kind("stall"),
            garbage: kind("garbage"),
            outages: kind("outage"),
        }
    }
}

/// A [`FallibleVerifier`] wrapper that injects faults per [`FaultProfile`].
pub struct FaultInjector<F> {
    inner: F,
    profile: FaultProfile,
    calls: AtomicU64,
    transients: AtomicU64,
    stalls: AtomicU64,
    garbage: AtomicU64,
    outages: AtomicU64,
    obs: FaultCounters,
    /// Per-request attempt counters, keyed by request hash. Retries of the
    /// same request get fresh fault draws (attempt 0, 1, 2, ...) without
    /// coupling to global call order.
    attempts: Mutex<HashMap<u64, u64>>,
}

impl<F: FallibleVerifier> FaultInjector<F> {
    /// Wrap `inner` with the given fault profile.
    pub fn new(inner: F, profile: FaultProfile) -> Self {
        Self {
            inner,
            profile,
            calls: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            garbage: AtomicU64::new(0),
            outages: AtomicU64::new(0),
            obs: FaultCounters::default(),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Mirror injection counts into `obs` as
    /// `hallu_faults_injected_total{model, kind}`. Counter increments
    /// commute, so this is safe on the parallel probe path.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = FaultCounters::register(obs, self.inner.name());
        self
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// What has been injected so far.
    pub fn stats(&self) -> InjectionStats {
        InjectionStats {
            calls: self.calls.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            garbage: self.garbage.load(Ordering::Relaxed),
            outages: self.outages.load(Ordering::Relaxed),
        }
    }

    /// Uniform in [0, 1) derived from `key` and a stream tag.
    fn unit(key: u64, stream: u64) -> f64 {
        (splitmix64(key ^ stream) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Count one call and apply the order-based outage modes (hard-down and
    /// the ordinal window). Shared preamble of both probe entry points.
    fn admit_call(&self) -> Result<(), VerifierError> {
        let call_idx = self.calls.fetch_add(1, Ordering::Relaxed);
        self.obs.calls.inc();

        if self.profile.hard_down {
            self.outages.fetch_add(1, Ordering::Relaxed);
            self.obs.outages.inc();
            return Err(VerifierError::Outage);
        }
        if let Some((start, len)) = self.profile.outage_window {
            if call_idx >= start && call_idx < start + len {
                self.outages.fetch_add(1, Ordering::Relaxed);
                self.obs.outages.inc();
                return Err(VerifierError::Outage);
            }
        }
        Ok(())
    }

    /// Apply the rate-based fault modes for one `(request, attempt)` pair.
    /// Pure in its fault decisions: the same pair always draws the same
    /// faults, regardless of what was injected before.
    fn inject(
        &self,
        request: &VerificationRequest<'_>,
        attempt: u64,
    ) -> Result<ScoredProbe, VerifierError> {
        let request_key = fnv1a(
            self.profile.seed,
            &[
                self.inner.name(),
                request.question,
                request.context,
                request.response,
            ],
        );
        let key = splitmix64(request_key ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));

        if Self::unit(key, 0x0007_a415) < self.profile.transient_rate {
            self.transients.fetch_add(1, Ordering::Relaxed);
            self.obs.transients.inc();
            return Err(VerifierError::Transient { reason: "injected" });
        }

        let mut probe = self.inner.try_p_yes(request)?;

        if Self::unit(key, 0x06a4_ba6e) < self.profile.garbage_rate {
            self.garbage.fetch_add(1, Ordering::Relaxed);
            self.obs.garbage.inc();
            probe.p_yes = GARBAGE_SCORES[(splitmix64(key ^ 0x6a4b) % 4) as usize];
            return Ok(probe);
        }

        if Self::unit(key, 0x57a11) < self.profile.stall_rate {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            self.obs.stalls.inc();
            probe.latency_ms *= STALL_FACTOR;
        }

        Ok(probe)
    }
}

impl<F: FallibleVerifier> FallibleVerifier for FaultInjector<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn exposes_probabilities(&self) -> bool {
        self.inner.exposes_probabilities()
    }

    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError> {
        self.admit_call()?;

        let request_key = fnv1a(
            self.profile.seed,
            &[
                self.inner.name(),
                request.question,
                request.context,
                request.response,
            ],
        );
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let n = attempts.entry(request_key).or_insert(0);
            let current = *n;
            *n += 1;
            current
        };
        self.inject(request, attempt)
    }

    /// Episode-pure probe: the fault draw is keyed by the caller-supplied
    /// attempt ordinal, not the internal per-request counter, so asking for
    /// `(request, attempt)` twice yields the same outcome bit-for-bit. This
    /// is what lets the verification cache memoize probe episodes without
    /// changing what an uncached rerun would observe. Order-based modes
    /// (`hard_down`, `outage_window`) still see the call counter, as
    /// documented in the module-level determinism contract.
    fn try_p_yes_attempt(
        &self,
        request: &VerificationRequest<'_>,
        attempt: u32,
    ) -> Result<ScoredProbe, VerifierError> {
        self.admit_call()?;
        self.inject(request, u64::from(attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallible::Reliable;
    use crate::verifier::YesNoVerifier;

    struct Constant(f64);
    impl YesNoVerifier for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.0
        }
    }

    fn request(i: usize) -> String {
        format!("response number {i}")
    }

    #[test]
    fn zero_rate_profile_is_transparent() {
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), FaultProfile::none(1));
        let plain = Reliable::new(Constant(0.6));
        for i in 0..50 {
            let r = request(i);
            let req = VerificationRequest::new("q", "c", &r);
            assert_eq!(inj.try_p_yes(&req).unwrap(), plain.try_p_yes(&req).unwrap());
        }
        let stats = inj.stats();
        assert_eq!(stats.calls, 50);
        assert_eq!(
            (stats.transients, stats.stalls, stats.garbage, stats.outages),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn hard_down_always_outage() {
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), FaultProfile::down(1));
        let req = VerificationRequest::new("q", "c", "r");
        for _ in 0..5 {
            assert_eq!(inj.try_p_yes(&req).unwrap_err(), VerifierError::Outage);
        }
        assert_eq!(inj.stats().outages, 5);
    }

    #[test]
    fn outage_window_covers_exact_ordinals() {
        let mut profile = FaultProfile::none(1);
        profile.outage_window = Some((2, 3));
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let req = VerificationRequest::new("q", "c", "r");
        let outcomes: Vec<bool> = (0..8).map(|_| inj.try_p_yes(&req).is_err()).collect();
        assert_eq!(
            outcomes,
            [false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    fn faults_are_keyed_by_request_and_attempt_not_call_order() {
        let profile = FaultProfile::uniform(7, 0.6);
        let a = FaultInjector::new(Reliable::new(Constant(0.6)), profile.clone());
        let b = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        // a: forward order; b: reverse order. Same per-request outcomes.
        let reqs: Vec<String> = (0..40).map(request).collect();
        let mut out_a = Vec::new();
        for r in &reqs {
            out_a.push(a.try_p_yes(&VerificationRequest::new("q", "c", r)).is_ok());
        }
        let mut out_b: Vec<bool> = reqs
            .iter()
            .rev()
            .map(|r| b.try_p_yes(&VerificationRequest::new("q", "c", r)).is_ok())
            .collect();
        out_b.reverse();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn retries_of_one_request_get_fresh_draws() {
        let profile = FaultProfile {
            transient_rate: 0.5,
            ..FaultProfile::none(3)
        };
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let req = VerificationRequest::new("q", "c", "r");
        let outcomes: Vec<bool> = (0..64).map(|_| inj.try_p_yes(&req).is_ok()).collect();
        // With fresh draws per attempt, a 0.5 transient rate cannot produce
        // 64 identical outcomes.
        assert!(outcomes.iter().any(|&ok| ok) && outcomes.iter().any(|&ok| !ok));
    }

    #[test]
    fn attempt_keyed_probes_match_counter_driven_sequence() {
        // For a fresh injector, the k-th try_p_yes of a request and an
        // explicit try_p_yes_attempt(request, k) draw the same faults.
        let profile = FaultProfile::uniform(7, 0.6);
        let by_counter = FaultInjector::new(Reliable::new(Constant(0.6)), profile.clone());
        let by_attempt = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let bits = |r: Result<ScoredProbe, VerifierError>| {
            r.map(|p| (p.p_yes.to_bits(), p.latency_ms.to_bits()))
        };
        for i in 0..10 {
            let r = request(i);
            let req = VerificationRequest::new("q", "c", &r);
            for k in 0..4u32 {
                assert_eq!(
                    bits(by_counter.try_p_yes(&req)),
                    bits(by_attempt.try_p_yes_attempt(&req, k)),
                    "request {i} attempt {k}"
                );
            }
        }
    }

    #[test]
    fn attempt_keyed_probes_are_idempotent() {
        // Repeating the same (request, attempt) pair reproduces the same
        // outcome — the property that makes probe-episode memoization safe.
        let profile = FaultProfile::uniform(13, 0.7);
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let req = VerificationRequest::new("q", "c", "repeated response");
        // Compare by bits so injected NaN garbage scores still compare equal.
        let bits = |r: Result<ScoredProbe, VerifierError>| {
            r.map(|p| (p.p_yes.to_bits(), p.latency_ms.to_bits()))
        };
        for k in 0..6u32 {
            let first = bits(inj.try_p_yes_attempt(&req, k));
            for _ in 0..3 {
                assert_eq!(bits(inj.try_p_yes_attempt(&req, k)), first, "attempt {k}");
            }
        }
        // Calls are still counted even though draws are pure.
        assert_eq!(inj.stats().calls, 24);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let profile = FaultProfile::uniform(11, 0.3);
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        for i in 0..2000 {
            let r = request(i);
            let _ = inj.try_p_yes(&VerificationRequest::new("q", "c", &r));
        }
        let stats = inj.stats();
        // Each mode targets 10% of 2000 = 200; allow generous slack.
        for (name, count) in [
            ("transient", stats.transients),
            ("stall", stats.stalls),
            ("garbage", stats.garbage),
        ] {
            assert!(
                (120..=290).contains(&count),
                "{name} injected {count} times"
            );
        }
    }

    #[test]
    fn obs_counters_mirror_injection_stats() {
        let obs = Obs::new();
        let profile = FaultProfile::uniform(11, 0.5);
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile).with_obs(&obs);
        for i in 0..200 {
            let r = request(i);
            let _ = inj.try_p_yes(&VerificationRequest::new("q", "c", &r));
        }
        let stats = inj.stats();
        assert!(stats.transients > 0 && stats.stalls > 0 && stats.garbage > 0);
        let snap = obs.metrics_snapshot();
        let model = [("model", "constant")];
        assert_eq!(
            snap.value("hallu_faults_calls_total", &model),
            Some(stats.calls as f64)
        );
        for (kind, count) in [
            ("transient", stats.transients),
            ("stall", stats.stalls),
            ("garbage", stats.garbage),
            ("outage", stats.outages),
        ] {
            assert_eq!(
                snap.value(
                    "hallu_faults_injected_total",
                    &[("model", "constant"), ("kind", kind)],
                ),
                Some(count as f64),
                "kind {kind}"
            );
        }
    }

    #[test]
    fn garbage_scores_come_from_the_documented_set() {
        let profile = FaultProfile {
            garbage_rate: 1.0,
            ..FaultProfile::none(5)
        };
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let mut seen_kinds = 0u8;
        for i in 0..100 {
            let r = request(i);
            let p = inj
                .try_p_yes(&VerificationRequest::new("q", "c", &r))
                .unwrap()
                .p_yes;
            let idx = GARBAGE_SCORES
                .iter()
                .position(|g| (g.is_nan() && p.is_nan()) || *g == p)
                .expect("score from GARBAGE_SCORES");
            seen_kinds |= 1 << idx;
        }
        assert_eq!(seen_kinds, 0b1111, "all four garbage kinds appear");
    }

    #[test]
    fn stalls_inflate_latency_past_normal_range() {
        let profile = FaultProfile {
            stall_rate: 1.0,
            ..FaultProfile::none(5)
        };
        let inj = FaultInjector::new(Reliable::new(Constant(0.6)), profile);
        let plain = Reliable::new(Constant(0.6));
        let req = VerificationRequest::new("q", "c", "r");
        let stalled = inj.try_p_yes(&req).unwrap();
        let normal = plain.try_p_yes(&req).unwrap();
        assert_eq!(stalled.latency_ms, normal.latency_ms * STALL_FACTOR);
        assert_eq!(stalled.p_yes, normal.p_yes);
    }
}
