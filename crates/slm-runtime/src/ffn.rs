//! SwiGLU feed-forward network: `down(silu(gate(x)) ⊙ up(x))`.

use tensor::nn::silu;
use tensor::{Linear, Matrix};

use crate::weights::LayerView;

/// One FFN step on a normalized hidden state. Generic over [`LayerView`], so
/// the f32 and int8 engines share the SwiGLU arithmetic and differ only in
/// the gate/up/down [`Linear`] kernels.
pub fn ffn_step<L: LayerView>(weights: &L, x: &[f32]) -> Vec<f32> {
    let mut gate = weights.w_gate().apply(x);
    let up = weights.w_up().apply(x);
    for (g, &u) in gate.iter_mut().zip(&up) {
        *g = silu(*g) * u;
    }
    weights.w_down().apply(&gate)
}

/// Multi-row FFN over a block of normalized hidden states: the gate/up/down
/// projections run as blocked GEMMs and the SwiGLU nonlinearity is applied
/// elementwise, so row `i` of the result is bit-identical to
/// `ffn_step(weights, xs.row(i))` ([`Linear::apply_block`] rows match
/// [`Linear::apply`] exactly).
pub fn ffn_block<L: LayerView>(weights: &L, xs: &Matrix) -> Matrix {
    let mut gate = weights.w_gate().apply_block(xs);
    let up = weights.w_up().apply_block(xs);
    for (g, &u) in gate.as_mut_slice().iter_mut().zip(up.as_slice()) {
        *g = silu(*g) * u;
    }
    weights.w_down().apply_block(&gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::ModelWeights;

    #[test]
    fn output_dim_is_hidden() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let out = ffn_step(&w.layers[0], &vec![0.25; cfg.hidden]);
        assert_eq!(out.len(), cfg.hidden);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let out = ffn_step(&w.layers[0], &vec![0.0; cfg.hidden]);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn is_nonlinear() {
        // f(2x) != 2 f(x) for SwiGLU
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let x: Vec<f32> = (0..cfg.hidden)
            .map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4)
            .collect();
        let x2: Vec<f32> = x.iter().map(|v| v * 2.0).collect();
        let f1 = ffn_step(&w.layers[0], &x);
        let f2 = ffn_step(&w.layers[0], &x2);
        let linear_diff: f32 = f2.iter().zip(&f1).map(|(a, b)| (a - 2.0 * b).abs()).sum();
        assert!(linear_diff > 1e-3, "SwiGLU must not be homogeneous");
    }

    #[test]
    fn block_is_bit_identical_to_steps() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let xs = Matrix::from_fn(5, cfg.hidden, |r, c| {
            ((r * 13 + c * 7) % 19) as f32 * 0.09 - 0.8
        });
        let blk = ffn_block(&w.layers[0], &xs);
        for i in 0..xs.rows() {
            assert_eq!(
                blk.row(i),
                ffn_step(&w.layers[0], xs.row(i)).as_slice(),
                "row {i}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let x = vec![0.1; cfg.hidden];
        assert_eq!(ffn_step(&w.layers[0], &x), ffn_step(&w.layers[0], &x));
    }
}
