//! SwiGLU feed-forward network: `down(silu(gate(x)) ⊙ up(x))`.

use tensor::nn::silu;
use tensor::ops::vecmat;

use crate::weights::LayerWeights;

/// One FFN step on a normalized hidden state.
pub fn ffn_step(weights: &LayerWeights, x: &[f32]) -> Vec<f32> {
    let mut gate = vecmat(x, &weights.w_gate);
    let up = vecmat(x, &weights.w_up);
    for (g, &u) in gate.iter_mut().zip(&up) {
        *g = silu(*g) * u;
    }
    vecmat(&gate, &weights.w_down)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::ModelWeights;

    #[test]
    fn output_dim_is_hidden() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let out = ffn_step(&w.layers[0], &vec![0.25; cfg.hidden]);
        assert_eq!(out.len(), cfg.hidden);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let out = ffn_step(&w.layers[0], &vec![0.0; cfg.hidden]);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn is_nonlinear() {
        // f(2x) != 2 f(x) for SwiGLU
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let x: Vec<f32> = (0..cfg.hidden)
            .map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4)
            .collect();
        let x2: Vec<f32> = x.iter().map(|v| v * 2.0).collect();
        let f1 = ffn_step(&w.layers[0], &x);
        let f2 = ffn_step(&w.layers[0], &x2);
        let linear_diff: f32 = f2.iter().zip(&f1).map(|(a, b)| (a - 2.0 * b).abs()).sum();
        assert!(linear_diff > 1e-3, "SwiGLU must not be homogeneous");
    }

    #[test]
    fn deterministic() {
        let cfg = ModelConfig::tiny(32);
        let w = ModelWeights::synthetic(&cfg, 3);
        let x = vec![0.1; cfg.hidden];
        assert_eq!(ffn_step(&w.layers[0], &x), ffn_step(&w.layers[0], &x));
    }
}
