//! Deterministic failure detection: SWIM-style gossip and the central
//! prober, behind one [`FailureDetector`] trait.
//!
//! The cluster router needs one answer per member — "do I route to it?" —
//! and two very different protocols can produce it:
//!
//! * [`CentralDetector`] — the router probes every member on a fixed
//!   interval and marks a member down when a probe goes unanswered past a
//!   timeout. Simple, O(N) probes per round from one vantage point, and
//!   blind to the difference between a dead member and a dead router link.
//!   This is the original cluster prober, kept as the parity baseline.
//! * [`SwimDetector`] — SWIM-style gossip ([SWIM], Das et al. 2002): every
//!   member probes one *seeded-random* peer per round; a failed direct
//!   probe retries indirectly through `K` proxies (ping-req) before the
//!   target is *suspected*; suspicion carries an incarnation number the
//!   target can refute by announcing a higher one; and every probe/ack
//!   exchange piggybacks a bounded number of recent membership deltas, so
//!   facts spread epidemically in O(log N) rounds. A suspect that never
//!   refutes is declared down after a fixed number of rounds.
//!
//! Both run entirely on virtual time and seeded arithmetic: peers and
//! proxies are chosen by `splitmix64(seed, round, member)`, messages
//! "travel" instantaneously within a round, and every map is a `BTreeMap`,
//! so a run's complete membership timeline is a pure function of
//! `(seed, config, ground-truth schedule)` — two runs of the same chaos
//! plan produce bitwise-identical [`ViewEvent`] sequences.
//!
//! Ground truth enters only through the [`LinkOracle`] the host passes to
//! [`FailureDetector::poll`]: whether a process is running and whether a
//! message between two actors is delivered. The detector never reads chaos
//! state directly — it learns the way a real cluster does, by probing.
//!
//! Routing verdicts pass through a [`HysteresisConfig`]-driven damper
//! before they reach [`FailureDetector::is_up`]: distinct up/down
//! thresholds (`down_after` consecutive failure signals to leave, `up_after`
//! consecutive recovery signals to return), a minimum dwell time before a
//! downed member is readmitted, and an exponential penalty for members that
//! flap — each down-transition shortly after a recovery doubles the dwell,
//! up to a cap, so an intermittently failing member is quarantined for
//! progressively longer instead of whipsawing the router. The default
//! [`HysteresisConfig::passthrough`] disables all of it, reproducing the
//! raw detector verdict bit-for-bit.
//!
//! [SWIM]: https://www.cs.cornell.edu/projects/Quicksilver/public_pdfs/SWIM.pdf

use std::collections::BTreeMap;

use hallu_obs::{Counter, Obs};

use crate::sim::splitmix64;

/// Identity of one cluster member in detector scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId {
    /// The member's shard.
    pub shard: u32,
    /// The member's replica index within the shard (0 = primary).
    pub replica: u32,
}

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}r{}", self.shard, self.replica)
    }
}

/// A member's state in one node's local membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewState {
    /// Believed up.
    Alive,
    /// A probe and its indirect retries failed; awaiting refutation.
    Suspect,
    /// Declared failed (suspicion expired unrefuted, or probe timeout).
    Down,
}

/// One transition of the router's *routing* view — the post-damper belief
/// [`FailureDetector::is_up`] reports. The sequence of these events is the
/// membership timeline the reproducibility suite compares bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewEvent {
    /// Virtual time of the transition.
    pub at_ms: f64,
    /// Which member changed.
    pub member: MemberId,
    /// `true` = readmitted to routing, `false` = removed from routing.
    pub up: bool,
    /// What drove the transition (`probe_timeout`, `delivery_failed`,
    /// `probe_ack`, `gossip_suspect`, `gossip_down`, `gossip_alive`).
    pub why: &'static str,
    /// The member's incarnation number at the transition (0 under the
    /// central prober, which has no incarnation protocol).
    pub incarnation: u64,
}

/// Ground-truth connectivity, supplied by the host at poll time. `from =
/// None` is the router; members never probe the router.
pub trait LinkOracle {
    /// Whether `m`'s process is currently running.
    fn member_alive(&self, m: MemberId) -> bool;
    /// Whether a message from `from` (router when `None`) is delivered to
    /// `to` right now.
    fn link_up(&self, from: Option<MemberId>, to: MemberId) -> bool;
}

/// A pluggable failure detector: the router consults [`is_up`](Self::is_up)
/// when placing requests and drives the protocol through
/// [`poll`](Self::poll) on the shared virtual clock.
pub trait FailureDetector {
    /// Add a member (admitted to routing immediately).
    fn register(&mut self, m: MemberId, now_ms: f64);
    /// Remove a member and all protocol state about it.
    fn deregister(&mut self, m: MemberId);
    /// The member warm-restarted. Gossip bumps its incarnation so its
    /// recovery announcement overrides any standing suspicion or death
    /// certificate; the central prober re-learns it by probing and needs
    /// nothing here.
    fn notify_restart(&mut self, m: MemberId, now_ms: f64);
    /// A delivery to `m` failed on the data path — as good as a probe
    /// timeout. Returns any routing-view transitions.
    fn observe_delivery_failure(&mut self, m: MemberId, now_ms: f64) -> Vec<ViewEvent>;
    /// The next virtual time the protocol has work scheduled.
    fn next_wake_ms(&self) -> Option<f64>;
    /// Run every protocol step due at or before `now_ms` against ground
    /// truth. Returns routing-view transitions in a deterministic order.
    fn poll(&mut self, now_ms: f64, oracle: &dyn LinkOracle) -> Vec<ViewEvent>;
    /// The damped routing verdict: should the router place requests on `m`?
    fn is_up(&self, m: MemberId) -> bool;
    /// Mirror protocol activity into `obs` (e.g.
    /// `hallu_detector_probes_total{protocol}`). Observation only — never
    /// influences detection or routing. Default: record nothing.
    fn bind_obs(&mut self, _obs: &Obs) {}
}

// ---------------------------------------------------------------------------
// Hysteresis / flap damping
// ---------------------------------------------------------------------------

/// Flap damping for routing verdicts. See the module docs for the state
/// machine; [`passthrough`](Self::passthrough) (the default) disables it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// Consecutive recovery signals required before a downed member is
    /// readmitted.
    pub up_after: u32,
    /// Consecutive failure signals required before a routed member is
    /// removed.
    pub down_after: u32,
    /// Minimum time a member stays out of routing once removed.
    pub min_dwell_ms: f64,
    /// Dwell multiplier applied per flap (a removal within
    /// [`flap_window_ms`](Self::flap_window_ms) of the last readmission).
    pub flap_penalty: f64,
    /// Upper bound on the penalized dwell.
    pub max_dwell_ms: f64,
    /// A removal this soon after a readmission counts as a flap; a removal
    /// later than this clears the accumulated penalty.
    pub flap_window_ms: f64,
}

impl HysteresisConfig {
    /// No damping: every raw signal flips the routing view immediately,
    /// reproducing the undamped detector bit-for-bit.
    pub fn passthrough() -> Self {
        Self {
            up_after: 1,
            down_after: 1,
            min_dwell_ms: 0.0,
            flap_penalty: 1.0,
            max_dwell_ms: 0.0,
            flap_window_ms: 0.0,
        }
    }
}

impl Default for HysteresisConfig {
    /// Damping suitable for the cluster's default probe cadence: two
    /// confirmations to readmit, immediate removal, 200 ms dwell doubling
    /// per flap up to 5 s.
    fn default() -> Self {
        Self {
            up_after: 2,
            down_after: 1,
            min_dwell_ms: 200.0,
            flap_penalty: 2.0,
            max_dwell_ms: 5_000.0,
            flap_window_ms: 1_000.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DampState {
    routing_up: bool,
    consec_up: u32,
    consec_down: u32,
    went_down_at_ms: f64,
    readmitted_at_ms: f64,
    /// Flap count; the dwell is `min_dwell * penalty^flaps`.
    flaps: u32,
}

impl DampState {
    fn fresh() -> Self {
        Self {
            routing_up: true,
            consec_up: 0,
            consec_down: 0,
            went_down_at_ms: f64::NEG_INFINITY,
            readmitted_at_ms: f64::NEG_INFINITY,
            flaps: 0,
        }
    }
}

/// The damper: raw up/down signals in, routing-view transitions out.
#[derive(Debug, Clone)]
struct Damper {
    cfg: HysteresisConfig,
    members: BTreeMap<MemberId, DampState>,
}

impl Damper {
    fn new(cfg: HysteresisConfig) -> Self {
        Self {
            cfg,
            members: BTreeMap::new(),
        }
    }

    fn register(&mut self, m: MemberId) {
        self.members.entry(m).or_insert_with(DampState::fresh);
    }

    fn deregister(&mut self, m: MemberId) {
        self.members.remove(&m);
    }

    fn routing_up(&self, m: MemberId) -> bool {
        self.members.get(&m).is_none_or(|s| s.routing_up)
    }

    fn dwell_ms(&self, flaps: u32) -> f64 {
        let penalty = self.cfg.flap_penalty.max(1.0).powi(flaps.min(30) as i32);
        (self.cfg.min_dwell_ms * penalty).min(self.cfg.max_dwell_ms.max(self.cfg.min_dwell_ms))
    }

    /// One failure signal about `m`; emits a Down transition when the
    /// down-threshold is crossed.
    fn signal_down(
        &mut self,
        m: MemberId,
        now_ms: f64,
        why: &'static str,
        incarnation: u64,
    ) -> Option<ViewEvent> {
        let dwell = {
            let s = self.members.get(&m)?;
            self.dwell_ms(s.flaps)
        };
        let _ = dwell;
        let cfg = self.cfg;
        let s = self.members.get_mut(&m)?;
        s.consec_up = 0;
        s.consec_down = s.consec_down.saturating_add(1);
        if !s.routing_up || s.consec_down < cfg.down_after.max(1) {
            return None;
        }
        s.routing_up = false;
        s.went_down_at_ms = now_ms;
        if now_ms - s.readmitted_at_ms <= cfg.flap_window_ms {
            // Down again right after coming back: a flap. Escalate.
            s.flaps = s.flaps.saturating_add(1);
        } else {
            // A long clean stretch before this failure: forgive history.
            s.flaps = 0;
        }
        Some(ViewEvent {
            at_ms: now_ms,
            member: m,
            up: false,
            why,
            incarnation,
        })
    }

    /// One recovery signal about `m`; emits an Up transition once the
    /// up-threshold and the (penalized) dwell are both satisfied.
    fn signal_up(
        &mut self,
        m: MemberId,
        now_ms: f64,
        why: &'static str,
        incarnation: u64,
    ) -> Option<ViewEvent> {
        let dwell = {
            let s = self.members.get(&m)?;
            self.dwell_ms(s.flaps)
        };
        let cfg = self.cfg;
        let s = self.members.get_mut(&m)?;
        s.consec_down = 0;
        s.consec_up = s.consec_up.saturating_add(1);
        if s.routing_up || s.consec_up < cfg.up_after.max(1) || now_ms < s.went_down_at_ms + dwell {
            return None;
        }
        s.routing_up = true;
        s.readmitted_at_ms = now_ms;
        Some(ViewEvent {
            at_ms: now_ms,
            member: m,
            up: true,
            why,
            incarnation,
        })
    }
}

// ---------------------------------------------------------------------------
// Central prober
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct CentralState {
    raw_up: bool,
    suspect_deadline_ms: Option<f64>,
}

/// The router-driven prober: every member is probed each
/// `probe_interval_ms`; an unreachable member gets a suspect deadline
/// `probe_timeout_ms` later that removes it from routing; a reachable probe
/// clears the deadline and readmits it (through the damper).
#[derive(Debug, Clone)]
pub struct CentralDetector {
    probe_interval_ms: f64,
    probe_timeout_ms: f64,
    next_probe_ms: f64,
    members: BTreeMap<MemberId, CentralState>,
    damper: Damper,
    /// Probes sent, mirrored via [`FailureDetector::bind_obs`]
    /// (disconnected by default).
    probes: Counter,
}

impl CentralDetector {
    /// Build with the probe cadence and the damping policy
    /// ([`HysteresisConfig::passthrough`] reproduces the raw prober).
    pub fn new(
        probe_interval_ms: f64,
        probe_timeout_ms: f64,
        hysteresis: HysteresisConfig,
    ) -> Self {
        Self {
            probe_interval_ms: probe_interval_ms.max(1e-3),
            probe_timeout_ms: probe_timeout_ms.max(0.0),
            next_probe_ms: 0.0,
            members: BTreeMap::new(),
            damper: Damper::new(hysteresis),
            probes: Counter::default(),
        }
    }
}

impl FailureDetector for CentralDetector {
    fn register(&mut self, m: MemberId, _now_ms: f64) {
        self.members.entry(m).or_insert(CentralState {
            raw_up: true,
            suspect_deadline_ms: None,
        });
        self.damper.register(m);
    }

    fn deregister(&mut self, m: MemberId) {
        self.members.remove(&m);
        self.damper.deregister(m);
    }

    fn notify_restart(&mut self, _m: MemberId, _now_ms: f64) {
        // The next reachable probe re-learns the member; nothing to do.
    }

    fn observe_delivery_failure(&mut self, m: MemberId, now_ms: f64) -> Vec<ViewEvent> {
        let Some(s) = self.members.get_mut(&m) else {
            return Vec::new();
        };
        s.raw_up = false;
        s.suspect_deadline_ms = None;
        self.damper
            .signal_down(m, now_ms, "delivery_failed", 0)
            .into_iter()
            .collect()
    }

    fn next_wake_ms(&self) -> Option<f64> {
        let mut wake = self.next_probe_ms;
        for s in self.members.values() {
            if let Some(d) = s.suspect_deadline_ms {
                wake = wake.min(d);
            }
        }
        Some(wake)
    }

    fn poll(&mut self, now_ms: f64, oracle: &dyn LinkOracle) -> Vec<ViewEvent> {
        let mut events = Vec::new();
        // Suspect deadlines first (matching the original cluster loop's
        // apply-deadlines-then-probe order at equal timestamps).
        let ids: Vec<MemberId> = self.members.keys().copied().collect();
        for m in &ids {
            let Some(s) = self.members.get_mut(m) else {
                continue;
            };
            if s.suspect_deadline_ms.is_some_and(|d| d <= now_ms) {
                let at = s.suspect_deadline_ms.take().unwrap_or(now_ms);
                if s.raw_up {
                    s.raw_up = false;
                    events.extend(self.damper.signal_down(*m, at, "probe_timeout", 0));
                }
            }
        }
        // Then every probe round due at or before `now_ms`.
        while self.next_probe_ms <= now_ms {
            let probe_t = self.next_probe_ms;
            self.next_probe_ms += self.probe_interval_ms;
            for m in &ids {
                let Some(s) = self.members.get_mut(m) else {
                    continue;
                };
                self.probes.inc();
                if oracle.link_up(None, *m) {
                    s.suspect_deadline_ms = None;
                    s.raw_up = true;
                    events.extend(self.damper.signal_up(*m, probe_t, "probe_ack", 0));
                } else if s.raw_up && s.suspect_deadline_ms.is_none() {
                    s.suspect_deadline_ms = Some(probe_t + self.probe_timeout_ms);
                }
            }
        }
        events
    }

    fn is_up(&self, m: MemberId) -> bool {
        self.damper.routing_up(m)
    }

    fn bind_obs(&mut self, obs: &Obs) {
        self.probes = obs.counter(
            "hallu_detector_probes_total",
            "Health probes sent by the failure detector, by protocol",
            &[("protocol", "central")],
        );
    }
}

// ---------------------------------------------------------------------------
// SWIM gossip
// ---------------------------------------------------------------------------

/// Tuning for [`SwimDetector`]. All draws derive from `seed` by pure
/// arithmetic, so the whole protocol run is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Seed for peer and proxy selection.
    pub seed: u64,
    /// One protocol round (every node probes one peer) per this interval.
    pub round_interval_ms: f64,
    /// Indirect ping-req proxies tried after a failed direct probe.
    pub proxies: u32,
    /// Rounds a suspect stays unrefuted before it is declared down.
    pub suspicion_rounds: u32,
    /// Maximum membership deltas piggybacked per message.
    pub piggyback: usize,
    /// Each fresh delta is retransmitted `ceil(factor * log2(N + 1))`
    /// times, the SWIM dissemination multiplier.
    pub retransmit_factor: f64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            seed: 0x9055_1D0D,
            round_interval_ms: 25.0,
            proxies: 2,
            suspicion_rounds: 3,
            piggyback: 6,
            retransmit_factor: 3.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeView {
    state: ViewState,
    incarnation: u64,
    /// Round this node first saw the current suspicion (for expiry).
    suspect_since_round: u64,
}

/// A pending membership delta awaiting piggyback slots.
#[derive(Debug, Clone, Copy)]
struct Delta {
    about: MemberId,
    state: ViewState,
    incarnation: u64,
    remaining: u32,
}

/// One gossip participant's protocol state. The router participates as a
/// node too (`id = None`): it probes like everyone else and its local view
/// is the routing view.
#[derive(Debug, Clone)]
struct Node {
    id: Option<MemberId>,
    own_incarnation: u64,
    view: BTreeMap<MemberId, NodeView>,
    deltas: Vec<Delta>,
}

impl Node {
    fn new(id: Option<MemberId>) -> Self {
        Self {
            id,
            own_incarnation: 0,
            view: BTreeMap::new(),
            deltas: Vec::new(),
        }
    }
}

/// The SWIM gossip detector. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct SwimDetector {
    cfg: GossipConfig,
    round: u64,
    next_round_ms: f64,
    router: Node,
    nodes: BTreeMap<MemberId, Node>,
    damper: Damper,
    /// Probe contacts sent, mirrored via [`FailureDetector::bind_obs`]
    /// (disconnected by default).
    probes: Counter,
}

impl SwimDetector {
    /// Build with gossip tuning and the routing damper.
    pub fn new(cfg: GossipConfig, hysteresis: HysteresisConfig) -> Self {
        Self {
            cfg: GossipConfig {
                round_interval_ms: cfg.round_interval_ms.max(1e-3),
                proxies: cfg.proxies,
                suspicion_rounds: cfg.suspicion_rounds.max(1),
                piggyback: cfg.piggyback.max(1),
                retransmit_factor: cfg.retransmit_factor.max(1.0),
                seed: cfg.seed,
            },
            round: 0,
            next_round_ms: 0.0,
            router: Node::new(None),
            nodes: BTreeMap::new(),
            damper: Damper::new(hysteresis),
            probes: Counter::default(),
        }
    }

    /// Retransmission budget for a fresh delta at the current cluster size.
    fn fresh_ttl(&self) -> u32 {
        let n = self.nodes.len().max(1) as f64;
        (self.cfg.retransmit_factor * (n + 1.0).log2()).ceil() as u32
    }

    /// One node's current view of a member: `None` when either is unknown
    /// or when asking about the observer itself. `observer = None` reads
    /// the router's (raw, pre-damper) view. Introspection for tests,
    /// health endpoints, and the convergence suite.
    pub fn view_of(
        &self,
        observer: Option<MemberId>,
        target: MemberId,
    ) -> Option<(ViewState, u64)> {
        let node = match observer {
            None => &self.router,
            Some(m) => self.nodes.get(&m)?,
        };
        node.view.get(&target).map(|v| (v.state, v.incarnation))
    }

    /// A member's own incarnation number (0 if unknown).
    pub fn incarnation_of(&self, m: MemberId) -> u64 {
        self.nodes.get(&m).map_or(0, |n| n.own_incarnation)
    }

    /// SWIM override rules: does `(new_state, new_inc)` supersede `cur`?
    fn supersedes(cur: &NodeView, state: ViewState, inc: u64) -> bool {
        match state {
            // A higher incarnation always proves liveness afresh — it even
            // resurrects a declared-down member after a warm restart.
            ViewState::Alive => inc > cur.incarnation,
            // Suspicion beats liveness at the same incarnation (that is the
            // point of the refutation protocol) but never beats a death
            // certificate at the same incarnation.
            ViewState::Suspect => {
                inc > cur.incarnation || (inc == cur.incarnation && cur.state == ViewState::Alive)
            }
            ViewState::Down => {
                inc > cur.incarnation || (inc == cur.incarnation && cur.state != ViewState::Down)
            }
        }
    }

    /// Queue a delta on `node`, superseding any pending delta about the
    /// same member (at most one delta per member is ever queued).
    fn enqueue(node: &mut Node, about: MemberId, state: ViewState, inc: u64, ttl: u32) {
        node.deltas.retain(|d| d.about != about);
        node.deltas.push(Delta {
            about,
            state,
            incarnation: inc,
            remaining: ttl.max(1),
        });
    }

    /// Merge one fact into `node`'s view. Accepted facts re-enter the
    /// node's delta queue with a fresh TTL (epidemic relay). A node that
    /// hears itself suspected or declared down refutes by bumping its own
    /// incarnation and announcing it.
    fn merge_fact(
        node: &mut Node,
        about: MemberId,
        state: ViewState,
        inc: u64,
        round: u64,
        ttl: u32,
    ) {
        if node.id == Some(about) {
            if state != ViewState::Alive && inc >= node.own_incarnation {
                node.own_incarnation = inc + 1;
                let announce = node.own_incarnation;
                Self::enqueue(node, about, ViewState::Alive, announce, ttl);
            }
            return;
        }
        let Some(cur) = node.view.get_mut(&about) else {
            // Unknown member (deregistered mid-flight): drop the fact.
            return;
        };
        if !Self::supersedes(cur, state, inc) {
            return;
        }
        cur.state = state;
        cur.incarnation = inc;
        if state == ViewState::Suspect {
            cur.suspect_since_round = round;
        }
        Self::enqueue(node, about, state, inc, ttl);
    }

    /// Take up to `piggyback` deltas from `from`'s queue for transmission,
    /// preferring the freshest (highest remaining TTL; ties broken by
    /// member id so selection is deterministic).
    fn take_deltas(&mut self, from: Option<MemberId>) -> Vec<Delta> {
        let budget = self.cfg.piggyback;
        let node = match from {
            None => &mut self.router,
            Some(m) => match self.nodes.get_mut(&m) {
                Some(n) => n,
                None => return Vec::new(),
            },
        };
        node.deltas
            .sort_by(|a, b| b.remaining.cmp(&a.remaining).then(a.about.cmp(&b.about)));
        let take = node.deltas.len().min(budget);
        let sent: Vec<Delta> = node.deltas[..take].to_vec();
        for d in node.deltas.iter_mut().take(take) {
            d.remaining = d.remaining.saturating_sub(1);
        }
        node.deltas.retain(|d| d.remaining > 0);
        sent
    }

    /// Deliver facts to a node (router when `None`).
    fn deliver(&mut self, to: Option<MemberId>, facts: &[Delta], round: u64) {
        let ttl = self.fresh_ttl();
        let node = match to {
            None => &mut self.router,
            Some(m) => match self.nodes.get_mut(&m) {
                Some(n) => n,
                None => return,
            },
        };
        for f in facts {
            Self::merge_fact(node, f.about, f.state, f.incarnation, round, ttl);
        }
    }

    /// A successful contact from `prober` to `target`: piggybacked deltas
    /// flow both ways, the prober confronts the target with any standing
    /// suspicion (so it can refute by incarnation bump), the target acks
    /// with its current incarnation, and the prober pulls the target's full
    /// view — the ack doubles as the anti-entropy pull that lets a
    /// stale-rejoining node catch up in O(1) successful probes.
    fn contact(&mut self, prober: Option<MemberId>, target: MemberId) {
        let round = self.round;
        self.probes.inc();
        // Confront the target with what the prober believes about it.
        let accusation = {
            let node = match prober {
                None => &self.router,
                Some(m) => match self.nodes.get(&m) {
                    Some(n) => n,
                    None => return,
                },
            };
            node.view
                .get(&target)
                .filter(|v| v.state != ViewState::Alive)
                .map(|v| Delta {
                    about: target,
                    state: v.state,
                    incarnation: v.incarnation,
                    remaining: 0,
                })
        };
        if let Some(acc) = accusation {
            self.deliver(Some(target), &[acc], round);
        }
        // Push: prober's deltas to the target.
        let push = self.take_deltas(prober);
        self.deliver(Some(target), &push, round);
        // Ack: target's deltas + liveness proof back to the prober.
        let mut ack = self.take_deltas(Some(target));
        let target_inc = self.nodes.get(&target).map_or(0, |n| n.own_incarnation);
        ack.push(Delta {
            about: target,
            state: ViewState::Alive,
            incarnation: target_inc,
            remaining: 0,
        });
        self.deliver(prober, &ack, round);
        // Pull: the prober merges the target's full view (anti-entropy).
        let pulled: Vec<Delta> = self
            .nodes
            .get(&target)
            .map(|n| {
                n.view
                    .iter()
                    .map(|(m, v)| Delta {
                        about: *m,
                        state: v.state,
                        incarnation: v.incarnation,
                        remaining: 0,
                    })
                    .collect()
            })
            .unwrap_or_default();
        self.deliver(prober, &pulled, round);
        // Direct liveness evidence: whatever the merge rules said, the
        // target answered *now*, with its current incarnation — force the
        // prober's entry up to (Alive, target_inc) if that supersedes.
        let ttl = self.fresh_ttl();
        let node = match prober {
            None => &mut self.router,
            Some(m) => match self.nodes.get_mut(&m) {
                Some(n) => n,
                None => return,
            },
        };
        Self::merge_fact(node, target, ViewState::Alive, target_inc, round, ttl);
    }

    /// Seeded choice of a probe target for `actor_idx` this round.
    fn pick_peer(&self, actor_idx: u64, candidates: &[MemberId]) -> Option<MemberId> {
        if candidates.is_empty() {
            return None;
        }
        let r = splitmix64(
            self.cfg
                .seed
                .wrapping_add(self.round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ actor_idx.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        Some(candidates[(r % candidates.len() as u64) as usize])
    }

    /// Seeded rotation over proxy candidates for the indirect ping-req.
    fn pick_proxies(
        &self,
        actor_idx: u64,
        candidates: &[MemberId],
        target: MemberId,
    ) -> Vec<MemberId> {
        let pool: Vec<MemberId> = candidates
            .iter()
            .copied()
            .filter(|&m| m != target)
            .collect();
        if pool.is_empty() {
            return Vec::new();
        }
        let r = splitmix64(
            self.cfg
                .seed
                .wrapping_add(self.round.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                ^ actor_idx.wrapping_mul(0x94D0_49BB_1331_11EB),
        );
        let start = (r % pool.len() as u64) as usize;
        (0..pool.len().min(self.cfg.proxies as usize))
            .map(|i| pool[(start + i) % pool.len()])
            .collect()
    }

    /// One full protocol round at `t`: every live node (router first, then
    /// members in id order) probes one seeded peer, falling back to
    /// indirect ping-req; then suspicion timers expire; then the router's
    /// raw view is fed through the damper.
    fn run_round(&mut self, t: f64, oracle: &dyn LinkOracle) -> Vec<ViewEvent> {
        let members: Vec<MemberId> = self.nodes.keys().copied().collect();
        let ttl = self.fresh_ttl();
        // Probe phase. Actor index 0 is the router.
        for (actor_idx, actor) in std::iter::once(None)
            .chain(members.iter().copied().map(Some))
            .enumerate()
        {
            if let Some(m) = actor {
                if !oracle.member_alive(m) {
                    continue;
                }
            }
            let candidates: Vec<MemberId> = members
                .iter()
                .copied()
                .filter(|&m| actor != Some(m))
                .collect();
            let Some(target) = self.pick_peer(actor_idx as u64, &candidates) else {
                continue;
            };
            if oracle.link_up(actor, target) {
                self.contact(actor, target);
                continue;
            }
            // Direct probe failed: ask K proxies to ping the target.
            let mut reached = false;
            for proxy in self.pick_proxies(actor_idx as u64, &candidates, target) {
                let proxy_believed_up = {
                    let node = match actor {
                        None => &self.router,
                        Some(m) => match self.nodes.get(&m) {
                            Some(n) => n,
                            None => continue,
                        },
                    };
                    node.view
                        .get(&proxy)
                        .is_some_and(|v| v.state == ViewState::Alive)
                };
                if !proxy_believed_up {
                    continue;
                }
                if oracle.link_up(actor, proxy) && oracle.link_up(Some(proxy), target) {
                    // The proxy vouches: exchange with the proxy, and relay
                    // the target's liveness proof through it.
                    self.contact(actor, proxy);
                    let target_inc = self.nodes.get(&target).map_or(0, |n| n.own_incarnation);
                    let proof = Delta {
                        about: target,
                        state: ViewState::Alive,
                        incarnation: target_inc,
                        remaining: 0,
                    };
                    self.deliver(actor, &[proof], self.round);
                    reached = true;
                    break;
                }
            }
            if reached {
                continue;
            }
            // Unreachable directly and indirectly: suspect.
            let round = self.round;
            let node = match actor {
                None => &mut self.router,
                Some(m) => match self.nodes.get_mut(&m) {
                    Some(n) => n,
                    None => continue,
                },
            };
            if let Some(v) = node.view.get(&target) {
                if v.state == ViewState::Alive {
                    let inc = v.incarnation;
                    Self::merge_fact(node, target, ViewState::Suspect, inc, round, ttl);
                }
            }
        }
        // Suspicion expiry (router first, then members), local timers.
        let expiry_round = self.round;
        let horizon = u64::from(self.cfg.suspicion_rounds);
        for actor in std::iter::once(None).chain(members.iter().copied().map(Some)) {
            if let Some(m) = actor {
                if !oracle.member_alive(m) {
                    continue;
                }
            }
            let node = match actor {
                None => &mut self.router,
                Some(m) => match self.nodes.get_mut(&m) {
                    Some(n) => n,
                    None => continue,
                },
            };
            let expired: Vec<(MemberId, u64)> = node
                .view
                .iter()
                .filter(|(_, v)| {
                    v.state == ViewState::Suspect
                        && expiry_round.saturating_sub(v.suspect_since_round) >= horizon
                })
                .map(|(m, v)| (*m, v.incarnation))
                .collect();
            for (m, inc) in expired {
                Self::merge_fact(node, m, ViewState::Down, inc, expiry_round, ttl);
            }
        }
        // Feed the router's raw view into the damper.
        let mut events = Vec::new();
        for m in &members {
            let Some(v) = self.router.view.get(m).copied() else {
                continue;
            };
            let ev = match v.state {
                ViewState::Alive => self.damper.signal_up(*m, t, "gossip_alive", v.incarnation),
                ViewState::Suspect => {
                    self.damper
                        .signal_down(*m, t, "gossip_suspect", v.incarnation)
                }
                ViewState::Down => self.damper.signal_down(*m, t, "gossip_down", v.incarnation),
            };
            events.extend(ev);
        }
        events
    }
}

impl FailureDetector for SwimDetector {
    fn register(&mut self, m: MemberId, _now_ms: f64) {
        if self.nodes.contains_key(&m) {
            return;
        }
        let mut node = Node::new(Some(m));
        // The newcomer starts believing every existing member alive at the
        // incarnation it currently announces; everyone (router included)
        // starts believing the newcomer alive at incarnation 0.
        for (id, other) in &self.nodes {
            node.view.insert(
                *id,
                NodeView {
                    state: ViewState::Alive,
                    incarnation: other.own_incarnation,
                    suspect_since_round: 0,
                },
            );
        }
        let fresh = NodeView {
            state: ViewState::Alive,
            incarnation: 0,
            suspect_since_round: 0,
        };
        for other in self.nodes.values_mut() {
            other.view.insert(m, fresh);
        }
        self.router.view.insert(m, fresh);
        self.nodes.insert(m, node);
        self.damper.register(m);
    }

    fn deregister(&mut self, m: MemberId) {
        self.nodes.remove(&m);
        self.router.view.remove(&m);
        self.router.deltas.retain(|d| d.about != m);
        for node in self.nodes.values_mut() {
            node.view.remove(&m);
            node.deltas.retain(|d| d.about != m);
        }
        self.damper.deregister(m);
    }

    fn notify_restart(&mut self, m: MemberId, _now_ms: f64) {
        let ttl = self.fresh_ttl();
        let Some(node) = self.nodes.get_mut(&m) else {
            return;
        };
        // A warm restart rejoins with a strictly higher incarnation, so its
        // liveness announcement overrides any suspicion or death
        // certificate issued against the previous incarnation. Stale
        // queued deltas from before the crash are dropped.
        node.own_incarnation += 1;
        let inc = node.own_incarnation;
        node.deltas.clear();
        Self::enqueue(node, m, ViewState::Alive, inc, ttl);
    }

    fn observe_delivery_failure(&mut self, m: MemberId, now_ms: f64) -> Vec<ViewEvent> {
        let ttl = self.fresh_ttl();
        let round = self.round;
        if let Some(v) = self.router.view.get(&m) {
            if v.state == ViewState::Alive {
                let inc = v.incarnation;
                Self::merge_fact(&mut self.router, m, ViewState::Suspect, inc, round, ttl);
            }
        }
        let inc = self.router.view.get(&m).map_or(0, |v| v.incarnation);
        self.damper
            .signal_down(m, now_ms, "delivery_failed", inc)
            .into_iter()
            .collect()
    }

    fn next_wake_ms(&self) -> Option<f64> {
        Some(self.next_round_ms)
    }

    fn poll(&mut self, now_ms: f64, oracle: &dyn LinkOracle) -> Vec<ViewEvent> {
        let mut events = Vec::new();
        while self.next_round_ms <= now_ms {
            let t = self.next_round_ms;
            self.next_round_ms += self.cfg.round_interval_ms;
            self.round += 1;
            events.extend(self.run_round(t, oracle));
        }
        events
    }

    fn is_up(&self, m: MemberId) -> bool {
        self.damper.routing_up(m)
    }

    fn bind_obs(&mut self, obs: &Obs) {
        self.probes = obs.counter(
            "hallu_detector_probes_total",
            "Health probes sent by the failure detector, by protocol",
            &[("protocol", "swim")],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Ground truth for the tests: a set of live members, full mesh links.
    #[derive(Debug, Clone, Default)]
    struct Truth {
        alive: BTreeSet<MemberId>,
        partitioned: BTreeSet<u32>,
    }

    impl LinkOracle for Truth {
        fn member_alive(&self, m: MemberId) -> bool {
            self.alive.contains(&m)
        }

        fn link_up(&self, from: Option<MemberId>, to: MemberId) -> bool {
            match from {
                None => self.member_alive(to) && !self.partitioned.contains(&to.shard),
                Some(a) => self.member_alive(a) && self.member_alive(to),
            }
        }
    }

    fn member(i: u32) -> MemberId {
        MemberId {
            shard: i,
            replica: 0,
        }
    }

    fn swim(n: u32, seed: u64) -> (SwimDetector, Truth) {
        let cfg = GossipConfig {
            seed,
            ..GossipConfig::default()
        };
        let mut det = SwimDetector::new(cfg, HysteresisConfig::passthrough());
        let mut truth = Truth::default();
        for i in 0..n {
            det.register(member(i), 0.0);
            truth.alive.insert(member(i));
        }
        (det, truth)
    }

    fn run_rounds(det: &mut SwimDetector, truth: &Truth, t: &mut f64, rounds: u32) {
        let step = det.cfg.round_interval_ms;
        for _ in 0..rounds {
            *t += step;
            det.poll(*t, truth);
        }
    }

    /// Generous convergence bound: epidemic dissemination in O(log N)
    /// rounds plus the suspicion horizon plus slack for unlucky seeds.
    fn convergence_rounds(n: u32, suspicion_rounds: u32) -> u32 {
        suspicion_rounds + 6 * ((n + 2) as f64).log2().ceil() as u32 + 8
    }

    /// Every live observer's view (and the router's) matches ground truth.
    fn assert_converged(det: &SwimDetector, truth: &Truth, n: u32) {
        let observers = std::iter::once(None).chain(
            (0..n)
                .map(member)
                .filter(|m| truth.alive.contains(m))
                .map(Some),
        );
        for obs in observers {
            for i in 0..n {
                let target = member(i);
                if obs == Some(target) {
                    continue;
                }
                let (state, _) = det
                    .view_of(obs, target)
                    .expect("registered member has a view entry");
                let want_alive = truth.alive.contains(&target);
                let got_alive = state == ViewState::Alive;
                assert_eq!(
                    got_alive, want_alive,
                    "observer {obs:?} view of {target}: {state:?}, truth alive={want_alive}"
                );
            }
        }
    }

    #[test]
    fn crash_is_detected_and_disseminated() {
        let n = 8;
        let (mut det, mut truth) = swim(n, 0xABCD);
        let mut t = 0.0;
        run_rounds(&mut det, &truth, &mut t, 4);
        truth.alive.remove(&member(3));
        let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
        run_rounds(&mut det, &truth, &mut t, rounds);
        assert_converged(&det, &truth, n);
        assert!(!det.is_up(member(3)), "router must stop routing to s3r0");
        assert!(det.is_up(member(2)));
    }

    #[test]
    fn restart_refutes_death_certificate_by_incarnation_bump() {
        let n = 8;
        let (mut det, mut truth) = swim(n, 0x5EED);
        let mut t = 0.0;
        truth.alive.remove(&member(5));
        let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
        run_rounds(&mut det, &truth, &mut t, rounds);
        let (state, inc) = det.view_of(None, member(5)).unwrap();
        assert_eq!(state, ViewState::Down);
        // Warm restart: incarnation bumps past the death certificate.
        truth.alive.insert(member(5));
        det.notify_restart(member(5), t);
        assert!(det.incarnation_of(member(5)) > inc);
        let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
        run_rounds(&mut det, &truth, &mut t, rounds);
        assert_converged(&det, &truth, n);
        assert!(det.is_up(member(5)), "refuted member routes again");
    }

    #[test]
    fn router_partition_is_survived_by_indirect_ping_req() {
        // The router cannot reach shard 2, but members can: SWIM's
        // indirect path keeps the member Alive in the router's raw view
        // (distinguishing a dead node from a dead link).
        let n = 6;
        let (mut det, mut truth) = swim(n, 0x1CE);
        truth.partitioned.insert(2);
        let mut t = 0.0;
        let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
        run_rounds(&mut det, &truth, &mut t, rounds);
        let (state, _) = det.view_of(None, member(2)).unwrap();
        assert_eq!(
            state,
            ViewState::Alive,
            "proxies vouch for a member the router cannot reach"
        );
    }

    #[test]
    fn delivery_failure_suspects_immediately_and_peers_refute() {
        let n = 6;
        let (mut det, truth) = swim(n, 0xF00D);
        let mut t = 0.0;
        run_rounds(&mut det, &truth, &mut t, 2);
        let events = det.observe_delivery_failure(member(1), t);
        assert_eq!(events.len(), 1);
        assert!(!events[0].up);
        assert_eq!(events[0].why, "delivery_failed");
        assert!(!det.is_up(member(1)));
        // The member is actually fine; gossip refutes the suspicion.
        let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
        run_rounds(&mut det, &truth, &mut t, rounds);
        assert!(det.is_up(member(1)), "false suspicion must be refuted");
    }

    #[test]
    fn same_seed_same_timeline_different_seed_differs() {
        let run = |seed: u64| {
            let n = 8;
            let (mut det, mut truth) = swim(n, seed);
            let mut t = 0.0;
            let mut timeline = Vec::new();
            let step = det.cfg.round_interval_ms;
            for round in 0..60 {
                if round == 10 {
                    truth.alive.remove(&member(2));
                }
                if round == 30 {
                    truth.alive.insert(member(2));
                    det.notify_restart(member(2), t);
                }
                t += step;
                timeline.extend(det.poll(t, &truth));
            }
            timeline
        };
        assert_eq!(run(7), run(7), "same seed, same membership timeline");
        assert!(!run(7).is_empty());
    }

    #[test]
    fn hysteresis_dampens_a_flapping_member() {
        let n = 6;
        let cfg = GossipConfig {
            seed: 0xFA1A,
            ..GossipConfig::default()
        };
        let hysteresis = HysteresisConfig {
            up_after: 2,
            down_after: 1,
            min_dwell_ms: 100.0,
            flap_penalty: 2.0,
            max_dwell_ms: 2_000.0,
            flap_window_ms: 500.0,
        };
        let mut damped = SwimDetector::new(cfg, hysteresis);
        let mut raw = SwimDetector::new(cfg, HysteresisConfig::passthrough());
        let mut truth = Truth::default();
        for i in 0..n {
            damped.register(member(i), 0.0);
            raw.register(member(i), 0.0);
            truth.alive.insert(member(i));
        }
        let flapper = member(1);
        let step = cfg.round_interval_ms;
        let mut t = 0.0;
        let mut damped_events = Vec::new();
        let mut raw_events = Vec::new();
        // Flap every 4 rounds: 2 down, 2 up.
        for round in 0..120u32 {
            if round % 4 == 0 {
                truth.alive.remove(&flapper);
            } else if round % 4 == 2 {
                truth.alive.insert(flapper);
                damped.notify_restart(flapper, t);
                raw.notify_restart(flapper, t);
            }
            t += step;
            damped_events.extend(
                damped
                    .poll(t, &truth)
                    .into_iter()
                    .filter(|e| e.member == flapper),
            );
            raw_events.extend(
                raw.poll(t, &truth)
                    .into_iter()
                    .filter(|e| e.member == flapper),
            );
        }
        let damped_flips = damped_events.len();
        let raw_flips = raw_events.len();
        assert!(
            damped_flips < raw_flips,
            "damping must shrink routing-view churn: damped={damped_flips} raw={raw_flips}"
        );
        // The exponential penalty must hold the flapper out of routing for
        // at least one full flap period by the end.
        let readmissions = damped_events.iter().filter(|e| e.up).count();
        let raw_readmissions = raw_events.iter().filter(|e| e.up).count();
        assert!(
            readmissions < raw_readmissions,
            "penalized dwell must skip readmissions: {readmissions} vs {raw_readmissions}"
        );
    }

    #[test]
    fn central_detector_matches_probe_timeout_semantics() {
        let mut det = CentralDetector::new(50.0, 25.0, HysteresisConfig::passthrough());
        let mut truth = Truth::default();
        det.register(member(0), 0.0);
        det.register(member(1), 0.0);
        truth.alive.insert(member(0));
        truth.alive.insert(member(1));
        // t=0 probe: both reachable.
        assert!(det.poll(0.0, &truth).is_empty());
        truth.alive.remove(&member(1));
        // t=50 probe arms the suspect deadline; nothing transitions yet.
        assert!(det.poll(50.0, &truth).is_empty());
        assert!(det.is_up(member(1)), "probe timeout not yet elapsed");
        assert_eq!(det.next_wake_ms(), Some(75.0));
        // t=75: the deadline fires.
        let events = det.poll(75.0, &truth);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].why, "probe_timeout");
        assert!(!events[0].up);
        assert!(!det.is_up(member(1)));
        assert!(det.is_up(member(0)));
        // Restart: the next probe readmits on the spot (passthrough).
        truth.alive.insert(member(1));
        let events = det.poll(100.0, &truth);
        assert_eq!(events.len(), 1);
        assert!(events[0].up);
        assert_eq!(events[0].why, "probe_ack");
        assert!(det.is_up(member(1)));
    }

    #[test]
    fn deregister_forgets_member_everywhere() {
        let (mut det, truth) = swim(5, 0xDEAD);
        let mut t = 0.0;
        run_rounds(&mut det, &truth, &mut t, 6);
        det.deregister(member(2));
        assert!(det.view_of(None, member(2)).is_none());
        for i in [0u32, 1, 3, 4] {
            assert!(det.view_of(Some(member(i)), member(2)).is_none());
        }
        run_rounds(&mut det, &truth, &mut t, 6);
        assert!(det.is_up(member(2)), "unknown members default to routable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// After an arbitrary crash/restart schedule quiesces, every live
        /// member's view (and the router's) converges to ground truth
        /// within O(log N) gossip rounds plus the suspicion horizon.
        #[test]
        fn views_converge_after_any_crash_restart_schedule(
            n in 4u32..14,
            seed in 0u64..u64::MAX,
            ops in prop::collection::vec((0u32..14, prop::bool::ANY), 0..10),
        ) {
            let (mut det, mut truth) = swim(n, seed);
            let mut t = 0.0;
            for (idx, up) in ops {
                let m = member(idx % n);
                if up {
                    if truth.alive.insert(m) {
                        det.notify_restart(m, t);
                    }
                } else {
                    truth.alive.remove(&m);
                }
                run_rounds(&mut det, &truth, &mut t, 2);
            }
            let rounds = convergence_rounds(n, det.cfg.suspicion_rounds);
            run_rounds(&mut det, &truth, &mut t, rounds);
            assert_converged(&det, &truth, n);
        }
    }
}
