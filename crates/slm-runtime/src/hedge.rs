//! Hedged verification: cut a slow model's latency tail with a backup call.
//!
//! Tail latency, not median latency, is what blows serving deadlines: the
//! simulated backends stall at 40x ([`crate::faults::STALL_FACTOR`]) and a
//! single stalled probe eats a whole request budget. The classic remedy
//! (Dean & Barroso's "tail at scale") is to *hedge*: when a call outlives a
//! high quantile of the model's own latency history, issue the same request
//! to a backup — a replica, or a surviving sibling model — and take
//! whichever result lands first.
//!
//! [`HedgedVerifier`] wraps a primary and a backup [`FallibleVerifier`] and
//! arbitrates deterministically in simulated time: the hedge fires at the
//! quantile threshold, the backup's answer "arrives" at `threshold +
//! backup_latency`, and the earlier arrival wins (ties prefer the primary).
//! The same wrapper also fails over on a primary error.
//!
//! # Determinism
//!
//! The latency window is a multiset of observed primary latencies, and the
//! threshold is recomputed from a sorted copy — so for a *sequential* call
//! sequence the hedge schedule is a pure function of the calls made. Under
//! `DetectorConfig::parallel` the window a given call observes depends on
//! thread interleaving; keep hedged stacks on the sequential path (the
//! serving runtime is sequential by construction) or accept approximate
//! reproducibility.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hallu_obs::{Counter, Obs};

use crate::fallible::{FallibleVerifier, ScoredProbe, VerifierError};
use crate::verifier::VerificationRequest;

/// When to hedge.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeConfig {
    /// Latency quantile of the primary's history that triggers a hedge
    /// (e.g. 0.95: hedge the slowest 5% of calls).
    pub quantile: f64,
    /// Observations required before hedging activates; below this the
    /// wrapper is a transparent pass-through.
    pub min_samples: usize,
    /// Sliding-window size of retained latency observations.
    pub window: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            quantile: 0.95,
            min_samples: 20,
            window: 256,
        }
    }
}

/// What the hedger has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeStats {
    /// Calls that reached the wrapper.
    pub calls: u64,
    /// Hedges issued because the primary crossed the quantile threshold.
    pub hedges: u64,
    /// Hedges whose backup result arrived first and was used.
    pub hedge_wins: u64,
    /// Backup calls issued because the primary errored outright.
    pub failovers: u64,
}

#[derive(Debug, Default)]
struct HedgeState {
    window: Mutex<VecDeque<f64>>,
    calls: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    failovers: AtomicU64,
}

/// Registry counter handles mirroring [`HedgeStats`], labeled by the
/// primary model. Disconnected unless [`HedgedVerifier::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct HedgeCounters {
    calls: Counter,
    hedges: Counter,
    hedge_wins: Counter,
    failovers: Counter,
}

impl HedgeCounters {
    fn register(obs: &Obs, model: &str) -> Self {
        let event = |k: &str, help: &str| {
            obs.counter(
                "hallu_hedge_events_total",
                help,
                &[("model", model), ("event", k)],
            )
        };
        Self {
            calls: obs.counter(
                "hallu_hedge_calls_total",
                "Verifier calls that reached the hedging wrapper",
                &[("model", model)],
            ),
            hedges: event("fired", "Hedge lifecycle events (fired/won/failover)"),
            hedge_wins: event("won", "Hedge lifecycle events (fired/won/failover)"),
            failovers: event("failover", "Hedge lifecycle events (fired/won/failover)"),
        }
    }
}

/// Cloneable observer for a [`HedgedVerifier`]'s internal state: the
/// verifier itself disappears into a `Box<dyn FallibleVerifier>` inside the
/// detector, so callers keep this handle for telemetry.
#[derive(Debug, Clone)]
pub struct HedgeHandle {
    state: Arc<HedgeState>,
    config: HedgeConfig,
}

impl HedgeHandle {
    /// Counters so far.
    pub fn stats(&self) -> HedgeStats {
        HedgeStats {
            calls: self.state.calls.load(Ordering::Relaxed),
            hedges: self.state.hedges.load(Ordering::Relaxed),
            hedge_wins: self.state.hedge_wins.load(Ordering::Relaxed),
            failovers: self.state.failovers.load(Ordering::Relaxed),
        }
    }

    /// The current hedge-trigger latency, or `None` while below
    /// `min_samples`.
    pub fn threshold_ms(&self) -> Option<f64> {
        threshold_of(&self.state, &self.config)
    }
}

/// Nearest-rank quantile of the retained window, `None` below `min_samples`.
fn threshold_of(state: &HedgeState, config: &HedgeConfig) -> Option<f64> {
    let window = state.window.lock().unwrap_or_else(|e| e.into_inner());
    if window.len() < config.min_samples.max(1) {
        return None;
    }
    let mut sorted: Vec<f64> = window.iter().copied().collect();
    drop(window);
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = config.quantile.clamp(0.0, 1.0);
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// A [`FallibleVerifier`] that hedges its primary's latency tail onto a
/// backup and fails over on primary errors. Reports the primary's name, so
/// breaker state and Eq. 4 statistics stay keyed to the primary slot.
pub struct HedgedVerifier<P, B> {
    primary: P,
    backup: B,
    config: HedgeConfig,
    state: Arc<HedgeState>,
    obs: Obs,
    counters: HedgeCounters,
}

impl<P: FallibleVerifier, B: FallibleVerifier> HedgedVerifier<P, B> {
    /// Wrap `primary`, hedging onto `backup` per `config`.
    pub fn new(primary: P, backup: B, config: HedgeConfig) -> Self {
        Self {
            primary,
            backup,
            config,
            state: Arc::new(HedgeState::default()),
            obs: Obs::off(),
            counters: HedgeCounters::default(),
        }
    }

    /// Mirror hedge lifecycle counts into `obs` as
    /// `hallu_hedge_events_total{model, event}` and record fired/won/
    /// failover flight events. Hedged stacks live on the sequential serving
    /// path (see module docs), so flight events here stay deterministic.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.counters = HedgeCounters::register(obs, self.primary.name());
        self.obs = obs.clone();
        self
    }

    /// An observer handle that outlives boxing the verifier.
    pub fn handle(&self) -> HedgeHandle {
        HedgeHandle {
            state: Arc::clone(&self.state),
            config: self.config.clone(),
        }
    }

    fn record(&self, latency_ms: f64) {
        let mut window = self.state.window.lock().unwrap_or_else(|e| e.into_inner());
        if window.len() >= self.config.window.max(1) {
            window.pop_front();
        }
        window.push_back(latency_ms);
    }
}

impl<P: FallibleVerifier, B: FallibleVerifier> FallibleVerifier for HedgedVerifier<P, B> {
    fn name(&self) -> &str {
        self.primary.name()
    }

    fn exposes_probabilities(&self) -> bool {
        self.primary.exposes_probabilities()
    }

    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError> {
        self.state.calls.fetch_add(1, Ordering::Relaxed);
        self.counters.calls.inc();
        match self.primary.try_p_yes(request) {
            Ok(probe) => {
                // Threshold from history *before* this observation: the
                // hedge decision a real system makes while the call is
                // still in flight.
                let threshold = threshold_of(&self.state, &self.config);
                self.record(probe.latency_ms);
                let Some(threshold) = threshold else {
                    return Ok(probe);
                };
                if probe.latency_ms <= threshold {
                    return Ok(probe);
                }
                self.state.hedges.fetch_add(1, Ordering::Relaxed);
                self.counters.hedges.inc();
                // Marks the hedged backup call on the request's trace: the
                // span joins whatever ambient context the serving layer
                // set around scoring (sequential path, so stack nesting is
                // well-defined).
                let _hedge_span = self.obs.span("hedge");
                self.obs.flight(
                    "hedge_fired",
                    &[
                        ("model", self.primary.name().to_string()),
                        ("threshold_ms", threshold.to_string()),
                        ("primary_latency_ms", probe.latency_ms.to_string()),
                    ],
                );
                if let Ok(backup_probe) = self.backup.try_p_yes(request) {
                    // The hedge fires once the primary outlives the
                    // threshold; the backup's answer lands that much later.
                    let backup_arrival = threshold + backup_probe.latency_ms;
                    if backup_arrival < probe.latency_ms {
                        self.state.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        self.counters.hedge_wins.inc();
                        self.obs.flight(
                            "hedge_won",
                            &[
                                ("model", self.primary.name().to_string()),
                                ("backup_arrival_ms", backup_arrival.to_string()),
                            ],
                        );
                        return Ok(ScoredProbe {
                            p_yes: backup_probe.p_yes,
                            latency_ms: backup_arrival,
                        });
                    }
                }
                Ok(probe)
            }
            Err(primary_err) => {
                self.state.failovers.fetch_add(1, Ordering::Relaxed);
                self.counters.failovers.inc();
                self.obs.flight(
                    "hedge_failover",
                    &[("model", self.primary.name().to_string())],
                );
                match self.backup.try_p_yes(request) {
                    Ok(probe) => Ok(probe),
                    // The primary's error classifies the call (e.g. Outage
                    // must stay non-retryable).
                    Err(_) => Err(primary_err),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallible::Reliable;
    use crate::faults::{FaultInjector, FaultProfile, STALL_FACTOR};
    use crate::profiles::qwen2_sim;
    use crate::verifier::YesNoVerifier;

    struct Constant(&'static str, f64);
    impl YesNoVerifier for Constant {
        fn name(&self) -> &str {
            self.0
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.1
        }
    }

    fn req(i: usize) -> String {
        format!("response number {i}")
    }

    fn stalled_primary(stall_rate: f64) -> FaultInjector<Reliable<crate::sim::SimVerifier>> {
        FaultInjector::new(
            Reliable::new(qwen2_sim()),
            FaultProfile {
                stall_rate,
                ..FaultProfile::none(404)
            },
        )
    }

    #[test]
    fn below_min_samples_is_transparent() {
        let hedged = HedgedVerifier::new(
            Reliable::new(Constant("a", 0.6)),
            Reliable::new(Constant("b", 0.1)),
            HedgeConfig::default(),
        );
        let plain = Reliable::new(Constant("a", 0.6));
        for i in 0..10 {
            let r = req(i);
            let request = VerificationRequest::new("q", "c", &r);
            assert_eq!(
                hedged.try_p_yes(&request).unwrap(),
                plain.try_p_yes(&request).unwrap()
            );
        }
        assert_eq!(hedged.handle().stats().hedges, 0);
        assert!(hedged.handle().threshold_ms().is_none());
    }

    #[test]
    fn stalls_trigger_hedges_and_backup_wins() {
        let hedged = HedgedVerifier::new(
            stalled_primary(0.3),
            Reliable::new(qwen2_sim()),
            HedgeConfig {
                quantile: 0.9,
                min_samples: 10,
                window: 128,
            },
        );
        let handle = hedged.handle();
        let mut max_latency: f64 = 0.0;
        for i in 0..300 {
            let r = req(i);
            let probe = hedged
                .try_p_yes(&VerificationRequest::new("q", "c", &r))
                .unwrap();
            max_latency = max_latency.max(probe.latency_ms);
        }
        let stats = handle.stats();
        assert!(stats.hedges > 0, "30% stalls must cross a p90 threshold");
        assert!(stats.hedge_wins > 0, "a healthy backup must win hedges");
        // A won hedge caps the stall: threshold + backup latency is far
        // below the 40x stalled primary latency (bases are 8-62 ms).
        assert!(
            max_latency < 62.0 * STALL_FACTOR,
            "hedging must cut the worst tail, saw {max_latency}"
        );
        assert!(handle.threshold_ms().is_some());
    }

    #[test]
    fn hedging_is_deterministic_for_a_fixed_sequence() {
        let run = || {
            let hedged = HedgedVerifier::new(
                stalled_primary(0.4),
                Reliable::new(qwen2_sim()),
                HedgeConfig {
                    min_samples: 5,
                    ..HedgeConfig::default()
                },
            );
            let mut out = Vec::new();
            for i in 0..100 {
                let r = req(i);
                let p = hedged
                    .try_p_yes(&VerificationRequest::new("q", "c", &r))
                    .unwrap();
                out.push((p.p_yes.to_bits(), p.latency_ms.to_bits()));
            }
            (out, hedged.handle().stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn obs_counters_and_flight_events_mirror_stats() {
        let obs = Obs::new();
        obs.begin_flight("hedge-test");
        let hedged = HedgedVerifier::new(
            stalled_primary(0.3),
            Reliable::new(qwen2_sim()),
            HedgeConfig {
                quantile: 0.9,
                min_samples: 10,
                window: 128,
            },
        )
        .with_obs(&obs);
        for i in 0..300 {
            let r = req(i);
            let _ = hedged.try_p_yes(&VerificationRequest::new("q", "c", &r));
        }
        obs.end_flight("done");
        let stats = hedged.handle().stats();
        assert!(stats.hedges > 0 && stats.hedge_wins > 0);
        let snap = obs.metrics_snapshot();
        let model = hedged.name();
        for (event, count) in [
            ("fired", stats.hedges),
            ("won", stats.hedge_wins),
            ("failover", stats.failovers),
        ] {
            assert_eq!(
                snap.value(
                    "hallu_hedge_events_total",
                    &[("model", model), ("event", event)],
                ),
                Some(count as f64),
                "event {event}"
            );
        }
        let record = &obs.flight_records()[0];
        assert!(!record.events_named("hedge_fired").is_empty());
        if record.dropped_events == 0 {
            assert_eq!(
                record.events_named("hedge_fired").len() as u64,
                stats.hedges
            );
            assert_eq!(
                record.events_named("hedge_won").len() as u64,
                stats.hedge_wins
            );
        }
    }

    #[test]
    fn primary_error_fails_over_to_backup() {
        let hedged = HedgedVerifier::new(
            FaultInjector::new(Reliable::new(Constant("a", 0.6)), FaultProfile::down(1)),
            Reliable::new(Constant("b", 0.25)),
            HedgeConfig::default(),
        );
        let probe = hedged
            .try_p_yes(&VerificationRequest::new("q", "c", "r"))
            .unwrap();
        assert_eq!(probe.p_yes, 0.25);
        assert_eq!(hedged.handle().stats().failovers, 1);
        // the wrapper still reports the primary's identity
        assert_eq!(hedged.name(), "a");
    }

    #[test]
    fn both_down_reports_primary_error() {
        let hedged = HedgedVerifier::new(
            FaultInjector::new(Reliable::new(Constant("a", 0.6)), FaultProfile::down(1)),
            FaultInjector::new(Reliable::new(Constant("b", 0.6)), FaultProfile::down(2)),
            HedgeConfig::default(),
        );
        let err = hedged
            .try_p_yes(&VerificationRequest::new("q", "c", "r"))
            .unwrap_err();
        assert_eq!(err, VerifierError::Outage);
    }

    #[test]
    fn window_is_bounded() {
        let hedged = HedgedVerifier::new(
            Reliable::new(qwen2_sim()),
            Reliable::new(Constant("b", 0.5)),
            HedgeConfig {
                window: 16,
                min_samples: 4,
                ..HedgeConfig::default()
            },
        );
        for i in 0..200 {
            let r = req(i);
            let _ = hedged.try_p_yes(&VerificationRequest::new("q", "c", &r));
        }
        let window = hedged.state.window.lock().unwrap();
        assert_eq!(window.len(), 16);
    }
}
