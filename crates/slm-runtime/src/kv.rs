//! Per-layer key/value cache for incremental decoding.
//!
//! The paper's efficiency argument for local SLM deployment is that the
//! yes-probability falls out of a *single* forward pass over the prompt; the
//! KV cache is what makes that pass linear instead of quadratic re-reading.

use tensor::Matrix;

/// The storage contract the attention/model layers run against.
///
/// Two implementations exist: the contiguous [`KvCache`] (one dense buffer
/// per layer) and the paged [`crate::paged::PagedKvCache`] (fixed-size
/// refcounted blocks with copy-on-write forks). The forward passes in
/// [`crate::attention`] and [`crate::model`] are generic over this trait, so
/// both backends run *the same* compute code — which is what makes the
/// paged-vs-contiguous bitwise-parity claim structural rather than
/// coincidental: only the bytes' addresses differ, never the arithmetic or
/// its order.
///
/// Semantics every implementation must uphold:
/// - `write`/`advance` append one position at a time; `write_at`/`advance_by`
///   stage a multi-token block before committing it.
/// - `key`/`value` return the row for any position `< len()` plus staged
///   (written but uncommitted) positions.
/// - `remaining()` is how many positions may currently be written. For the
///   contiguous cache that is simply `max_seq - len`; the paged cache
///   additionally requires capacity to have been reserved
///   ([`crate::paged::PagedKvCache::try_reserve`]) so writes are infallible
///   once admitted.
pub trait KvStore {
    /// Number of committed positions.
    fn len(&self) -> usize;

    /// True when nothing has been committed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Positions that may currently be written (see trait docs).
    fn remaining(&self) -> usize;

    /// Capacity bound in positions.
    fn max_seq(&self) -> usize;

    /// K/V vector width (`n_kv_heads * head_dim`).
    fn kv_dim(&self) -> usize;

    /// Number of layers served.
    fn n_layers(&self) -> usize;

    /// Write the current position's K/V for `layer` (then [`KvStore::advance`]).
    fn write(&mut self, layer: usize, k: &[f32], v: &[f32]);

    /// Commit the current position after all layers wrote.
    fn advance(&mut self);

    /// Stage K/V for an explicit position (then [`KvStore::advance_by`]).
    fn write_at(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]);

    /// Commit `n` staged positions.
    fn advance_by(&mut self, n: usize);

    /// Key row for `layer` at `pos` (committed or staged).
    fn key(&self, layer: usize, pos: usize) -> &[f32];

    /// Value row for `layer` at `pos` (committed or staged).
    fn value(&self, layer: usize, pos: usize) -> &[f32];
}

/// KV cache for one model: `n_layers` ring-less append-only buffers of
/// `(max_seq, kv_dim)` keys and values.
#[derive(Debug, Clone)]
pub struct KvCache {
    keys: Vec<Matrix>,
    values: Vec<Matrix>,
    len: usize,
    max_seq: usize,
    kv_dim: usize,
}

impl KvCache {
    /// Allocate a cache for `n_layers` layers with `kv_dim = n_kv_heads * head_dim`.
    pub fn new(n_layers: usize, max_seq: usize, kv_dim: usize) -> Self {
        Self {
            keys: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            values: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            len: 0,
            max_seq,
            kv_dim,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining capacity in positions.
    pub fn remaining(&self) -> usize {
        self.max_seq - self.len
    }

    /// Write the K/V vectors of the current position into `layer`'s buffers.
    /// Call once per layer per position, then [`KvCache::advance`].
    ///
    /// # Panics
    /// Panics when full or on dimension mismatch.
    pub fn write(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert!(
            self.len < self.max_seq,
            "KV cache full ({} positions)",
            self.max_seq
        );
        assert_eq!(k.len(), self.kv_dim, "key dim mismatch");
        assert_eq!(v.len(), self.kv_dim, "value dim mismatch");
        self.keys[layer].row_mut(self.len).copy_from_slice(k);
        self.values[layer].row_mut(self.len).copy_from_slice(v);
    }

    /// Commit the current position after all layers have written.
    pub fn advance(&mut self) {
        assert!(self.len < self.max_seq, "KV cache full");
        self.len += 1;
    }

    /// Write K/V for an explicit position, staging a multi-token block: the
    /// GEMM prefill writes positions `len..len + block` for one layer before
    /// any of them are committed, then calls [`KvCache::advance_by`] once
    /// after every layer has run.
    ///
    /// # Panics
    /// Panics when `pos` is beyond capacity or on dimension mismatch.
    pub fn write_at(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.max_seq,
            "position {pos} beyond KV capacity ({} positions)",
            self.max_seq
        );
        assert_eq!(k.len(), self.kv_dim, "key dim mismatch");
        assert_eq!(v.len(), self.kv_dim, "value dim mismatch");
        self.keys[layer].row_mut(pos).copy_from_slice(k);
        self.values[layer].row_mut(pos).copy_from_slice(v);
    }

    /// Commit `n` staged positions at once (the block analogue of
    /// [`KvCache::advance`]).
    ///
    /// # Panics
    /// Panics when fewer than `n` positions remain.
    pub fn advance_by(&mut self, n: usize) {
        assert!(
            self.len + n <= self.max_seq,
            "KV cache full ({} positions)",
            self.max_seq
        );
        self.len += n;
    }

    /// Cached key row for `layer` at `pos`. Staged (written but not yet
    /// advanced) positions are readable: block attention reads keys of the
    /// in-flight token block.
    pub fn key(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.max_seq);
        self.keys[layer].row(pos)
    }

    /// Cached value row for `layer` at `pos`.
    pub fn value(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.max_seq);
        self.values[layer].row(pos)
    }

    /// Number of layers this cache serves.
    pub fn n_layers(&self) -> usize {
        self.keys.len()
    }

    /// K/V vector width (`n_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Capacity in positions.
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Bytes held by the *filled* K/V rows (the prefix-cache byte model:
    /// `2 buffers · n_layers · len · kv_dim · 4 bytes`). Staged rows and
    /// unused capacity are not counted.
    pub fn kv_bytes(&self) -> usize {
        2 * self.keys.len() * self.len * self.kv_dim * std::mem::size_of::<f32>()
    }

    /// Bytes held by the *allocation* — every row, filled or not:
    /// `2 buffers · n_layers · max_seq · kv_dim · 4 bytes`. This is what a
    /// fork actually costs in memory, so it is the number the
    /// fork-capacity regression tests pin: a per-sentence fork must
    /// allocate for `prefix + suffix` positions, not for the model's whole
    /// context window.
    pub fn allocated_bytes(&self) -> usize {
        2 * self.keys.len() * self.max_seq * self.kv_dim * std::mem::size_of::<f32>()
    }

    /// Compact copy holding exactly the filled rows (`max_seq == len`): the
    /// form the prefix cache stores, so an idle snapshot costs `len` rows
    /// instead of the model's full context window.
    pub fn compact_clone(&self) -> KvCache {
        self.fork_with_capacity(self.len.max(1))
    }

    /// Copy the filled rows into a fresh cache with `max_seq` capacity — the
    /// copy-on-extend fork: the returned cache continues from position `len`
    /// and is fully independent of `self`.
    ///
    /// # Panics
    /// Panics when `max_seq < len`.
    pub fn fork_with_capacity(&self, max_seq: usize) -> KvCache {
        assert!(
            max_seq >= self.len,
            "fork capacity {max_seq} below filled length {}",
            self.len
        );
        let mut out = KvCache::new(self.keys.len(), max_seq, self.kv_dim);
        let filled = self.len * self.kv_dim;
        for layer in 0..self.keys.len() {
            out.keys[layer].as_mut_slice()[..filled]
                .copy_from_slice(&self.keys[layer].as_slice()[..filled]);
            out.values[layer].as_mut_slice()[..filled]
                .copy_from_slice(&self.values[layer].as_slice()[..filled]);
        }
        out.len = self.len;
        out
    }

    /// Reset to empty without deallocating.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl KvStore for KvCache {
    fn len(&self) -> usize {
        KvCache::len(self)
    }

    fn remaining(&self) -> usize {
        KvCache::remaining(self)
    }

    fn max_seq(&self) -> usize {
        KvCache::max_seq(self)
    }

    fn kv_dim(&self) -> usize {
        KvCache::kv_dim(self)
    }

    fn n_layers(&self) -> usize {
        KvCache::n_layers(self)
    }

    fn write(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        KvCache::write(self, layer, k, v);
    }

    fn advance(&mut self) {
        KvCache::advance(self);
    }

    fn write_at(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        KvCache::write_at(self, layer, pos, k, v);
    }

    fn advance_by(&mut self, n: usize) {
        KvCache::advance_by(self, n);
    }

    fn key(&self, layer: usize, pos: usize) -> &[f32] {
        KvCache::key(self, layer, pos)
    }

    fn value(&self, layer: usize, pos: usize) -> &[f32] {
        KvCache::value(self, layer, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c = KvCache::new(2, 8, 4);
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 8);
    }

    #[test]
    fn write_then_advance_accumulates() {
        let mut c = KvCache::new(2, 8, 4);
        for pos in 0..3 {
            for layer in 0..2 {
                let k = [pos as f32; 4];
                let v = [pos as f32 + 10.0; 4];
                c.write(layer, &k, &v);
            }
            c.advance();
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.key(1, 2), &[2.0; 4]);
        assert_eq!(c.value(0, 1), &[11.0; 4]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.advance();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut c = KvCache::new(1, 1, 2);
        c.write(0, &[0.0; 2], &[0.0; 2]);
        c.advance();
        c.advance();
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[0.0; 3], &[0.0; 3]);
    }

    /// Regression for the fork over-allocation bug: a fork's allocation must
    /// be exactly what was asked for, so peak bytes scale with
    /// `prefix + suffix`, never with the model's context window.
    #[test]
    fn fork_allocates_exactly_the_requested_capacity() {
        let mut c = KvCache::new(2, 256, 4);
        for _ in 0..10 {
            for layer in 0..2 {
                c.write(layer, &[1.0; 4], &[2.0; 4]);
            }
            c.advance();
        }
        let per_row = 2 * 2 * 4 * std::mem::size_of::<f32>();
        // Full-window allocation: the shape the latent bug produced.
        assert_eq!(c.allocated_bytes(), 256 * per_row);
        // A fork sized for prefix (10) + suffix (6) allocates 16 rows, flat.
        let forked = c.fork_with_capacity(16);
        assert_eq!(forked.allocated_bytes(), 16 * per_row);
        assert_eq!(forked.kv_bytes(), 10 * per_row);
        // Compact snapshots hold exactly the filled rows.
        assert_eq!(c.compact_clone().allocated_bytes(), 10 * per_row);
    }

    /// The generic attention/model layers run through this trait; make sure
    /// the contiguous impl round-trips both the per-token and the staged
    /// block protocols under trait dispatch.
    #[test]
    fn kv_store_trait_matches_inherent_behavior() {
        fn fill<C: KvStore>(c: &mut C) {
            c.write(0, &[1.0, 2.0], &[3.0, 4.0]);
            c.advance();
            c.write_at(0, 1, &[5.0, 6.0], &[7.0, 8.0]);
            c.write_at(0, 2, &[9.0, 10.0], &[11.0, 12.0]);
            c.advance_by(2);
        }
        let mut c = KvCache::new(1, 4, 2);
        fill(&mut c);
        let store: &dyn Fn(&KvCache) = &|c| {
            assert_eq!(KvStore::len(c), 3);
            assert_eq!(KvStore::remaining(c), 1);
            assert_eq!(KvStore::key(c, 0, 1), &[5.0, 6.0]);
            assert_eq!(KvStore::value(c, 0, 2), &[11.0, 12.0]);
            assert_eq!(KvStore::n_layers(c), 1);
            assert_eq!(KvStore::kv_dim(c), 2);
            assert_eq!(KvStore::max_seq(c), 4);
        };
        store(&c);
    }
}
