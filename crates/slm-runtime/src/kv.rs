//! Per-layer key/value cache for incremental decoding.
//!
//! The paper's efficiency argument for local SLM deployment is that the
//! yes-probability falls out of a *single* forward pass over the prompt; the
//! KV cache is what makes that pass linear instead of quadratic re-reading.

use tensor::Matrix;

/// KV cache for one model: `n_layers` ring-less append-only buffers of
/// `(max_seq, kv_dim)` keys and values.
#[derive(Debug, Clone)]
pub struct KvCache {
    keys: Vec<Matrix>,
    values: Vec<Matrix>,
    len: usize,
    max_seq: usize,
    kv_dim: usize,
}

impl KvCache {
    /// Allocate a cache for `n_layers` layers with `kv_dim = n_kv_heads * head_dim`.
    pub fn new(n_layers: usize, max_seq: usize, kv_dim: usize) -> Self {
        Self {
            keys: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            values: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            len: 0,
            max_seq,
            kv_dim,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining capacity in positions.
    pub fn remaining(&self) -> usize {
        self.max_seq - self.len
    }

    /// Write the K/V vectors of the current position into `layer`'s buffers.
    /// Call once per layer per position, then [`KvCache::advance`].
    ///
    /// # Panics
    /// Panics when full or on dimension mismatch.
    pub fn write(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert!(
            self.len < self.max_seq,
            "KV cache full ({} positions)",
            self.max_seq
        );
        assert_eq!(k.len(), self.kv_dim, "key dim mismatch");
        assert_eq!(v.len(), self.kv_dim, "value dim mismatch");
        self.keys[layer].row_mut(self.len).copy_from_slice(k);
        self.values[layer].row_mut(self.len).copy_from_slice(v);
    }

    /// Commit the current position after all layers have written.
    pub fn advance(&mut self) {
        assert!(self.len < self.max_seq, "KV cache full");
        self.len += 1;
    }

    /// Cached key row for `layer` at `pos`.
    pub fn key(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos <= self.len);
        self.keys[layer].row(pos)
    }

    /// Cached value row for `layer` at `pos`.
    pub fn value(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos <= self.len);
        self.values[layer].row(pos)
    }

    /// Reset to empty without deallocating.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c = KvCache::new(2, 8, 4);
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 8);
    }

    #[test]
    fn write_then_advance_accumulates() {
        let mut c = KvCache::new(2, 8, 4);
        for pos in 0..3 {
            for layer in 0..2 {
                let k = [pos as f32; 4];
                let v = [pos as f32 + 10.0; 4];
                c.write(layer, &k, &v);
            }
            c.advance();
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.key(1, 2), &[2.0; 4]);
        assert_eq!(c.value(0, 1), &[11.0; 4]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.advance();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut c = KvCache::new(1, 1, 2);
        c.write(0, &[0.0; 2], &[0.0; 2]);
        c.advance();
        c.advance();
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[0.0; 3], &[0.0; 3]);
    }
}
