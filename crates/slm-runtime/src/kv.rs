//! Per-layer key/value cache for incremental decoding.
//!
//! The paper's efficiency argument for local SLM deployment is that the
//! yes-probability falls out of a *single* forward pass over the prompt; the
//! KV cache is what makes that pass linear instead of quadratic re-reading.

use tensor::Matrix;

/// KV cache for one model: `n_layers` ring-less append-only buffers of
/// `(max_seq, kv_dim)` keys and values.
#[derive(Debug, Clone)]
pub struct KvCache {
    keys: Vec<Matrix>,
    values: Vec<Matrix>,
    len: usize,
    max_seq: usize,
    kv_dim: usize,
}

impl KvCache {
    /// Allocate a cache for `n_layers` layers with `kv_dim = n_kv_heads * head_dim`.
    pub fn new(n_layers: usize, max_seq: usize, kv_dim: usize) -> Self {
        Self {
            keys: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            values: (0..n_layers)
                .map(|_| Matrix::zeros(max_seq, kv_dim))
                .collect(),
            len: 0,
            max_seq,
            kv_dim,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining capacity in positions.
    pub fn remaining(&self) -> usize {
        self.max_seq - self.len
    }

    /// Write the K/V vectors of the current position into `layer`'s buffers.
    /// Call once per layer per position, then [`KvCache::advance`].
    ///
    /// # Panics
    /// Panics when full or on dimension mismatch.
    pub fn write(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert!(
            self.len < self.max_seq,
            "KV cache full ({} positions)",
            self.max_seq
        );
        assert_eq!(k.len(), self.kv_dim, "key dim mismatch");
        assert_eq!(v.len(), self.kv_dim, "value dim mismatch");
        self.keys[layer].row_mut(self.len).copy_from_slice(k);
        self.values[layer].row_mut(self.len).copy_from_slice(v);
    }

    /// Commit the current position after all layers have written.
    pub fn advance(&mut self) {
        assert!(self.len < self.max_seq, "KV cache full");
        self.len += 1;
    }

    /// Write K/V for an explicit position, staging a multi-token block: the
    /// GEMM prefill writes positions `len..len + block` for one layer before
    /// any of them are committed, then calls [`KvCache::advance_by`] once
    /// after every layer has run.
    ///
    /// # Panics
    /// Panics when `pos` is beyond capacity or on dimension mismatch.
    pub fn write_at(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        assert!(
            pos < self.max_seq,
            "position {pos} beyond KV capacity ({} positions)",
            self.max_seq
        );
        assert_eq!(k.len(), self.kv_dim, "key dim mismatch");
        assert_eq!(v.len(), self.kv_dim, "value dim mismatch");
        self.keys[layer].row_mut(pos).copy_from_slice(k);
        self.values[layer].row_mut(pos).copy_from_slice(v);
    }

    /// Commit `n` staged positions at once (the block analogue of
    /// [`KvCache::advance`]).
    ///
    /// # Panics
    /// Panics when fewer than `n` positions remain.
    pub fn advance_by(&mut self, n: usize) {
        assert!(
            self.len + n <= self.max_seq,
            "KV cache full ({} positions)",
            self.max_seq
        );
        self.len += n;
    }

    /// Cached key row for `layer` at `pos`. Staged (written but not yet
    /// advanced) positions are readable: block attention reads keys of the
    /// in-flight token block.
    pub fn key(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.max_seq);
        self.keys[layer].row(pos)
    }

    /// Cached value row for `layer` at `pos`.
    pub fn value(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.max_seq);
        self.values[layer].row(pos)
    }

    /// Number of layers this cache serves.
    pub fn n_layers(&self) -> usize {
        self.keys.len()
    }

    /// K/V vector width (`n_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Capacity in positions.
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Bytes held by the *filled* K/V rows (the prefix-cache byte model:
    /// `2 buffers · n_layers · len · kv_dim · 4 bytes`). Staged rows and
    /// unused capacity are not counted.
    pub fn kv_bytes(&self) -> usize {
        2 * self.keys.len() * self.len * self.kv_dim * std::mem::size_of::<f32>()
    }

    /// Compact copy holding exactly the filled rows (`max_seq == len`): the
    /// form the prefix cache stores, so an idle snapshot costs `len` rows
    /// instead of the model's full context window.
    pub fn compact_clone(&self) -> KvCache {
        self.fork_with_capacity(self.len.max(1))
    }

    /// Copy the filled rows into a fresh cache with `max_seq` capacity — the
    /// copy-on-extend fork: the returned cache continues from position `len`
    /// and is fully independent of `self`.
    ///
    /// # Panics
    /// Panics when `max_seq < len`.
    pub fn fork_with_capacity(&self, max_seq: usize) -> KvCache {
        assert!(
            max_seq >= self.len,
            "fork capacity {max_seq} below filled length {}",
            self.len
        );
        let mut out = KvCache::new(self.keys.len(), max_seq, self.kv_dim);
        let filled = self.len * self.kv_dim;
        for layer in 0..self.keys.len() {
            out.keys[layer].as_mut_slice()[..filled]
                .copy_from_slice(&self.keys[layer].as_slice()[..filled]);
            out.values[layer].as_mut_slice()[..filled]
                .copy_from_slice(&self.values[layer].as_slice()[..filled]);
        }
        out.len = self.len;
        out
    }

    /// Reset to empty without deallocating.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c = KvCache::new(2, 8, 4);
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 8);
    }

    #[test]
    fn write_then_advance_accumulates() {
        let mut c = KvCache::new(2, 8, 4);
        for pos in 0..3 {
            for layer in 0..2 {
                let k = [pos as f32; 4];
                let v = [pos as f32 + 10.0; 4];
                c.write(layer, &k, &v);
            }
            c.advance();
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.key(1, 2), &[2.0; 4]);
        assert_eq!(c.value(0, 1), &[11.0; 4]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.advance();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut c = KvCache::new(1, 1, 2);
        c.write(0, &[0.0; 2], &[0.0; 2]);
        c.advance();
        c.advance();
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        let mut c = KvCache::new(1, 4, 2);
        c.write(0, &[0.0; 3], &[0.0; 3]);
    }
}
