//! # slm-runtime
//!
//! Small-language-model substrate for the hallucination-detection framework.
//!
//! The paper deploys Qwen2-1.5B-Instruct and MiniCPM-2B locally so it can
//! read the probability of the first generated token being "yes" (Eq. 2–3)
//! instead of paying for repeated API sampling. This crate reproduces that
//! capability in two layers (see DESIGN.md for the substitution argument):
//!
//! 1. **Engine** ([`model`], [`attention`], [`bpe`], [`prob`]) — a complete
//!    decoder-only transformer inference stack written from scratch: BPE
//!    tokenizer, RoPE attention with KV cache, SwiGLU MLPs, RMSNorm, greedy /
//!    top-k / nucleus sampling, and first-token probability extraction. It
//!    runs on deterministic synthetic weights (real checkpoints are not
//!    available offline) and demonstrates the exact code path the paper's
//!    local deployment relies on.
//! 2. **Behavioral verifiers** ([`sim`], [`profiles`]) — calibrated models of
//!    how instruction-tuned SLMs answer yes/no verification prompts: a
//!    feature-based entailment score (entity agreement, content containment,
//!    negation) pushed through per-model calibration (bias, temperature,
//!    noise). These supply the score *distributions* the framework's checker
//!    consumes, with distinct per-model means and variances as Eq. 4 assumes.
//! 3. **Scoring throughput** ([`batch`], [`cache`], [`prefix`]) — a
//!    deterministic batched executor for per-model probe jobs, a sharded
//!    memoizing verification cache, and a shared-prefix KV cache that
//!    prefills each `(question, context)` prefix once and forks it per
//!    sentence, all semantically invisible to the ensemble under the
//!    episode-purity contract
//!    ([`fallible::FallibleVerifier::try_p_yes_attempt`]): batched, cached,
//!    and sequential runs produce bitwise-identical scores. The engine's
//!    prompt processing itself runs as a blocked GEMM prefill
//!    ([`model::TransformerLM::prefill`]) that is bit-identical to the
//!    token-at-a-time loop.
//!
//! All verifier layers implement the common [`verifier::YesNoVerifier`] trait,
//! so the framework in `hallu-core` is agnostic to which one backs a model
//! slot.

pub mod attention;
pub mod batch;
pub mod beam;
pub mod bpe;
pub mod cache;
pub mod chat;
pub mod clock;
pub mod config;
pub mod engine_verifier;
pub mod fallible;
pub mod faults;
pub mod ffn;
pub mod gossip;
pub mod hedge;
pub mod kv;
pub mod limit;
pub mod model;
pub mod paged;
pub mod perplexity;
pub mod prefix;
pub mod prob;
pub mod profiles;
pub mod quant;
pub mod ring;
pub mod rope;
pub mod sample;
pub mod sim;
pub mod verifier;
pub mod weights;
pub mod weights_io;

pub use batch::{BatchEngine, BatchJob, BatchReport, ModelBatch, PrefixGroup, ProbeOutcome};
pub use cache::{CacheConfig, CacheKey, CacheKeyRef, CacheStats, VerificationCache};
pub use clock::{Clock, VirtualClock, WallClock};
pub use config::{ModelConfig, Precision};
pub use engine_verifier::EngineVerifier;
pub use fallible::{FallibleVerifier, Reliable, ScoredProbe, VerifierError};
pub use faults::{FaultInjector, FaultProfile};
pub use gossip::{
    CentralDetector, FailureDetector, GossipConfig, HysteresisConfig, LinkOracle, MemberId,
    SwimDetector, ViewEvent, ViewState,
};
pub use hedge::{HedgeConfig, HedgeHandle, HedgeStats, HedgedVerifier};
pub use kv::{KvCache, KvStore};
pub use limit::{ConcurrencyGate, GateStats};
pub use model::{InferenceModel, PrefillStream, TransformerLM, PREFILL_BLOCK};
pub use paged::{
    ContinuousBatcher, ContinuousBatcherConfig, ContinuousOutcome, JoinEvent, PagedKvCache,
    PagedKvPool, PagedPoolConfig, PagedPrefixCache, PoolExhausted, PoolStats,
};
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixStats};
pub use profiles::{chatgpt_sim, engine_profile, minicpm_sim, qwen2_sim};
pub use quant::{QuantizedLM, QuantizedMatrix, QuantizedWeights};
pub use ring::{HashRing, RebalanceReport, RingError, RingOp, DEFAULT_RING_SLOTS};
pub use verifier::{VerificationRequest, YesNoVerifier};
