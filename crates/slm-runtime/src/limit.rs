//! Per-model concurrency limits.
//!
//! A real SLM backend has a finite batch capacity; past it, extra in-flight
//! requests don't run concurrently — they queue inside the server and blow
//! the latency budget, or worse, OOM it. [`ConcurrencyGate`] makes that
//! limit explicit at the verifier boundary: at most `limit` calls may be
//! inside the wrapped verifier at once, and a call that finds the gate
//! saturated is rejected immediately with a *retryable*
//! [`VerifierError::Transient`] — the retry/backoff machinery upstream
//! already knows what to do with it, and the circuit breaker sees sustained
//! saturation as the failure streak it is.
//!
//! The gate only binds when calls are genuinely concurrent (e.g.
//! `DetectorConfig::parallel` sentence scoring); on the sequential serving
//! path it is a transparent pass-through with bookkeeping, which is exactly
//! the determinism story the serving runtime needs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use hallu_obs::{Counter, Obs};

use crate::fallible::{FallibleVerifier, ScoredProbe, VerifierError};
use crate::verifier::VerificationRequest;

/// Cumulative gate bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Calls that acquired a permit and ran.
    pub admitted: u64,
    /// Calls rejected at a saturated gate.
    pub rejected: u64,
    /// Highest concurrent occupancy observed.
    pub peak_in_flight: usize,
}

/// A [`FallibleVerifier`] wrapper enforcing a maximum number of in-flight
/// calls. `limit = 0` is a permanently-closed gate (useful in tests).
pub struct ConcurrencyGate<F> {
    inner: F,
    limit: usize,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    peak: AtomicUsize,
    obs_admitted: Counter,
    obs_rejected: Counter,
}

impl<F: FallibleVerifier> ConcurrencyGate<F> {
    /// Wrap `inner`, allowing at most `limit` concurrent calls.
    pub fn new(inner: F, limit: usize) -> Self {
        Self {
            inner,
            limit,
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
            obs_admitted: Counter::default(),
            obs_rejected: Counter::default(),
        }
    }

    /// Mirror admitted/rejected counts into `obs` as
    /// `hallu_gate_calls_total{model, outcome}`. Counter increments
    /// commute, so this is safe under genuine concurrency.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        let help = "Calls at the per-model concurrency gate, by outcome";
        let model = self.inner.name().to_string();
        self.obs_admitted = obs.counter(
            "hallu_gate_calls_total",
            help,
            &[("model", &model), ("outcome", "admitted")],
        );
        self.obs_rejected = obs.counter(
            "hallu_gate_calls_total",
            help,
            &[("model", &model), ("outcome", "rejected")],
        );
        self
    }

    /// The configured permit count.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Counters so far.
    pub fn stats(&self) -> GateStats {
        GateStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            peak_in_flight: self.peak.load(Ordering::Relaxed),
        }
    }

    /// Try to take a permit without blocking.
    fn try_acquire(&self) -> bool {
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current >= self.limit {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(current + 1, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => current = actual,
            }
        }
    }
}

/// Releases the permit even if the wrapped call panics.
struct Permit<'a>(&'a AtomicUsize);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<F: FallibleVerifier> FallibleVerifier for ConcurrencyGate<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn exposes_probabilities(&self) -> bool {
        self.inner.exposes_probabilities()
    }

    fn try_p_yes(&self, request: &VerificationRequest<'_>) -> Result<ScoredProbe, VerifierError> {
        if !self.try_acquire() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs_rejected.inc();
            return Err(VerifierError::Transient {
                reason: "concurrency limit",
            });
        }
        let permit = Permit(&self.in_flight);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.obs_admitted.inc();
        let result = self.inner.try_p_yes(request);
        drop(permit);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallible::Reliable;
    use crate::verifier::YesNoVerifier;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    struct Constant(f64);
    impl YesNoVerifier for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.0
        }
    }

    /// Blocks inside the call until released, to hold permits open.
    struct Blocking<'a> {
        barrier: &'a Barrier,
        release: &'a AtomicBool,
    }
    impl FallibleVerifier for Blocking<'_> {
        fn name(&self) -> &str {
            "blocking"
        }
        fn try_p_yes(
            &self,
            _request: &VerificationRequest<'_>,
        ) -> Result<ScoredProbe, VerifierError> {
            self.barrier.wait();
            while !self.release.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            Ok(ScoredProbe {
                p_yes: 0.5,
                latency_ms: 1.0,
            })
        }
    }

    #[test]
    fn sequential_calls_pass_through_unchanged() {
        let gate = ConcurrencyGate::new(Reliable::new(Constant(0.7)), 1);
        let plain = Reliable::new(Constant(0.7));
        let req = VerificationRequest::new("q", "c", "r");
        assert_eq!(
            gate.try_p_yes(&req).unwrap(),
            plain.try_p_yes(&req).unwrap()
        );
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.rejected), (1, 0));
        assert_eq!(stats.peak_in_flight, 1);
        assert_eq!(gate.name(), "constant");
    }

    #[test]
    fn zero_limit_rejects_retryably() {
        let gate = ConcurrencyGate::new(Reliable::new(Constant(0.7)), 0);
        let req = VerificationRequest::new("q", "c", "r");
        let err = gate.try_p_yes(&req).unwrap_err();
        assert!(
            err.is_retryable(),
            "saturation must invite a retry: {err:?}"
        );
        assert_eq!(gate.stats().rejected, 1);
    }

    #[test]
    fn saturated_gate_rejects_the_overflow_call() {
        let limit = 2;
        let barrier = Barrier::new(limit + 1);
        let release = AtomicBool::new(false);
        let gate = ConcurrencyGate::new(
            Blocking {
                barrier: &barrier,
                release: &release,
            },
            limit,
        );
        std::thread::scope(|scope| {
            let mut holders = Vec::new();
            for _ in 0..limit {
                holders
                    .push(scope.spawn(|| gate.try_p_yes(&VerificationRequest::new("q", "c", "r"))));
            }
            // both holders are inside the verifier once the barrier clears
            barrier.wait();
            let overflow = gate.try_p_yes(&VerificationRequest::new("q", "c", "r"));
            assert_eq!(
                overflow.unwrap_err(),
                VerifierError::Transient {
                    reason: "concurrency limit"
                }
            );
            release.store(true, Ordering::Release);
            for h in holders {
                assert!(h.join().expect("no panic").is_ok());
            }
        });
        let stats = gate.stats();
        assert_eq!(stats.admitted, limit as u64);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_in_flight, limit);
    }

    #[test]
    fn obs_counters_mirror_gate_stats() {
        let obs = Obs::new();
        let gate = ConcurrencyGate::new(Reliable::new(Constant(0.7)), 0).with_obs(&obs);
        let open = ConcurrencyGate::new(Reliable::new(Constant(0.7)), 2).with_obs(&obs);
        let req = VerificationRequest::new("q", "c", "r");
        let _ = gate.try_p_yes(&req);
        for _ in 0..3 {
            let _ = open.try_p_yes(&req);
        }
        let snap = obs.metrics_snapshot();
        assert_eq!(
            snap.value(
                "hallu_gate_calls_total",
                &[("model", "constant"), ("outcome", "rejected")],
            ),
            Some(1.0)
        );
        assert_eq!(
            snap.value(
                "hallu_gate_calls_total",
                &[("model", "constant"), ("outcome", "admitted")],
            ),
            Some(3.0)
        );
    }

    #[test]
    fn permits_are_released_after_calls() {
        let gate = ConcurrencyGate::new(Reliable::new(Constant(0.7)), 1);
        let req = VerificationRequest::new("q", "c", "r");
        for _ in 0..5 {
            assert!(gate.try_p_yes(&req).is_ok());
        }
        assert_eq!(gate.stats().admitted, 5);
        assert_eq!(gate.in_flight.load(Ordering::Acquire), 0);
    }
}
