//! The decoder-only transformer language model.

use tensor::nn::rmsnorm;
use tensor::ops::{axpy, vecmat};
use tensor::Matrix;

use crate::attention::{attention_block, attention_step};
use crate::bpe::TokenId;
use crate::config::ModelConfig;
use crate::ffn::{ffn_block, ffn_step};
use crate::kv::KvCache;
use crate::rope::RopeTable;
use crate::weights::ModelWeights;

/// Tokens per GEMM block in [`TransformerLM::prefill`]. Bounds activation
/// memory to `PREFILL_BLOCK × hidden` floats per buffer while keeping the
/// projection matmuls wide enough that `B`-panel reuse pays off.
const PREFILL_BLOCK: usize = 64;

/// A runnable transformer LM: config + weights + RoPE tables.
#[derive(Debug, Clone)]
pub struct TransformerLM {
    cfg: ModelConfig,
    weights: ModelWeights,
    rope: RopeTable,
}

impl TransformerLM {
    /// Assemble a model. The weights must match `cfg`'s shapes (they do by
    /// construction when built with [`ModelWeights::synthetic`]).
    ///
    /// # Panics
    /// Panics if the config is invalid, naming the failed constraint.
    pub fn new(cfg: ModelConfig, weights: ModelWeights) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model config: {e}");
        }
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        Self { cfg, weights, rope }
    }

    /// Convenience: synthetic weights from a seed.
    pub fn synthetic(cfg: ModelConfig, seed: u64) -> Self {
        let weights = ModelWeights::synthetic(&cfg, seed);
        Self::new(cfg, weights)
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Allocate a fresh KV cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(
            self.cfg.n_layers,
            self.cfg.max_seq_len,
            self.cfg.n_kv_heads * self.cfg.head_dim(),
        )
    }

    /// Run one token through the model, returning the next-token logits.
    ///
    /// The token is processed at position `cache.len()`; the cache is
    /// advanced before returning.
    ///
    /// # Panics
    /// Panics if the cache is full or the token id is out of vocabulary.
    pub fn forward_token(&self, token: TokenId, cache: &mut KvCache) -> Vec<f32> {
        let h = self.cfg.hidden;
        assert!(
            (token as usize) < self.cfg.vocab_size,
            "token {token} out of vocabulary"
        );
        let mut x: Vec<f32> = self.weights.embed.row(token as usize).to_vec();
        let mut normed = vec![0.0f32; h];

        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            // Pre-norm attention with residual.
            rmsnorm(&x, &layer.attn_norm, self.cfg.norm_eps, &mut normed);
            let attn_out = attention_step(&self.cfg, layer, &self.rope, cache, layer_idx, &normed);
            axpy(1.0, &attn_out, &mut x);

            // Pre-norm FFN with residual.
            rmsnorm(&x, &layer.ffn_norm, self.cfg.norm_eps, &mut normed);
            let ffn_out = ffn_step(layer, &normed);
            axpy(1.0, &ffn_out, &mut x);
        }
        cache.advance();

        rmsnorm(
            &x.clone(),
            &self.weights.final_norm,
            self.cfg.norm_eps,
            &mut x,
        );
        self.lm_head_logits(&x)
    }

    /// Final-norm'd hidden state → logits. One shared path so the sequential
    /// and block prefills go through bit-identical LM-head code.
    ///
    /// The LM head is the widest matrix in the model; split its columns
    /// across threads for large vocabularies (bit-identical to serial).
    fn lm_head_logits(&self, x: &[f32]) -> Vec<f32> {
        if self.cfg.vocab_size >= 4096 {
            let threads = std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(8);
            tensor::ops::vecmat_parallel(x, &self.weights.lm_head, threads)
        } else {
            vecmat(x, &self.weights.lm_head)
        }
    }

    /// Run a block of tokens through all layers as matrix-at-a-time GEMMs,
    /// committing their K/V rows and returning the residual stream (one row
    /// per token, *before* the final norm).
    ///
    /// Row `i` is bit-identical to the `x` vector [`TransformerLM::forward_token`]
    /// would hold after processing `tokens[i]` at position `cache.len() + i`:
    /// the projections are [`tensor::ops::matmul_into`] GEMMs whose rows match
    /// `vecmat` exactly, and rmsnorm/attention-core/axpy run per row in the
    /// sequential order.
    fn forward_block_states(&self, tokens: &[TokenId], cache: &mut KvCache) -> Matrix {
        let h = self.cfg.hidden;
        let block = tokens.len();
        let mut xs = Matrix::zeros(block, h);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(
                (t as usize) < self.cfg.vocab_size,
                "token {t} out of vocabulary"
            );
            xs.row_mut(i)
                .copy_from_slice(self.weights.embed.row(t as usize));
        }

        let mut normed = Matrix::zeros(block, h);
        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            for i in 0..block {
                rmsnorm(
                    xs.row(i),
                    &layer.attn_norm,
                    self.cfg.norm_eps,
                    normed.row_mut(i),
                );
            }
            let attn_out = attention_block(&self.cfg, layer, &self.rope, cache, layer_idx, &normed);
            for i in 0..block {
                axpy(1.0, attn_out.row(i), xs.row_mut(i));
            }

            for i in 0..block {
                rmsnorm(
                    xs.row(i),
                    &layer.ffn_norm,
                    self.cfg.norm_eps,
                    normed.row_mut(i),
                );
            }
            let ffn_out = ffn_block(layer, &normed);
            for i in 0..block {
                axpy(1.0, ffn_out.row(i), xs.row_mut(i));
            }
        }
        cache.advance_by(block);
        xs
    }

    /// Prefill a prompt with the blocked GEMM forward, returning the logits
    /// after the final prompt token.
    ///
    /// Bit-identical to [`TransformerLM::prefill_sequential`] — and faster on
    /// two counts: the projection/FFN matmuls process [`PREFILL_BLOCK`] tokens
    /// per weight-matrix pass, and the LM head (the widest matrix in the
    /// model) is applied once to the final token instead of once per prompt
    /// token.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill(&self, prompt: &[TokenId], cache: &mut KvCache) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        let mut last = Vec::new();
        for chunk in prompt.chunks(PREFILL_BLOCK) {
            let xs = self.forward_block_states(chunk, cache);
            last = xs.row(xs.rows() - 1).to_vec();
        }
        let mut x = vec![0.0f32; self.cfg.hidden];
        rmsnorm(&last, &self.weights.final_norm, self.cfg.norm_eps, &mut x);
        self.lm_head_logits(&x)
    }

    /// Prefill a prompt's K/V state without computing any logits: the form
    /// used when snapshotting a shared prefix, whose next-token distribution
    /// is never consumed. Skips the final norm and the LM head entirely.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill_cache_only(&self, prompt: &[TokenId], cache: &mut KvCache) {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        for chunk in prompt.chunks(PREFILL_BLOCK) {
            self.forward_block_states(chunk, cache);
        }
    }

    /// The original token-at-a-time prefill, kept as the parity reference and
    /// bench baseline. Note it computes (and discards) full-vocabulary logits
    /// for every prompt token — the cost the blocked path avoids.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill_sequential(&self, prompt: &[TokenId], cache: &mut KvCache) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward_token(t, cache);
        }
        logits
    }

    /// Greedy-decode up to `max_new` tokens after a prompt, stopping at
    /// `stop_token` if given. Returns the generated ids.
    pub fn generate_greedy(
        &self,
        prompt: &[TokenId],
        max_new: usize,
        stop_token: Option<TokenId>,
    ) -> Vec<TokenId> {
        let mut cache = self.new_cache();
        let mut logits = self.prefill(prompt, &mut cache);
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = crate::sample::argmax(&logits) as TokenId;
            if Some(next) == stop_token {
                break;
            }
            out.push(next);
            if cache.remaining() == 0 {
                break;
            }
            logits = self.forward_token(next, &mut cache);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TransformerLM {
        TransformerLM::synthetic(ModelConfig::tiny(48), 11)
    }

    #[test]
    fn logits_cover_vocab_and_are_finite() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        let logits = m.forward_token(5, &mut cache);
        assert_eq!(logits.len(), 48);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        assert_eq!(
            m.prefill(&[1, 2, 3], &mut c1),
            m.prefill(&[1, 2, 3], &mut c2)
        );
    }

    #[test]
    fn different_prompts_give_different_logits() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[1, 2, 3], &mut c1);
        let b = m.prefill(&[1, 2, 4], &mut c2);
        assert_ne!(a, b);
    }

    #[test]
    fn context_affects_final_logits() {
        // Same final token, different prefix → different logits (attention works).
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[7, 9], &mut c1);
        let b = m.prefill(&[8, 9], &mut c2);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn prefill_advances_cache() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[1, 2, 3, 4], &mut cache);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn incremental_equals_prefill() {
        // Running tokens one at a time through the same cache must equal the
        // blocked prefill — bitwise, not approximately: the GEMM rows
        // accumulate in the same order as the per-token vecmats.
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let full = m.prefill(&[3, 1, 4, 1, 5], &mut c1);

        let mut c2 = m.new_cache();
        let mut last = Vec::new();
        for &t in &[3, 1, 4, 1, 5] {
            last = m.forward_token(t, &mut c2);
        }
        assert_eq!(full, last);
    }

    #[test]
    fn gemm_prefill_is_bit_identical_to_sequential() {
        // Across prompt lengths that cover a single partial block, exact
        // block multiples, and a PREFILL_BLOCK boundary crossing.
        let m = tiny_model();
        for len in [1usize, 2, 5, 63, 64, 65, 130] {
            let prompt: Vec<TokenId> = (0..len).map(|i| ((i * 7 + 3) % 48) as TokenId).collect();
            let mut c_blk = m.new_cache();
            let mut c_seq = m.new_cache();
            let blk = m.prefill(&prompt, &mut c_blk);
            let seq = m.prefill_sequential(&prompt, &mut c_seq);
            assert_eq!(blk, seq, "len {len}");
            assert_eq!(c_blk.len(), c_seq.len(), "len {len}");
            for layer in 0..m.config().n_layers {
                for pos in 0..c_blk.len() {
                    assert_eq!(
                        c_blk.key(layer, pos),
                        c_seq.key(layer, pos),
                        "len {len} layer {layer} pos {pos}"
                    );
                    assert_eq!(
                        c_blk.value(layer, pos),
                        c_seq.value(layer, pos),
                        "len {len} layer {layer} pos {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_only_prefill_leaves_identical_kv_state() {
        // prefill_cache_only must put the cache in the same state as prefill;
        // a token forwarded afterwards sees identical logits.
        let m = tiny_model();
        let prompt: Vec<TokenId> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut c_full = m.new_cache();
        let mut c_kv = m.new_cache();
        m.prefill(&prompt, &mut c_full);
        m.prefill_cache_only(&prompt, &mut c_kv);
        assert_eq!(c_full.len(), c_kv.len());
        let a = m.forward_token(7, &mut c_full);
        let b = m.forward_token(7, &mut c_kv);
        assert_eq!(a, b);
    }

    #[test]
    fn forked_cache_extends_like_the_original() {
        // Fork-then-extend parity: snapshotting a prefix KV state, forking it
        // with fresh capacity, and extending with a suffix must be bitwise
        // identical to prefilling prefix+suffix from scratch.
        let m = tiny_model();
        let prefix: Vec<TokenId> = vec![3, 1, 4, 1, 5];
        let suffix: Vec<TokenId> = vec![9, 2, 6];
        let full: Vec<TokenId> = prefix.iter().chain(&suffix).copied().collect();

        let mut c_scratch = m.new_cache();
        let scratch = m.prefill(&full, &mut c_scratch);

        let mut c_prefix = m.new_cache();
        m.prefill_cache_only(&prefix, &mut c_prefix);
        let snapshot = c_prefix.compact_clone();
        let mut forked = snapshot.fork_with_capacity(m.config().max_seq_len);
        let via_fork = m.prefill(&suffix, &mut forked);

        assert_eq!(scratch, via_fork);
    }

    #[test]
    fn greedy_generation_is_deterministic_and_bounded() {
        let m = tiny_model();
        let a = m.generate_greedy(&[1, 2], 8, None);
        let b = m.generate_greedy(&[1, 2], 8, None);
        assert_eq!(a, b);
        assert!(a.len() <= 8);
    }

    #[test]
    fn stop_token_halts_generation() {
        let m = tiny_model();
        let unbounded = m.generate_greedy(&[1, 2], 8, None);
        if let Some(&first) = unbounded.first() {
            let stopped = m.generate_greedy(&[1, 2], 8, Some(first));
            assert!(stopped.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.forward_token(999, &mut cache);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_prompt_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[], &mut cache);
    }
}
