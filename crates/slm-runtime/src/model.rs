//! The decoder-only transformer language model.

use tensor::nn::rmsnorm;
use tensor::ops::axpy;
use tensor::{Linear, Matrix};

use crate::attention::{attention_block, attention_step};
use crate::bpe::TokenId;
use crate::config::ModelConfig;
use crate::ffn::{ffn_block, ffn_step};
use crate::kv::{KvCache, KvStore};
use crate::rope::RopeTable;
use crate::weights::{LayerView, ModelWeights};

/// One token through every layer: the residual stream *before* the final
/// norm, with the token's K/V committed and the cache advanced. Shared by the
/// f32 and int8 engines — only the [`LayerView`] projections differ.
///
/// # Panics
/// Panics if the cache is full or the token id is out of vocabulary.
pub(crate) fn forward_token_core<C: KvStore, L: LayerView>(
    cfg: &ModelConfig,
    embed: &Matrix,
    layers: &[L],
    rope: &RopeTable,
    token: TokenId,
    cache: &mut C,
) -> Vec<f32> {
    let h = cfg.hidden;
    assert!(
        (token as usize) < cfg.vocab_size,
        "token {token} out of vocabulary"
    );
    let mut x: Vec<f32> = embed.row(token as usize).to_vec();
    let mut normed = vec![0.0f32; h];

    for (layer_idx, layer) in layers.iter().enumerate() {
        // Pre-norm attention with residual.
        rmsnorm(&x, layer.attn_norm(), cfg.norm_eps, &mut normed);
        let attn_out = attention_step(cfg, layer, rope, cache, layer_idx, &normed);
        axpy(1.0, &attn_out, &mut x);

        // Pre-norm FFN with residual.
        rmsnorm(&x, layer.ffn_norm(), cfg.norm_eps, &mut normed);
        let ffn_out = ffn_step(layer, &normed);
        axpy(1.0, &ffn_out, &mut x);
    }
    cache.advance();
    x
}

/// A block of tokens through every layer as blocked GEMMs: one residual row
/// per token (pre final-norm), K/V committed via `advance_by`. Row `i` is
/// bit-identical to [`forward_token_core`] on `tokens[i]` — the projections
/// satisfy the [`Linear`] block/single-row contract and rmsnorm, the
/// attention core and axpy run per row in sequential order.
pub(crate) fn forward_block_core<C: KvStore, L: LayerView>(
    cfg: &ModelConfig,
    embed: &Matrix,
    layers: &[L],
    rope: &RopeTable,
    tokens: &[TokenId],
    cache: &mut C,
) -> Matrix {
    let h = cfg.hidden;
    let block = tokens.len();
    let mut xs = Matrix::zeros(block, h);
    for (i, &t) in tokens.iter().enumerate() {
        assert!((t as usize) < cfg.vocab_size, "token {t} out of vocabulary");
        xs.row_mut(i).copy_from_slice(embed.row(t as usize));
    }

    let mut normed = Matrix::zeros(block, h);
    for (layer_idx, layer) in layers.iter().enumerate() {
        for i in 0..block {
            rmsnorm(
                xs.row(i),
                layer.attn_norm(),
                cfg.norm_eps,
                normed.row_mut(i),
            );
        }
        let attn_out = attention_block(cfg, layer, rope, cache, layer_idx, &normed);
        for i in 0..block {
            axpy(1.0, attn_out.row(i), xs.row_mut(i));
        }

        for i in 0..block {
            rmsnorm(xs.row(i), layer.ffn_norm(), cfg.norm_eps, normed.row_mut(i));
        }
        let ffn_out = ffn_block(layer, &normed);
        for i in 0..block {
            axpy(1.0, ffn_out.row(i), xs.row_mut(i));
        }
    }
    cache.advance_by(block);
    xs
}

/// Final norm + LM head, shared by every prefill path of both precisions.
///
/// The LM head is the widest matrix in the model; for large vocabularies its
/// columns are split across threads ([`Linear::apply_parallel`] is
/// bit-identical to serial for both precisions).
pub(crate) fn finish_logits_core<Lin: Linear>(
    cfg: &ModelConfig,
    final_norm: &[f32],
    lm_head: &Lin,
    last_residual: &[f32],
) -> Vec<f32> {
    let mut x = vec![0.0f32; cfg.hidden];
    rmsnorm(last_residual, final_norm, cfg.norm_eps, &mut x);
    if cfg.vocab_size >= 4096 {
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8);
        lm_head.apply_parallel(&x, threads)
    } else {
        lm_head.apply(&x)
    }
}

/// Tokens per GEMM block in [`TransformerLM::prefill`]. Bounds activation
/// memory to `PREFILL_BLOCK × hidden` floats per buffer while keeping the
/// projection matmuls wide enough that `B`-panel reuse pays off.
///
/// Public because it is also the *join granularity* of continuous batching:
/// [`PrefillStream`] advances one such block per step, and the paged
/// scheduler admits new sequences only at these boundaries, so interleaving
/// never splits a GEMM block (the determinism argument in DESIGN.md §15).
pub const PREFILL_BLOCK: usize = 64;

/// A model the inference machinery can drive: the contract shared by the f32
/// [`TransformerLM`] and the int8 `quant::QuantizedLM`.
///
/// Implementors supply the per-token forward, the blocked forward, and the
/// final-norm + LM-head projection; the prefill family, cache allocation and
/// greedy decoding are provided in terms of those, so both precisions run the
/// *same* chunking/finish logic — [`PrefillStream`], continuous batching and
/// the `p_yes` probability extraction are generic over this trait.
pub trait InferenceModel {
    /// Model configuration.
    fn config(&self) -> &ModelConfig;

    /// Run one token at position `cache.len()`, advance the cache, return the
    /// next-token logits.
    ///
    /// # Panics
    /// Panics if the cache is full or the token id is out of vocabulary.
    fn forward_token<C: KvStore>(&self, token: TokenId, cache: &mut C) -> Vec<f32>;

    /// Run a block of tokens through all layers as blocked GEMMs, committing
    /// their K/V rows and returning the residual stream (one row per token,
    /// *before* the final norm). Row `i` must be bit-identical to the
    /// residual [`InferenceModel::forward_token`] would hold for `tokens[i]`.
    fn forward_block_states<C: KvStore>(&self, tokens: &[TokenId], cache: &mut C) -> Matrix;

    /// Final norm + LM head on a residual-stream row: the shared tail of
    /// every prefill path.
    fn finish_logits(&self, last_residual: &[f32]) -> Vec<f32>;

    /// Allocate a fresh KV cache sized for the full context window.
    fn new_cache(&self) -> KvCache {
        self.new_cache_with_capacity(self.config().max_seq_len)
    }

    /// Allocate a fresh KV cache with exactly `max_seq` positions (clamped to
    /// the model's context window, floored at 1).
    fn new_cache_with_capacity(&self, max_seq: usize) -> KvCache {
        let cfg = self.config();
        KvCache::new(
            cfg.n_layers,
            max_seq.min(cfg.max_seq_len).max(1),
            cfg.n_kv_heads * cfg.head_dim(),
        )
    }

    /// Blocked-GEMM prefill: run the prompt in [`PREFILL_BLOCK`] chunks and
    /// return the logits after the final prompt token.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    fn prefill<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        let mut last = Vec::new();
        for chunk in prompt.chunks(PREFILL_BLOCK) {
            let xs = self.forward_block_states(chunk, cache);
            last = xs.row(xs.rows() - 1).to_vec();
        }
        self.finish_logits(&last)
    }

    /// Prefill a prompt's K/V state without computing any logits (prefix
    /// snapshotting). Skips the final norm and the LM head entirely.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    fn prefill_cache_only<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        for chunk in prompt.chunks(PREFILL_BLOCK) {
            self.forward_block_states(chunk, cache);
        }
    }

    /// Token-at-a-time prefill: the parity reference and bench baseline. Note
    /// it computes (and discards) full-vocabulary logits for every prompt
    /// token — the cost the blocked path avoids.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    fn prefill_sequential<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward_token(t, cache);
        }
        logits
    }

    /// Greedy-decode up to `max_new` tokens after a prompt, stopping at
    /// `stop_token` if given. Returns the generated ids.
    fn generate_greedy(
        &self,
        prompt: &[TokenId],
        max_new: usize,
        stop_token: Option<TokenId>,
    ) -> Vec<TokenId> {
        let mut cache = self.new_cache();
        let mut logits = self.prefill(prompt, &mut cache);
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = crate::sample::argmax(&logits) as TokenId;
            if Some(next) == stop_token {
                break;
            }
            out.push(next);
            if cache.remaining() == 0 {
                break;
            }
            logits = self.forward_token(next, &mut cache);
        }
        out
    }
}

/// A runnable transformer LM: config + weights + RoPE tables.
#[derive(Debug, Clone)]
pub struct TransformerLM {
    cfg: ModelConfig,
    weights: ModelWeights,
    rope: RopeTable,
}

impl TransformerLM {
    /// Assemble a model. The weights must match `cfg`'s shapes (they do by
    /// construction when built with [`ModelWeights::synthetic`]).
    ///
    /// # Panics
    /// Panics if the config is invalid, naming the failed constraint.
    pub fn new(cfg: ModelConfig, weights: ModelWeights) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model config: {e}");
        }
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        Self { cfg, weights, rope }
    }

    /// Convenience: synthetic weights from a seed.
    pub fn synthetic(cfg: ModelConfig, seed: u64) -> Self {
        let weights = ModelWeights::synthetic(&cfg, seed);
        Self::new(cfg, weights)
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Allocate a fresh KV cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        InferenceModel::new_cache(self)
    }

    /// Allocate a fresh KV cache with exactly `max_seq` positions (clamped
    /// to the model's context window). Per-probe forks should size their
    /// cache for the prompt actually being scored — allocating the full
    /// window per sentence is the over-allocation the fork-capacity
    /// regression tests pin down.
    pub fn new_cache_with_capacity(&self, max_seq: usize) -> KvCache {
        InferenceModel::new_cache_with_capacity(self, max_seq)
    }

    /// Run one token through the model, returning the next-token logits.
    ///
    /// The token is processed at position `cache.len()`; the cache is
    /// advanced before returning.
    ///
    /// # Panics
    /// Panics if the cache is full or the token id is out of vocabulary.
    pub fn forward_token<C: KvStore>(&self, token: TokenId, cache: &mut C) -> Vec<f32> {
        let x = forward_token_core(
            &self.cfg,
            &self.weights.embed,
            &self.weights.layers,
            &self.rope,
            token,
            cache,
        );
        InferenceModel::finish_logits(self, &x)
    }

    /// Prefill a prompt with the blocked GEMM forward, returning the logits
    /// after the final prompt token.
    ///
    /// Bit-identical to [`TransformerLM::prefill_sequential`] — and faster on
    /// two counts: the projection/FFN matmuls process [`PREFILL_BLOCK`] tokens
    /// per weight-matrix pass, and the LM head (the widest matrix in the
    /// model) is applied once to the final token instead of once per prompt
    /// token.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        InferenceModel::prefill(self, prompt, cache)
    }

    /// Prefill a prompt's K/V state without computing any logits: the form
    /// used when snapshotting a shared prefix, whose next-token distribution
    /// is never consumed. Skips the final norm and the LM head entirely.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill_cache_only<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) {
        InferenceModel::prefill_cache_only(self, prompt, cache)
    }

    /// The original token-at-a-time prefill, kept as the parity reference and
    /// bench baseline.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill_sequential<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        InferenceModel::prefill_sequential(self, prompt, cache)
    }

    /// Greedy-decode up to `max_new` tokens after a prompt, stopping at
    /// `stop_token` if given. Returns the generated ids.
    pub fn generate_greedy(
        &self,
        prompt: &[TokenId],
        max_new: usize,
        stop_token: Option<TokenId>,
    ) -> Vec<TokenId> {
        InferenceModel::generate_greedy(self, prompt, max_new, stop_token)
    }
}

impl InferenceModel for TransformerLM {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward_token<C: KvStore>(&self, token: TokenId, cache: &mut C) -> Vec<f32> {
        TransformerLM::forward_token(self, token, cache)
    }

    fn forward_block_states<C: KvStore>(&self, tokens: &[TokenId], cache: &mut C) -> Matrix {
        forward_block_core(
            &self.cfg,
            &self.weights.embed,
            &self.weights.layers,
            &self.rope,
            tokens,
            cache,
        )
    }

    fn finish_logits(&self, last_residual: &[f32]) -> Vec<f32> {
        finish_logits_core(
            &self.cfg,
            &self.weights.final_norm,
            &self.weights.lm_head,
            last_residual,
        )
    }
}

/// A prefill suspended between GEMM blocks: the unit continuous batching
/// schedules.
///
/// Each [`PrefillStream::step`] runs exactly one [`PREFILL_BLOCK`]-sized
/// chunk through [`TransformerLM`], against this stream's *own* cache. The
/// chunk boundaries depend only on the stream's token list — never on what
/// other streams run between its steps — and sequences share no KV state,
/// so any interleaving of steps across streams produces bitwise-identical
/// per-stream logits to running each prefill in isolation. That invariance
/// is what lets a scheduler admit new sentence probes at block boundaries
/// ("continuous batching") without re-opening the parity argument.
pub struct PrefillStream<'m, C: KvStore, M: InferenceModel = TransformerLM> {
    model: &'m M,
    tokens: Vec<TokenId>,
    cache: C,
    consumed: usize,
    /// Residual-stream row of the last processed token (pre final-norm).
    last: Vec<f32>,
}

impl<'m, C: KvStore, M: InferenceModel> PrefillStream<'m, C, M> {
    /// Begin a prefill of `tokens` into `cache` (which may already hold a
    /// forked prefix; the stream extends from `cache.len()`).
    ///
    /// # Panics
    /// Panics on an empty token list or when it exceeds `cache.remaining()`
    /// — for a paged cache that means capacity must be reserved *before*
    /// the stream is built, so stepping can never fail mid-flight.
    pub fn new(model: &'m M, tokens: Vec<TokenId>, cache: C) -> Self {
        assert!(!tokens.is_empty(), "prompt must not be empty");
        assert!(
            tokens.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        Self {
            model,
            tokens,
            cache,
            consumed: 0,
            last: Vec::new(),
        }
    }

    /// Run the next [`PREFILL_BLOCK`] chunk (or the final partial chunk).
    /// Returns how many tokens were processed — 0 when already done.
    pub fn step(&mut self) -> usize {
        if self.consumed >= self.tokens.len() {
            return 0;
        }
        let end = (self.consumed + PREFILL_BLOCK).min(self.tokens.len());
        let xs = self
            .model
            .forward_block_states(&self.tokens[self.consumed..end], &mut self.cache);
        self.last = xs.row(xs.rows() - 1).to_vec();
        let n = end - self.consumed;
        self.consumed = end;
        n
    }

    /// Whether every token has been processed.
    pub fn is_done(&self) -> bool {
        self.consumed >= self.tokens.len()
    }

    /// Tokens not yet run.
    pub fn remaining_tokens(&self) -> usize {
        self.tokens.len() - self.consumed
    }

    /// Blocks not yet run (what the scheduler charges per step).
    pub fn remaining_blocks(&self) -> usize {
        self.remaining_tokens().div_ceil(PREFILL_BLOCK)
    }

    /// The stream's cache (inspection).
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Run any remaining blocks, then compute the final-token logits exactly
    /// as [`InferenceModel::prefill`] does. Returns the logits and the cache.
    pub fn finish(mut self) -> (Vec<f32>, C) {
        while self.step() > 0 {}
        (self.model.finish_logits(&self.last), self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TransformerLM {
        TransformerLM::synthetic(ModelConfig::tiny(48), 11)
    }

    #[test]
    fn logits_cover_vocab_and_are_finite() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        let logits = m.forward_token(5, &mut cache);
        assert_eq!(logits.len(), 48);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        assert_eq!(
            m.prefill(&[1, 2, 3], &mut c1),
            m.prefill(&[1, 2, 3], &mut c2)
        );
    }

    #[test]
    fn different_prompts_give_different_logits() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[1, 2, 3], &mut c1);
        let b = m.prefill(&[1, 2, 4], &mut c2);
        assert_ne!(a, b);
    }

    #[test]
    fn context_affects_final_logits() {
        // Same final token, different prefix → different logits (attention works).
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[7, 9], &mut c1);
        let b = m.prefill(&[8, 9], &mut c2);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn prefill_advances_cache() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[1, 2, 3, 4], &mut cache);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn incremental_equals_prefill() {
        // Running tokens one at a time through the same cache must equal the
        // blocked prefill — bitwise, not approximately: the GEMM rows
        // accumulate in the same order as the per-token vecmats.
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let full = m.prefill(&[3, 1, 4, 1, 5], &mut c1);

        let mut c2 = m.new_cache();
        let mut last = Vec::new();
        for &t in &[3, 1, 4, 1, 5] {
            last = m.forward_token(t, &mut c2);
        }
        assert_eq!(full, last);
    }

    #[test]
    fn gemm_prefill_is_bit_identical_to_sequential() {
        // Across prompt lengths that cover a single partial block, exact
        // block multiples, and a PREFILL_BLOCK boundary crossing.
        let m = tiny_model();
        for len in [1usize, 2, 5, 63, 64, 65, 130] {
            let prompt: Vec<TokenId> = (0..len).map(|i| ((i * 7 + 3) % 48) as TokenId).collect();
            let mut c_blk = m.new_cache();
            let mut c_seq = m.new_cache();
            let blk = m.prefill(&prompt, &mut c_blk);
            let seq = m.prefill_sequential(&prompt, &mut c_seq);
            assert_eq!(blk, seq, "len {len}");
            assert_eq!(c_blk.len(), c_seq.len(), "len {len}");
            for layer in 0..m.config().n_layers {
                for pos in 0..c_blk.len() {
                    assert_eq!(
                        c_blk.key(layer, pos),
                        c_seq.key(layer, pos),
                        "len {len} layer {layer} pos {pos}"
                    );
                    assert_eq!(
                        c_blk.value(layer, pos),
                        c_seq.value(layer, pos),
                        "len {len} layer {layer} pos {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_only_prefill_leaves_identical_kv_state() {
        // prefill_cache_only must put the cache in the same state as prefill;
        // a token forwarded afterwards sees identical logits.
        let m = tiny_model();
        let prompt: Vec<TokenId> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut c_full = m.new_cache();
        let mut c_kv = m.new_cache();
        m.prefill(&prompt, &mut c_full);
        m.prefill_cache_only(&prompt, &mut c_kv);
        assert_eq!(c_full.len(), c_kv.len());
        let a = m.forward_token(7, &mut c_full);
        let b = m.forward_token(7, &mut c_kv);
        assert_eq!(a, b);
    }

    #[test]
    fn forked_cache_extends_like_the_original() {
        // Fork-then-extend parity: snapshotting a prefix KV state, forking it
        // with fresh capacity, and extending with a suffix must be bitwise
        // identical to prefilling prefix+suffix from scratch.
        let m = tiny_model();
        let prefix: Vec<TokenId> = vec![3, 1, 4, 1, 5];
        let suffix: Vec<TokenId> = vec![9, 2, 6];
        let full: Vec<TokenId> = prefix.iter().chain(&suffix).copied().collect();

        let mut c_scratch = m.new_cache();
        let scratch = m.prefill(&full, &mut c_scratch);

        let mut c_prefix = m.new_cache();
        m.prefill_cache_only(&prefix, &mut c_prefix);
        let snapshot = c_prefix.compact_clone();
        let mut forked = snapshot.fork_with_capacity(m.config().max_seq_len);
        let via_fork = m.prefill(&suffix, &mut forked);

        assert_eq!(scratch, via_fork);
    }

    #[test]
    fn greedy_generation_is_deterministic_and_bounded() {
        let m = tiny_model();
        let a = m.generate_greedy(&[1, 2], 8, None);
        let b = m.generate_greedy(&[1, 2], 8, None);
        assert_eq!(a, b);
        assert!(a.len() <= 8);
    }

    #[test]
    fn stop_token_halts_generation() {
        let m = tiny_model();
        let unbounded = m.generate_greedy(&[1, 2], 8, None);
        if let Some(&first) = unbounded.first() {
            let stopped = m.generate_greedy(&[1, 2], 8, Some(first));
            assert!(stopped.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.forward_token(999, &mut cache);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_prompt_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[], &mut cache);
    }

    #[test]
    fn prefill_stream_is_bit_identical_to_prefill() {
        // Partial block, exact block, and multi-block prompts.
        let m = tiny_model();
        for len in [1usize, 5, 63, 64, 65, 130] {
            let prompt: Vec<TokenId> = (0..len).map(|i| ((i * 11 + 2) % 48) as TokenId).collect();
            let mut c_direct = m.new_cache();
            let want = m.prefill(&prompt, &mut c_direct);

            let mut stream = PrefillStream::new(&m, prompt.clone(), m.new_cache());
            let mut steps = 0;
            while !stream.is_done() {
                assert!(stream.step() > 0);
                steps += 1;
            }
            assert_eq!(steps, len.div_ceil(PREFILL_BLOCK), "len {len}");
            let (got, cache) = stream.finish();
            assert_eq!(want, got, "len {len}");
            assert_eq!(cache.len(), len, "len {len}");
        }
    }

    #[test]
    fn interleaved_streams_match_isolated_prefills() {
        // The continuous-batching invariance: stepping two streams
        // round-robin yields the same bits as prefilling each alone.
        let m = tiny_model();
        let a: Vec<TokenId> = (0..130).map(|i| ((i * 7 + 3) % 48) as TokenId).collect();
        let b: Vec<TokenId> = (0..70).map(|i| ((i * 13 + 5) % 48) as TokenId).collect();

        let mut ca = m.new_cache();
        let mut cb = m.new_cache();
        let want_a = m.prefill(&a, &mut ca);
        let want_b = m.prefill(&b, &mut cb);

        let mut sa = PrefillStream::new(&m, a, m.new_cache());
        let mut sb = PrefillStream::new(&m, b, m.new_cache());
        loop {
            let ran = sa.step() + sb.step();
            if ran == 0 {
                break;
            }
        }
        let (got_a, _) = sa.finish();
        let (got_b, _) = sb.finish();
        assert_eq!(want_a, got_a);
        assert_eq!(want_b, got_b);
    }
}
