//! The decoder-only transformer language model.

use tensor::nn::rmsnorm;
use tensor::ops::{axpy, vecmat};

use crate::attention::attention_step;
use crate::bpe::TokenId;
use crate::config::ModelConfig;
use crate::ffn::ffn_step;
use crate::kv::KvCache;
use crate::rope::RopeTable;
use crate::weights::ModelWeights;

/// A runnable transformer LM: config + weights + RoPE tables.
#[derive(Debug, Clone)]
pub struct TransformerLM {
    cfg: ModelConfig,
    weights: ModelWeights,
    rope: RopeTable,
}

impl TransformerLM {
    /// Assemble a model. The weights must match `cfg`'s shapes (they do by
    /// construction when built with [`ModelWeights::synthetic`]).
    pub fn new(cfg: ModelConfig, weights: ModelWeights) -> Self {
        cfg.validate().expect("invalid model config");
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        Self { cfg, weights, rope }
    }

    /// Convenience: synthetic weights from a seed.
    pub fn synthetic(cfg: ModelConfig, seed: u64) -> Self {
        let weights = ModelWeights::synthetic(&cfg, seed);
        Self::new(cfg, weights)
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Allocate a fresh KV cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(
            self.cfg.n_layers,
            self.cfg.max_seq_len,
            self.cfg.n_kv_heads * self.cfg.head_dim(),
        )
    }

    /// Run one token through the model, returning the next-token logits.
    ///
    /// The token is processed at position `cache.len()`; the cache is
    /// advanced before returning.
    ///
    /// # Panics
    /// Panics if the cache is full or the token id is out of vocabulary.
    pub fn forward_token(&self, token: TokenId, cache: &mut KvCache) -> Vec<f32> {
        let h = self.cfg.hidden;
        assert!(
            (token as usize) < self.cfg.vocab_size,
            "token {token} out of vocabulary"
        );
        let mut x: Vec<f32> = self.weights.embed.row(token as usize).to_vec();
        let mut normed = vec![0.0f32; h];

        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            // Pre-norm attention with residual.
            rmsnorm(&x, &layer.attn_norm, self.cfg.norm_eps, &mut normed);
            let attn_out = attention_step(&self.cfg, layer, &self.rope, cache, layer_idx, &normed);
            axpy(1.0, &attn_out, &mut x);

            // Pre-norm FFN with residual.
            rmsnorm(&x, &layer.ffn_norm, self.cfg.norm_eps, &mut normed);
            let ffn_out = ffn_step(layer, &normed);
            axpy(1.0, &ffn_out, &mut x);
        }
        cache.advance();

        rmsnorm(
            &x.clone(),
            &self.weights.final_norm,
            self.cfg.norm_eps,
            &mut x,
        );
        // The LM head is the widest matrix in the model; split its columns
        // across threads for large vocabularies (bit-identical to serial).
        if self.cfg.vocab_size >= 4096 {
            let threads = std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(8);
            tensor::ops::vecmat_parallel(&x, &self.weights.lm_head, threads)
        } else {
            vecmat(&x, &self.weights.lm_head)
        }
    }

    /// Prefill a prompt, returning the logits after the final prompt token.
    ///
    /// # Panics
    /// Panics on an empty prompt or when the prompt exceeds the cache.
    pub fn prefill(&self, prompt: &[TokenId], cache: &mut KvCache) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            prompt.len() <= cache.remaining(),
            "prompt longer than cache capacity"
        );
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward_token(t, cache);
        }
        logits
    }

    /// Greedy-decode up to `max_new` tokens after a prompt, stopping at
    /// `stop_token` if given. Returns the generated ids.
    pub fn generate_greedy(
        &self,
        prompt: &[TokenId],
        max_new: usize,
        stop_token: Option<TokenId>,
    ) -> Vec<TokenId> {
        let mut cache = self.new_cache();
        let mut logits = self.prefill(prompt, &mut cache);
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = crate::sample::argmax(&logits) as TokenId;
            if Some(next) == stop_token {
                break;
            }
            out.push(next);
            if cache.remaining() == 0 {
                break;
            }
            logits = self.forward_token(next, &mut cache);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TransformerLM {
        TransformerLM::synthetic(ModelConfig::tiny(48), 11)
    }

    #[test]
    fn logits_cover_vocab_and_are_finite() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        let logits = m.forward_token(5, &mut cache);
        assert_eq!(logits.len(), 48);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        assert_eq!(
            m.prefill(&[1, 2, 3], &mut c1),
            m.prefill(&[1, 2, 3], &mut c2)
        );
    }

    #[test]
    fn different_prompts_give_different_logits() {
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[1, 2, 3], &mut c1);
        let b = m.prefill(&[1, 2, 4], &mut c2);
        assert_ne!(a, b);
    }

    #[test]
    fn context_affects_final_logits() {
        // Same final token, different prefix → different logits (attention works).
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let mut c2 = m.new_cache();
        let a = m.prefill(&[7, 9], &mut c1);
        let b = m.prefill(&[8, 9], &mut c2);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn prefill_advances_cache() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[1, 2, 3, 4], &mut cache);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn incremental_equals_prefill() {
        // Running tokens one at a time through the same cache must equal prefill.
        let m = tiny_model();
        let mut c1 = m.new_cache();
        let full = m.prefill(&[3, 1, 4, 1, 5], &mut c1);

        let mut c2 = m.new_cache();
        let mut last = Vec::new();
        for &t in &[3, 1, 4, 1, 5] {
            last = m.forward_token(t, &mut c2);
        }
        for (a, b) in full.iter().zip(&last) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn greedy_generation_is_deterministic_and_bounded() {
        let m = tiny_model();
        let a = m.generate_greedy(&[1, 2], 8, None);
        let b = m.generate_greedy(&[1, 2], 8, None);
        assert_eq!(a, b);
        assert!(a.len() <= 8);
    }

    #[test]
    fn stop_token_halts_generation() {
        let m = tiny_model();
        let unbounded = m.generate_greedy(&[1, 2], 8, None);
        if let Some(&first) = unbounded.first() {
            let stopped = m.generate_greedy(&[1, 2], 8, Some(first));
            assert!(stopped.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.forward_token(999, &mut cache);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_prompt_panics() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.prefill(&[], &mut cache);
    }
}
