//! Paged KV pool: fixed-size refcounted blocks, copy-on-write sentence forks
//! and continuous batching.
//!
//! The contiguous [`crate::kv::KvCache`] allocates one dense `(max_seq,
//! kv_dim)` buffer per layer, so forking a shared `(question, context)` prefix
//! for a sentence probe copies every filled row — `O(prefix_len)` floats per
//! sentence. This module replaces that with a vLLM-style pool:
//!
//! - One [`PagedKvPool`] owns every page. A page holds `block_tokens`
//!   positions across *all* layers (position-major layout, see below) and is
//!   handed out behind an `Arc`, so the `Arc` strong count *is* the page's
//!   reference count.
//! - [`PagedKvCache`] is a table of page handles. A fork
//!   ([`PagedKvCache::fork_with_capacity`]) clones `O(len / block_tokens)`
//!   handles and copies **zero** floats — fork cost is flat in prefix length.
//! - Writes require a prior [`PagedKvCache::try_reserve`], which performs all
//!   allocation *and* copy-on-write atomically under one pool lock: either the
//!   whole reservation succeeds or the cache is left untouched (no torn
//!   forks). Exhaustion is the typed [`PoolExhausted`] error, never a panic.
//! - Free pages return to a free list on drop and are zeroed on reuse, so a
//!   refaulted prefix recomputes into deterministic memory.
//!
//! **Page layout.** A page is one `Vec<f32>` of
//! `block_tokens · n_layers · 2 · kv_dim` floats, position-major:
//! `[slot][layer][K|V][kv_dim]`. The per-`(layer, K|V)` plane of a page is a
//! genuinely strided matrix (`stride = n_layers · 2 · kv_dim`), accessed
//! through [`tensor::StridedRows`] — filled positions occupy a contiguous
//! buffer prefix, which is what lets COW copy a partial page with one
//! `copy_from_slice`.
//!
//! **Why paged == contiguous, bitwise.** The attention/model layers are
//! generic over [`KvStore`]; both backends execute identical arithmetic in
//! identical order and differ only in where a `(layer, pos)` row lives. The
//! parity wall in `tests/batch_parity.rs` asserts the consequence: identical
//! logits across prefill → fork → extend → evict-then-refault.
//!
//! **Continuous batching.** [`ContinuousBatcher`] interleaves
//! [`PrefillStream`]s at [`PREFILL_BLOCK`] boundaries on virtual-clock time:
//! a newly arrived sentence probe joins the in-flight round-robin at the next
//! block boundary instead of waiting for a batch barrier. Per-sequence caches
//! share no state and chunk boundaries depend only on each stream's own
//! token list, so *any* interleaving is bitwise-neutral per sequence — the
//! schedule affects wall-clock only, never bits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hallu_obs::{Counter, Gauge, Obs};
use tensor::{StridedRows, StridedRowsMut};

use crate::bpe::TokenId;
use crate::clock::{Clock, VirtualClock};
use crate::config::ModelConfig;
use crate::kv::KvStore;
use crate::model::{InferenceModel, PrefillStream, TransformerLM, PREFILL_BLOCK};
use crate::prefix::{PrefixCacheConfig, PrefixStats, PREFIX_ENTRY_OVERHEAD_BYTES};

/// Typed pool-exhaustion error: the reservation would push the pool past its
/// page budget. The failed cache is left exactly as it was (no torn fork);
/// callers degrade to the uncached path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Pages the reservation needed.
    pub requested: usize,
    /// Distinct live pages at the time of the request.
    pub live: usize,
    /// The pool's page budget.
    pub max_pages: usize,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "paged KV pool exhausted: {} page(s) requested, {} live of {} max",
            self.requested, self.live, self.max_pages
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// Shape and budget of a [`PagedKvPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedPoolConfig {
    /// Transformer layers a page spans.
    pub n_layers: usize,
    /// K/V vector width (`n_kv_heads * head_dim`).
    pub kv_dim: usize,
    /// Positions per page. [`PREFILL_BLOCK`] aligns pages with GEMM prefill
    /// chunks so a continuous-batching join lands on a page boundary.
    pub block_tokens: usize,
    /// Hard budget on distinct live pages; reservations beyond it fail with
    /// [`PoolExhausted`].
    pub max_pages: usize,
}

impl PagedPoolConfig {
    /// Pool shaped for `model`, with [`PREFILL_BLOCK`]-sized pages.
    pub fn for_model(cfg: &ModelConfig, max_pages: usize) -> Self {
        Self {
            n_layers: cfg.n_layers,
            kv_dim: cfg.n_kv_heads * cfg.head_dim(),
            block_tokens: PREFILL_BLOCK,
            max_pages,
        }
    }

    /// Floats per page: `block_tokens · n_layers · 2 · kv_dim`.
    pub fn page_floats(&self) -> usize {
        self.block_tokens * self.n_layers * 2 * self.kv_dim
    }

    /// Bytes per page.
    pub fn page_bytes(&self) -> usize {
        self.page_floats() * std::mem::size_of::<f32>()
    }

    /// Position-major stride between consecutive slots of a page.
    fn slot_stride(&self) -> usize {
        self.n_layers * 2 * self.kv_dim
    }

    /// Float offset of the `(layer, K|V)` plane within a slot.
    fn plane_base(&self, layer: usize, kv: usize) -> usize {
        (layer * 2 + kv) * self.kv_dim
    }
}

/// Everything the pool mutates, behind one mutex. Serializing `release` —
/// including the `Arc::try_unwrap` — under this lock is what makes concurrent
/// drops of a shared page race-free: exactly one caller observes the count
/// hit one and returns the buffer to the free list.
#[derive(Debug, Default)]
struct PoolState {
    /// Reusable page buffers (zeroed on reuse, not on return).
    free: Vec<Vec<f32>>,
    /// Distinct pages currently held by at least one cache.
    live: usize,
    /// Outstanding page handles (`Arc` clones) across all live caches.
    handles: usize,
    /// Pages ever created (== `live + free.len()` at all times).
    created: usize,
    peak_live: usize,
    cow_copies: u64,
    allocs: u64,
    releases: u64,
    rejected: u64,
}

/// Point-in-time pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Distinct pages currently held by at least one cache.
    pub pages_live: usize,
    /// Pages sitting on the free list.
    pub pages_free: usize,
    /// Outstanding page handles; `handles - pages_live` handles are shares.
    pub handles: usize,
    /// Pages ever created; conservation: `pages_live + pages_free == created`.
    pub created: usize,
    /// High-water mark of `pages_live`.
    pub peak_live: usize,
    /// Copy-on-write page copies performed.
    pub cow_copies: u64,
    /// Pages handed out (fresh or reused) over the pool's lifetime.
    pub allocs: u64,
    /// Handles returned over the pool's lifetime.
    pub releases: u64,
    /// Reservations refused with [`PoolExhausted`].
    pub rejected: u64,
}

impl PoolStats {
    /// Handles beyond one per live page — the number of active shares.
    pub fn shared(&self) -> usize {
        self.handles.saturating_sub(self.pages_live)
    }

    /// Bytes held by live pages.
    pub fn live_bytes(&self, config: &PagedPoolConfig) -> usize {
        self.pages_live * config.page_bytes()
    }
}

/// Registry handles for the pool; disconnected (free) unless
/// [`PagedKvPool::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct PoolTelemetry {
    pages: Gauge,
    pages_free: Gauge,
    shared: Gauge,
    bytes: Gauge,
    cow: Counter,
    rejected: Counter,
}

impl PoolTelemetry {
    fn register(obs: &Obs) -> Self {
        Self {
            pages: obs.gauge("hallu_paged_pages", "Live paged-KV pool pages", &[]),
            pages_free: obs.gauge(
                "hallu_paged_pages_free",
                "Paged-KV pool pages on the free list",
                &[],
            ),
            shared: obs.gauge(
                "hallu_paged_shared",
                "Paged-KV page handles beyond one per live page (active shares)",
                &[],
            ),
            bytes: obs.gauge(
                "hallu_paged_bytes",
                "Bytes held by live paged-KV pages",
                &[],
            ),
            cow: obs.counter(
                "hallu_paged_cow_total",
                "Copy-on-write paged-KV page copies",
                &[],
            ),
            rejected: obs.counter(
                "hallu_paged_rejected_total",
                "Paged-KV reservations refused with PoolExhausted",
                &[],
            ),
        }
    }
}

/// The single fixed-size-block KV pool. Every [`PagedKvCache`] built from a
/// pool borrows pages from it and returns them on drop.
pub struct PagedKvPool {
    config: PagedPoolConfig,
    state: Mutex<PoolState>,
    obs: PoolTelemetry,
}

impl std::fmt::Debug for PagedKvPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedKvPool")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PagedKvPool {
    /// Build a pool. Dimensions and the page budget are clamped to ≥ 1.
    pub fn new(config: PagedPoolConfig) -> Self {
        Self {
            config: PagedPoolConfig {
                n_layers: config.n_layers.max(1),
                kv_dim: config.kv_dim.max(1),
                block_tokens: config.block_tokens.max(1),
                max_pages: config.max_pages.max(1),
            },
            state: Mutex::new(PoolState::default()),
            obs: PoolTelemetry::default(),
        }
    }

    /// Mirror pool occupancy and events into `obs` as `hallu_paged_*`.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = PoolTelemetry::register(obs);
        self
    }

    /// The pool's shape (after the ≥ 1 clamps).
    pub fn config(&self) -> &PagedPoolConfig {
        &self.config
    }

    /// An empty cache bounded at `max_seq` positions. Allocates nothing; the
    /// first [`PagedKvCache::try_reserve`] fetches pages.
    pub fn new_cache(self: &Arc<Self>, max_seq: usize) -> PagedKvCache {
        PagedKvCache {
            pool: Arc::clone(self),
            blocks: Vec::new(),
            len: 0,
            reserved: 0,
            max_seq: max_seq.max(1),
        }
    }

    /// Pages an [`allocate_n`](Self::allocate_n) call could still hand out
    /// right now: the budget headroom `max_pages − pages_live`. Free-list
    /// buffers are already counted — they are recycled storage, not extra
    /// capacity. This is the admission-control number: a prompt needing more
    /// pages than this is guaranteed to hit [`PoolExhausted`].
    pub fn pages_available(&self) -> usize {
        let s = self.lock();
        self.config.max_pages.saturating_sub(s.live)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> PoolStats {
        let s = self.lock();
        PoolStats {
            pages_live: s.live,
            pages_free: s.free.len(),
            handles: s.handles,
            created: s.created,
            peak_live: s.peak_live,
            cow_copies: s.cow_copies,
            allocs: s.allocs,
            releases: s.releases,
            rejected: s.rejected,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn publish(&self, s: &PoolState) {
        self.obs.pages.set(s.live as f64);
        self.obs.pages_free.set(s.free.len() as f64);
        self.obs.shared.set(s.handles.saturating_sub(s.live) as f64);
        self.obs
            .bytes
            .set((s.live * self.config.page_bytes()) as f64);
    }

    /// Hand out `n` pages, reusing (and zeroing) free-list buffers first. All
    /// `n` succeed or none do — the atomicity behind torn-fork freedom.
    fn allocate_n(&self, n: usize) -> Result<Vec<Arc<Vec<f32>>>, PoolExhausted> {
        let mut s = self.lock();
        if s.live + n > self.config.max_pages {
            s.rejected += 1;
            self.obs.rejected.inc();
            return Err(PoolExhausted {
                requested: n,
                live: s.live,
                max_pages: self.config.max_pages,
            });
        }
        let floats = self.config.page_floats();
        let pages: Vec<Arc<Vec<f32>>> = (0..n)
            .map(|_| {
                let buf = match s.free.pop() {
                    Some(mut buf) => {
                        buf.fill(0.0);
                        buf
                    }
                    None => {
                        s.created += 1;
                        vec![0.0f32; floats]
                    }
                };
                Arc::new(buf)
            })
            .collect();
        s.live += n;
        s.handles += n;
        s.allocs += n as u64;
        s.peak_live = s.peak_live.max(s.live);
        self.publish(&s);
        Ok(pages)
    }

    /// Return one handle. The last handle of a page puts its buffer back on
    /// the free list; runs entirely under the pool lock so concurrent drops
    /// of a shared page cannot both miss the unwrap and leak the buffer.
    fn release(&self, page: Arc<Vec<f32>>) {
        let mut s = self.lock();
        s.handles -= 1;
        s.releases += 1;
        match Arc::try_unwrap(page) {
            Ok(buf) => {
                s.live -= 1;
                s.free.push(buf);
            }
            Err(still_shared) => drop(still_shared),
        }
        self.publish(&s);
    }

    /// Account `k` new handles created by cloning existing page `Arc`s.
    fn note_clones(&self, k: usize) {
        if k == 0 {
            return;
        }
        let mut s = self.lock();
        s.handles += k;
        self.publish(&s);
    }

    fn note_cow(&self, k: u64) {
        if k == 0 {
            return;
        }
        let mut s = self.lock();
        s.cow_copies += k;
        drop(s);
        self.obs.cow.add(k);
    }
}

/// A sequence's view onto pool pages: a handle table plus a write reservation.
///
/// Not `Clone` — copies are explicit ([`PagedKvCache::fork_with_capacity`] to
/// continue a sequence, [`PagedKvCache::share_clone`] to snapshot it) because
/// both mutate pool accounting. Writes target positions `< reserved`, so the
/// mutation window is `len..reserved` and every page in it is exclusively
/// owned (COW happens inside [`PagedKvCache::try_reserve`]); `Arc::get_mut`
/// in the write path is the panic backstop for a missed reservation, never an
/// expected branch.
pub struct PagedKvCache {
    pool: Arc<PagedKvPool>,
    blocks: Vec<Arc<Vec<f32>>>,
    /// Committed positions.
    len: usize,
    /// Positions writable without further reservation (`len <= reserved`).
    reserved: usize,
    /// Sequence-length bound, independent of the pool's page budget.
    max_seq: usize,
}

impl std::fmt::Debug for PagedKvCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedKvCache")
            .field("len", &self.len)
            .field("reserved", &self.reserved)
            .field("max_seq", &self.max_seq)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl PagedKvCache {
    /// The pool this cache borrows from.
    pub fn pool(&self) -> &Arc<PagedKvPool> {
        &self.pool
    }

    /// Pages currently held (shared or exclusive).
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of pages this cache holds handles to. A fork reports the same
    /// pages as its parent (they are shared, not copied) — the pool's
    /// [`PoolStats::live_bytes`] is the deduplicated truth.
    pub fn allocated_bytes(&self) -> usize {
        self.blocks.len() * self.pool.config.page_bytes()
    }

    /// Bytes of *filled* K/V rows, mirroring the contiguous
    /// [`crate::kv::KvCache::kv_bytes`] byte model so the two prefix caches
    /// account identically.
    pub fn kv_bytes(&self) -> usize {
        2 * self.pool.config.n_layers
            * self.len
            * self.pool.config.kv_dim
            * std::mem::size_of::<f32>()
    }

    /// Make positions `len..len + extra` writable. One pool-lock transaction
    /// allocates every page the window needs — copy-on-write replacements for
    /// shared pages the window touches, plus fresh tail pages — so the cache
    /// is either fully reserved or (on [`PoolExhausted`]) untouched.
    ///
    /// # Panics
    /// Panics when the window would exceed `max_seq`.
    pub fn try_reserve(&mut self, extra: usize) -> Result<(), PoolExhausted> {
        assert!(
            self.len + extra <= self.max_seq,
            "reservation {} past max_seq {}",
            self.len + extra,
            self.max_seq
        );
        let bt = self.pool.config.block_tokens;
        let target_blocks = (self.len + extra).div_ceil(bt);
        // Shared pages at or after the first written block must be replaced:
        // the write window starts at position `len`, i.e. block `len / bt`.
        let first_written = self.len / bt;
        let cow_idx: Vec<usize> = (first_written..self.blocks.len())
            .filter(|&i| Arc::strong_count(&self.blocks[i]) > 1)
            .collect();
        let fresh = target_blocks.saturating_sub(self.blocks.len());
        let mut pages = self.pool.allocate_n(cow_idx.len() + fresh)?;
        // COW: copy the shared page's floats into the fresh page, swap the
        // handle, release the share. Filled slots are a buffer prefix, but a
        // whole-page copy is branch-free and pages are small.
        for &i in &cow_idx {
            let mut page = pages.remove(0);
            Arc::get_mut(&mut page)
                .expect("freshly allocated page is exclusive")
                .copy_from_slice(&self.blocks[i]);
            let old = std::mem::replace(&mut self.blocks[i], page);
            self.pool.release(old);
        }
        self.blocks.extend(pages);
        self.pool.note_cow(cow_idx.len() as u64);
        self.reserved = (self.blocks.len() * bt)
            .min(self.max_seq)
            .max(self.len + extra);
        Ok(())
    }

    /// Fork for continuation: clone the page handles covering the committed
    /// prefix — `O(len / block_tokens)` work, zero float copies — with a new
    /// sequence bound of `capacity`. The fork starts with `reserved == len`;
    /// extend it via [`PagedKvCache::try_reserve`], which copy-on-writes any
    /// page still shared with the parent.
    ///
    /// # Panics
    /// Panics when `capacity < len`.
    pub fn fork_with_capacity(&self, capacity: usize) -> PagedKvCache {
        assert!(
            capacity >= self.len,
            "fork capacity {capacity} below filled length {}",
            self.len
        );
        let bt = self.pool.config.block_tokens;
        let keep = self.len.div_ceil(bt);
        let blocks: Vec<Arc<Vec<f32>>> = self.blocks[..keep].iter().map(Arc::clone).collect();
        self.pool.note_clones(blocks.len());
        PagedKvCache {
            pool: Arc::clone(&self.pool),
            blocks,
            len: self.len,
            reserved: self.len,
            max_seq: capacity.max(1),
        }
    }

    /// Snapshot for storage (the paged analogue of
    /// [`crate::kv::KvCache::compact_clone`]): shares the committed pages,
    /// keeps the current `max_seq`.
    pub fn share_clone(&self) -> PagedKvCache {
        self.fork_with_capacity(self.max_seq.max(self.len))
    }

    fn row(&self, layer: usize, pos: usize, kv: usize) -> &[f32] {
        debug_assert!(pos < self.reserved, "read at {pos} beyond reservation");
        let cfg = &self.pool.config;
        let block = &self.blocks[pos / cfg.block_tokens];
        let plane = StridedRows::new(
            &block[cfg.plane_base(layer, kv)..],
            cfg.block_tokens,
            cfg.kv_dim,
            cfg.slot_stride(),
        );
        plane.row(pos % cfg.block_tokens)
    }

    fn row_write(&mut self, layer: usize, pos: usize, kv: usize, data: &[f32]) {
        assert!(
            pos < self.reserved,
            "write at {pos} beyond reservation {} — call try_reserve first",
            self.reserved
        );
        assert_eq!(data.len(), self.pool.config.kv_dim, "kv dim mismatch");
        let cfg = self.pool.config;
        let block = Arc::get_mut(&mut self.blocks[pos / cfg.block_tokens])
            .expect("write to shared paged block — try_reserve must copy-on-write first");
        let base = cfg.plane_base(layer, kv);
        let mut plane = StridedRowsMut::new(
            &mut block[base..],
            cfg.block_tokens,
            cfg.kv_dim,
            cfg.slot_stride(),
        );
        plane.row_mut(pos % cfg.block_tokens).copy_from_slice(data);
    }
}

impl KvStore for PagedKvCache {
    fn len(&self) -> usize {
        self.len
    }

    fn remaining(&self) -> usize {
        self.reserved - self.len
    }

    fn max_seq(&self) -> usize {
        self.max_seq
    }

    fn kv_dim(&self) -> usize {
        self.pool.config.kv_dim
    }

    fn n_layers(&self) -> usize {
        self.pool.config.n_layers
    }

    fn write(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        self.row_write(layer, self.len, 0, k);
        self.row_write(layer, self.len, 1, v);
    }

    fn advance(&mut self) {
        assert!(self.len < self.reserved, "advance beyond reservation");
        self.len += 1;
    }

    fn write_at(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        self.row_write(layer, pos, 0, k);
        self.row_write(layer, pos, 1, v);
    }

    fn advance_by(&mut self, n: usize) {
        assert!(self.len + n <= self.reserved, "advance beyond reservation");
        self.len += n;
    }

    fn key(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, 0)
    }

    fn value(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, 1)
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        for page in self.blocks.drain(..) {
            self.pool.release(page);
        }
    }
}

/// Paged analogue of [`crate::prefix::PrefixCache`]: a bounded LRU of
/// post-prefix snapshots whose entries are page-handle tables instead of
/// dense copies. A hit forks in `O(blocks)`; an insert stores a
/// [`PagedKvCache::share_clone`] (zero float copies); eviction drops the
/// snapshot, returning its pages to the pool the moment the last sharer goes.
///
/// Reuses [`PrefixCacheConfig`], [`PrefixStats`] and the
/// [`PREFIX_ENTRY_OVERHEAD_BYTES`] byte model so paged and contiguous prefix
/// caches account identically (KV bytes count *filled rows*, not pages —
/// shared pages would otherwise be double-counted).
pub struct PagedPrefixCache {
    pool: Arc<PagedKvPool>,
    inner: Mutex<PagedPrefixInner>,
    config: PrefixCacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

struct PagedEntry {
    model: String,
    tokens: Vec<TokenId>,
    kv: PagedKvCache,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct PagedPrefixInner {
    buckets: HashMap<u64, Vec<PagedEntry>>,
    entries: usize,
    bytes: usize,
    tick: u64,
}

impl PagedPrefixInner {
    fn evict_lru(&mut self) -> bool {
        let Some((&hash, pos)) = self
            .buckets
            .iter()
            .flat_map(|(hash, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(pos, entry)| ((hash, pos), entry.last_used))
            })
            .min_by_key(|&(_, last_used)| last_used)
            .map(|((hash, pos), _)| (hash, pos))
        else {
            return false;
        };
        let Some(bucket) = self.buckets.get_mut(&hash) else {
            return false;
        };
        let entry = bucket.remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.entries -= 1;
        self.bytes -= entry.bytes;
        true
    }
}

impl std::fmt::Debug for PagedPrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedPrefixCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PagedPrefixCache {
    /// Build a prefix cache over `pool` with the given bounds.
    pub fn new(pool: Arc<PagedKvPool>, config: PrefixCacheConfig) -> Self {
        Self {
            pool,
            inner: Mutex::new(PagedPrefixInner::default()),
            config: PrefixCacheConfig {
                max_entries: config.max_entries.max(1),
                max_bytes: config.max_bytes.max(1),
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The pool backing this cache's snapshots.
    pub fn pool(&self) -> &Arc<PagedKvPool> {
        &self.pool
    }

    /// The configuration the cache was built with (after the ≥1 clamps).
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PagedPrefixInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fork the snapshot for `(model, tokens)` with a `capacity` sequence
    /// bound, refreshing recency. `None` on miss. The fork is `O(blocks)` —
    /// this is the headline win over the contiguous cache, whose hit copies
    /// every filled row.
    pub fn fork(&self, model: &str, tokens: &[TokenId], capacity: usize) -> Option<PagedKvCache> {
        let hash = crate::prefix::prefix_hash(model, tokens);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let forked = inner
            .buckets
            .get_mut(&hash)
            .and_then(|bucket| {
                bucket
                    .iter_mut()
                    .find(|e| e.model == model && e.tokens == tokens)
            })
            .map(|entry| {
                entry.last_used = tick;
                entry.kv.fork_with_capacity(capacity)
            });
        drop(inner);
        match forked {
            Some(kv) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(kv)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Admit a post-prefix snapshot (stored as a zero-copy share). Returns
    /// `false` when the prefix is empty or `kv.len()` disagrees with the
    /// token count, or when `kv` borrows from a different pool.
    pub fn insert(&self, model: &str, tokens: &[TokenId], kv: &PagedKvCache) -> bool {
        if tokens.is_empty() || kv.len != tokens.len() || !Arc::ptr_eq(&kv.pool, &self.pool) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let snapshot = kv.share_clone();
        let bytes = snapshot.kv_bytes()
            + std::mem::size_of_val(tokens)
            + model.len()
            + PREFIX_ENTRY_OVERHEAD_BYTES;
        let hash = crate::prefix::prefix_hash(model, tokens);
        let mut evicted = 0u64;
        let updated;
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let existing = inner.buckets.get_mut(&hash).and_then(|b| {
                b.iter_mut()
                    .find(|e| e.model == model && e.tokens == tokens)
            });
            if let Some(entry) = existing {
                let old = entry.bytes;
                entry.kv = snapshot;
                entry.bytes = bytes;
                entry.last_used = tick;
                updated = true;
                inner.bytes = inner.bytes - old + bytes;
            } else {
                updated = false;
                inner.bytes += bytes;
                inner.entries += 1;
                inner.buckets.entry(hash).or_default().push(PagedEntry {
                    model: model.to_string(),
                    tokens: tokens.to_vec(),
                    kv: snapshot,
                    bytes,
                    last_used: tick,
                });
            }
            while inner.entries > self.config.max_entries || inner.bytes > self.config.max_bytes {
                if !inner.evict_lru() {
                    break;
                }
                evicted += 1;
            }
        }
        if updated {
            self.updates.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        true
    }

    /// Current snapshot count.
    pub fn len(&self) -> usize {
        self.lock().entries
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current accounted bytes.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Counters plus current occupancy (same shape as the contiguous cache).
    pub fn stats(&self) -> PrefixStats {
        let (entries, bytes) = {
            let inner = self.lock();
            (inner.entries as u64, inner.bytes as u64)
        };
        PrefixStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// One admission decision of the continuous batcher: sequence `seq` joined
/// the in-flight round-robin at virtual time `at_ms`, after `boundary`
/// completed prefill blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEvent {
    /// Submission index of the joining stream.
    pub seq: usize,
    /// Virtual time of the block boundary it joined at.
    pub at_ms: f64,
    /// Prefill blocks the engine had completed when it joined.
    pub boundary: u64,
}

/// Knobs for [`ContinuousBatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousBatcherConfig {
    /// In-flight streams the round-robin serves at once.
    pub max_active: usize,
    /// Virtual milliseconds one [`PREFILL_BLOCK`] chunk costs.
    pub block_ms: f64,
}

impl Default for ContinuousBatcherConfig {
    fn default() -> Self {
        Self {
            max_active: 4,
            block_ms: 1.0,
        }
    }
}

/// Everything a [`ContinuousBatcher::run`] produced.
#[derive(Debug)]
pub struct ContinuousOutcome<C: KvStore> {
    /// `(final logits, cache)` per submission, in submission order.
    pub results: Vec<(Vec<f32>, C)>,
    /// Every admission, in the order it happened.
    pub joins: Vec<JoinEvent>,
    /// Prefill blocks executed.
    pub blocks_run: u64,
    /// Virtual time when the last stream finished.
    pub end_ms: f64,
}

/// Deterministic continuous-batching scheduler over [`PrefillStream`]s.
///
/// New sentence probes join the in-flight round-robin at [`PREFILL_BLOCK`]
/// boundaries as soon as their virtual arrival time has passed and a slot is
/// free — instead of waiting for a batch barrier. Admission order is arrival
/// order (ties broken by submission order), block time is fixed by config,
/// and the streams share no state, so a run is a pure function of
/// `(submissions, config, start time)` — rerunning it reproduces every join
/// and every output bit. Interleaving never changes bits per sequence
/// because each stream's chunk boundaries depend only on its own token list
/// (asserted by the interleaving tests in [`crate::model`]).
pub struct ContinuousBatcher<'m, C: KvStore, M: InferenceModel = TransformerLM> {
    config: ContinuousBatcherConfig,
    submissions: Vec<(f64, PrefillStream<'m, C, M>)>,
    obs_joins: Counter,
}

impl<'m, C: KvStore, M: InferenceModel> ContinuousBatcher<'m, C, M> {
    /// Build a batcher; `max_active` is clamped to ≥ 1 and non-finite or
    /// negative `block_ms` to 0.
    pub fn new(config: ContinuousBatcherConfig) -> Self {
        Self {
            config: ContinuousBatcherConfig {
                max_active: config.max_active.max(1),
                block_ms: if config.block_ms.is_finite() && config.block_ms >= 0.0 {
                    config.block_ms
                } else {
                    0.0
                },
            },
            submissions: Vec::new(),
            obs_joins: Counter::default(),
        }
    }

    /// Mirror join events into `obs` as `hallu_paged_join_total`.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs_joins = obs.counter(
            "hallu_paged_join_total",
            "Continuous-batching joins at prefill block boundaries",
            &[],
        );
        self
    }

    /// Queue a stream arriving at virtual time `arrive_ms`; returns its
    /// submission index (the key into [`ContinuousOutcome::results`]).
    pub fn submit(&mut self, arrive_ms: f64, stream: PrefillStream<'m, C, M>) -> usize {
        self.submissions.push((arrive_ms, stream));
        self.submissions.len() - 1
    }

    /// Number of queued streams.
    pub fn len(&self) -> usize {
        self.submissions.len()
    }

    /// Whether no streams are queued.
    pub fn is_empty(&self) -> bool {
        self.submissions.is_empty()
    }

    /// Run every stream to completion starting at virtual time `start_ms`.
    pub fn run(self, start_ms: f64) -> ContinuousOutcome<C> {
        let ContinuousBatcher {
            config,
            submissions,
            obs_joins,
        } = self;
        let n = submissions.len();
        // Admission order: arrival time, ties broken by submission index —
        // a total order, so the schedule is reproducible.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            submissions[a]
                .0
                .total_cmp(&submissions[b].0)
                .then(a.cmp(&b))
        });
        let mut streams: Vec<Option<(f64, PrefillStream<'m, C, M>)>> =
            submissions.into_iter().map(Some).collect();

        let mut t = start_ms;
        let mut boundary = 0u64;
        let mut joins = Vec::new();
        let mut active: std::collections::VecDeque<(usize, PrefillStream<'m, C, M>)> =
            std::collections::VecDeque::new();
        let mut results: Vec<Option<(Vec<f32>, C)>> = (0..n).map(|_| None).collect();
        let mut next = 0usize;
        while next < n || !active.is_empty() {
            // Admit at the block boundary: arrived, in order, up to capacity.
            while next < n && active.len() < config.max_active {
                let seq = order[next];
                let arrive = streams[seq].as_ref().expect("not yet admitted").0;
                if arrive > t {
                    break;
                }
                let (_, stream) = streams[seq].take().expect("admitted once");
                joins.push(JoinEvent {
                    seq,
                    at_ms: t,
                    boundary,
                });
                obs_joins.inc();
                active.push_back((seq, stream));
                next += 1;
            }
            if active.is_empty() {
                // Idle: jump to the next arrival.
                let arrive = streams[order[next]].as_ref().expect("pending").0;
                t = t.max(arrive);
                continue;
            }
            // Round-robin: run one block of the front stream.
            let (seq, mut stream) = active.pop_front().expect("non-empty");
            stream.step();
            boundary += 1;
            t += config.block_ms;
            if stream.is_done() {
                results[seq] = Some(stream.finish());
            } else {
                active.push_back((seq, stream));
            }
        }
        ContinuousOutcome {
            results: results.into_iter().map(|r| r.expect("all ran")).collect(),
            joins,
            blocks_run: boundary,
            end_ms: t,
        }
    }

    /// [`ContinuousBatcher::run`] anchored to a [`VirtualClock`]: starts at
    /// `clock.now_ms()` and advances the clock to the finish time, so serving
    /// runs stay pure functions of `(seed, config)`.
    pub fn run_with_clock(self, clock: &VirtualClock) -> ContinuousOutcome<C> {
        let out = self.run(clock.now_ms());
        clock.advance_to_ms(out.end_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvCache;
    use crate::model::TransformerLM;

    fn tiny_pool(max_pages: usize) -> Arc<PagedKvPool> {
        Arc::new(PagedKvPool::new(PagedPoolConfig {
            n_layers: 2,
            kv_dim: 3,
            block_tokens: 4,
            max_pages,
        }))
    }

    /// Append `n` positions with recognizable per-(pos, layer) rows.
    fn push<C: KvStore>(c: &mut C, n: usize, salt: f32) {
        for _ in 0..n {
            let pos = c.len() as f32;
            for layer in 0..c.n_layers() {
                let b = salt + pos * 10.0 + layer as f32;
                let k: Vec<f32> = (0..c.kv_dim()).map(|j| b + j as f32 * 0.1).collect();
                let v: Vec<f32> = (0..c.kv_dim()).map(|j| -b - j as f32 * 0.1).collect();
                c.write(layer, &k, &v);
            }
            c.advance();
        }
    }

    fn assert_rows_match(a: &dyn Fn(usize, usize) -> Vec<f32>, b: &PagedKvCache, len: usize) {
        for layer in 0..b.pool().config().n_layers {
            for pos in 0..len {
                assert_eq!(a(layer, pos), b.key(layer, pos), "key L{layer} p{pos}");
            }
        }
    }

    #[test]
    fn reserve_write_read_roundtrip_and_conservation() {
        let pool = tiny_pool(8);
        let mut c = pool.new_cache(16);
        assert_eq!(c.n_blocks(), 0, "empty cache holds no pages");
        c.try_reserve(6).unwrap();
        assert_eq!(c.remaining(), 8, "reservation rounds up to page boundary");
        push(&mut c, 6, 0.0);
        assert_eq!(c.len(), 6);
        assert_eq!(c.key(1, 5)[0], 51.0);
        assert_eq!(c.value(0, 3), &[-30.0, -30.1, -30.2]);
        let stats = pool.stats();
        assert_eq!((stats.pages_live, stats.handles, stats.created), (2, 2, 2));
        assert_eq!(stats.pages_live + stats.pages_free, stats.created);
        drop(c);
        let stats = pool.stats();
        assert_eq!(
            (stats.pages_live, stats.handles, stats.pages_free),
            (0, 0, 2)
        );
    }

    #[test]
    fn freed_pages_are_reused_and_zeroed() {
        let pool = tiny_pool(4);
        let mut c = pool.new_cache(8);
        c.try_reserve(4).unwrap();
        push(&mut c, 4, 7.0);
        drop(c);
        let mut c2 = pool.new_cache(8);
        c2.try_reserve(1).unwrap();
        assert_eq!(
            pool.stats().created,
            1,
            "free-list page reused, not created"
        );
        assert_eq!(c2.key(0, 0), &[0.0, 0.0, 0.0], "reused page zeroed");
    }

    #[test]
    fn paged_matches_contiguous_rows_bitwise() {
        let pool = tiny_pool(8);
        let mut paged = pool.new_cache(16);
        paged.try_reserve(10).unwrap();
        let mut dense = KvCache::new(2, 16, 3);
        push(&mut paged, 10, 3.25);
        push(&mut dense, 10, 3.25);
        for layer in 0..2 {
            for pos in 0..10 {
                assert_eq!(dense.key(layer, pos), paged.key(layer, pos));
                assert_eq!(dense.value(layer, pos), paged.value(layer, pos));
            }
        }
    }

    #[test]
    fn fork_shares_pages_then_cow_on_divergence() {
        let pool = tiny_pool(8);
        let mut parent = pool.new_cache(16);
        parent.try_reserve(6).unwrap();
        push(&mut parent, 6, 0.0);
        let parent_rows: Vec<Vec<Vec<f32>>> = (0..2)
            .map(|l| (0..6).map(|p| parent.key(l, p).to_vec()).collect())
            .collect();

        let fork = parent.fork_with_capacity(10);
        // Fork allocated nothing: same pages, two handles each.
        assert_eq!(pool.stats().pages_live, 2);
        assert_eq!(pool.stats().handles, 4);
        assert_eq!(fork.len(), 6);
        assert_eq!(fork.remaining(), 0, "fork must reserve before writing");

        let mut fork = fork;
        fork.try_reserve(4).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.cow_copies, 1, "partial tail page copied on write");
        assert_eq!(stats.pages_live, 4, "COW copy + one fresh tail page");
        push(&mut fork, 4, 100.0);

        // Parent bits untouched; fork sees parent prefix + its own suffix.
        assert_rows_match(&|l, p| parent_rows[l][p].clone(), &parent, 6);
        assert_rows_match(&|l, p| parent_rows[l][p].clone(), &fork, 6);
        assert_eq!(fork.key(0, 6)[0], 160.0);
        // Block 0 still shared, block 1 diverged.
        assert_eq!(pool.stats().shared(), 1);
    }

    #[test]
    fn fork_cost_is_flat_in_prefix_length() {
        // The structural claim behind the bench: a fork clones page handles,
        // never floats, so its allocation count scales with len / block, and
        // no pool pages are added at fork time at all.
        let pool = tiny_pool(64);
        for len in [4usize, 16, 32] {
            let mut parent = pool.new_cache(64);
            parent.try_reserve(len).unwrap();
            push(&mut parent, len, 0.0);
            let before = pool.stats();
            let fork = parent.fork_with_capacity(len + 4);
            let after = pool.stats();
            assert_eq!(
                before.pages_live, after.pages_live,
                "fork allocates no pages"
            );
            assert_eq!(after.allocs, before.allocs, "len {len}");
            assert_eq!(fork.n_blocks(), len.div_ceil(4));
        }
    }

    #[test]
    fn exhaustion_is_typed_and_leaves_no_torn_state() {
        let pool = tiny_pool(2);
        let mut a = pool.new_cache(8);
        a.try_reserve(8).unwrap(); // takes both pages
        let mut b = pool.new_cache(8);
        let err = b.try_reserve(1).unwrap_err();
        assert_eq!(
            err,
            PoolExhausted {
                requested: 1,
                live: 2,
                max_pages: 2
            }
        );
        assert!(err.to_string().contains("exhausted"));
        // b untouched: no pages, no reservation.
        assert_eq!((b.n_blocks(), b.remaining(), b.len()), (0, 0, 0));
        assert_eq!(pool.stats().rejected, 1);
        // A partially-filled fork that fails to reserve is also untouched.
        push(&mut a, 6, 0.0);
        let mut f = a.fork_with_capacity(8);
        assert!(f.try_reserve(2).is_err(), "COW page unavailable");
        assert_eq!(f.len(), 6);
        assert_eq!(f.remaining(), 0);
        assert_rows_match(&|l, p| a.key(l, p).to_vec(), &f, 6);
        // Freeing capacity makes the same reservation succeed.
        drop(b);
        drop(a);
        f.try_reserve(2).unwrap();
        push(&mut f, 2, 50.0);
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn pool_telemetry_publishes_gauges_and_counters() {
        let obs = Obs::new();
        let pool = Arc::new(
            PagedKvPool::new(PagedPoolConfig {
                n_layers: 2,
                kv_dim: 3,
                block_tokens: 4,
                max_pages: 3,
            })
            .with_obs(&obs),
        );
        let mut parent = pool.new_cache(8);
        parent.try_reserve(6).unwrap();
        push(&mut parent, 6, 0.0);
        let mut fork = parent.fork_with_capacity(8);
        fork.try_reserve(1).unwrap(); // COWs the partial page
        let mut starved = pool.new_cache(8);
        assert!(starved.try_reserve(5).is_err());
        let snap = obs.metrics_snapshot();
        let stats = pool.stats();
        assert_eq!(
            snap.value("hallu_paged_pages", &[]),
            Some(stats.pages_live as f64)
        );
        assert_eq!(
            snap.value("hallu_paged_bytes", &[]),
            Some(stats.live_bytes(pool.config()) as f64)
        );
        assert_eq!(
            snap.value("hallu_paged_shared", &[]),
            Some(stats.shared() as f64)
        );
        assert_eq!(snap.value("hallu_paged_cow_total", &[]), Some(1.0));
        assert_eq!(snap.value("hallu_paged_rejected_total", &[]), Some(1.0));
        drop(fork);
        drop(parent);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.value("hallu_paged_pages", &[]), Some(0.0));
        assert_eq!(
            snap.value("hallu_paged_pages_free", &[]),
            Some(pool.stats().pages_free as f64)
        );
    }

    #[test]
    fn model_prefill_on_paged_cache_is_bit_identical_to_contiguous() {
        let cfg = ModelConfig::tiny(48);
        let model = TransformerLM::synthetic(cfg.clone(), 11);
        let tokens: Vec<TokenId> = (0..90u32).map(|i| (i * 7 + 3) % 48).collect();
        let mut dense = model.new_cache();
        let dense_logits = model.prefill(&tokens, &mut dense);
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(&cfg, 64)));
        let mut paged = pool.new_cache(cfg.max_seq_len);
        paged.try_reserve(tokens.len()).unwrap();
        let paged_logits = model.prefill(&tokens, &mut paged);
        assert_eq!(dense_logits, paged_logits, "logit bits differ");
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        for layer in 0..cfg.n_layers {
            for pos in 0..tokens.len() {
                assert_eq!(dense.key(layer, pos), paged.key(layer, pos));
                assert_eq!(dense.value(layer, pos), paged.value(layer, pos));
            }
        }
        assert_eq!(
            paged.kv_bytes(),
            2 * cfg.n_layers * tokens.len() * kv_dim * 4
        );
    }

    #[test]
    fn prefix_cache_roundtrip_lru_and_page_return() {
        let pool = tiny_pool(64);
        let cache =
            PagedPrefixCache::new(Arc::clone(&pool), PrefixCacheConfig::with_max_entries(2));
        let toks = |salt: u32| -> Vec<TokenId> { (0..5u32).map(|i| i * 3 + salt).collect() };
        let build = |salt: f32| {
            let mut kv = pool.new_cache(8);
            kv.try_reserve(5).unwrap();
            push(&mut kv, 5, salt);
            kv
        };
        assert!(cache.fork("m", &toks(0), 8).is_none());
        let built = build(1.0);
        assert!(cache.insert("m", &toks(0), &built));
        // Snapshot shares the builder's pages: no new live pages.
        assert_eq!(pool.stats().pages_live, 2);
        drop(built);
        let f = cache.fork("m", &toks(0), 8).expect("hit");
        assert_eq!(f.len(), 5);
        assert_rows_match(&|l, p| build(1.0).key(l, p).to_vec(), &f, 5);
        // Rejections: empty, length mismatch, foreign pool.
        assert!(!cache.insert("m", &[], &build(0.0)));
        let other = tiny_pool(4);
        let mut foreign = other.new_cache(8);
        foreign.try_reserve(5).unwrap();
        push(&mut foreign, 5, 0.0);
        assert!(!cache.insert("m", &toks(0), &foreign));
        assert_eq!(cache.stats().rejected, 2);
        // LRU eviction returns the evicted snapshot's pages once unshared.
        cache.insert("m", &toks(100), &build(2.0));
        let live_before = pool.stats().pages_live;
        assert!(cache.fork("m", &toks(0), 8).is_some(), "refresh key 0");
        drop(f);
        cache.insert("m", &toks(200), &build(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.fork("m", &toks(100), 8).is_none(), "LRU evicted");
        assert!(
            pool.stats().pages_live <= live_before + 2,
            "evicted pages freed"
        );
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn prefix_cache_fork_then_extend_matches_fresh_prefill() {
        // The paged analogue of the contiguous fork-then-extend parity test:
        // serving a suffix from a cached paged prefix is bitwise invisible.
        let cfg = ModelConfig::tiny(48);
        let model = TransformerLM::synthetic(cfg.clone(), 5);
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(&cfg, 64)));
        let cache = PagedPrefixCache::new(Arc::clone(&pool), PrefixCacheConfig::default());
        let prefix: Vec<TokenId> = (0..70u32).map(|i| (i * 5 + 1) % 48).collect();
        let suffix: Vec<TokenId> = (0..9u32).map(|i| (i * 11 + 2) % 48).collect();
        let need = prefix.len() + suffix.len();

        let mut fresh = model.new_cache_with_capacity(need);
        let full: Vec<TokenId> = prefix.iter().chain(&suffix).copied().collect();
        let fresh_logits = model.prefill(&full, &mut fresh);

        // Miss path: build, insert, extend the builder.
        let mut built = pool.new_cache(need);
        built.try_reserve(prefix.len()).unwrap();
        model.prefill_cache_only(&prefix, &mut built);
        assert!(cache.insert("m", &prefix, &built));
        built.try_reserve(suffix.len()).unwrap(); // COWs the shared tail
        let miss_logits = model.prefill(&suffix, &mut built);
        assert_eq!(fresh_logits, miss_logits, "miss path diverged");

        // Hit path: fork the snapshot, extend.
        let mut forked = cache.fork("m", &prefix, need).expect("hit");
        forked.try_reserve(suffix.len()).unwrap();
        let hit_logits = model.prefill(&suffix, &mut forked);
        assert_eq!(fresh_logits, hit_logits, "hit path diverged");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn continuous_batcher_is_bit_identical_to_isolated_prefill() {
        let cfg = ModelConfig::tiny(48);
        let model = TransformerLM::synthetic(cfg.clone(), 23);
        let mk = |salt: u32, len: usize| -> Vec<TokenId> {
            (0..len as u32).map(|i| (i * 13 + salt) % 48).collect()
        };
        let seqs = [mk(1, 30), mk(2, 130), mk(3, 64), mk(4, 65)];
        let isolated: Vec<Vec<u32>> = seqs
            .iter()
            .map(|s| {
                let mut c = model.new_cache();
                model
                    .prefill(s, &mut c)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
            .collect();
        for max_active in [1usize, 2, 4] {
            let mut b = ContinuousBatcher::new(ContinuousBatcherConfig {
                max_active,
                block_ms: 1.0,
            });
            for (i, s) in seqs.iter().enumerate() {
                let arrive = [0.0, 0.5, 3.0, 40.0][i];
                b.submit(
                    arrive,
                    PrefillStream::new(&model, s.clone(), model.new_cache()),
                );
            }
            let out = b.run(0.0);
            assert_eq!(out.results.len(), seqs.len());
            for (i, (logits, cache)) in out.results.iter().enumerate() {
                let bits: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits, isolated[i], "max_active {max_active} seq {i}");
                assert_eq!(cache.len(), seqs[i].len());
            }
            assert_eq!(out.joins.len(), seqs.len());
            let total_blocks: u64 = seqs
                .iter()
                .map(|s| s.len().div_ceil(PREFILL_BLOCK) as u64)
                .sum();
            assert_eq!(out.blocks_run, total_blocks);
        }
    }

    #[test]
    fn continuous_batcher_schedule_is_deterministic_and_joins_at_boundaries() {
        let cfg = ModelConfig::tiny(48);
        let model = TransformerLM::synthetic(cfg.clone(), 29);
        let run_once = || {
            let mut b = ContinuousBatcher::new(ContinuousBatcherConfig {
                max_active: 2,
                block_ms: 2.0,
            });
            for (arrive, salt, len) in [
                (0.0, 1u32, 140usize),
                (1.0, 2, 70),
                (1.0, 3, 70),
                (100.0, 4, 10),
            ] {
                let toks: Vec<TokenId> = (0..len as u32).map(|i| (i * 3 + salt) % 48).collect();
                b.submit(arrive, PrefillStream::new(&model, toks, model.new_cache()));
            }
            b.run(0.0)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.joins, b.joins, "schedule must be reproducible");
        assert_eq!(a.end_ms.to_bits(), b.end_ms.to_bits());
        // Seq 0 joins at t=0 before any block; seqs 1 and 2 arrive at 1.0 but
        // a slot frees only at a block boundary; both join in submission
        // order. Seq 3 arrives after everything drained — the clock jumps.
        assert_eq!((a.joins[0].seq, a.joins[0].boundary), (0, 0));
        assert_eq!(a.joins[1].seq, 1);
        assert!(a.joins[1].at_ms >= 1.0);
        assert_eq!(a.joins[2].seq, 2);
        assert!(a.joins[2].boundary > a.joins[1].boundary);
        assert_eq!(a.joins[3].seq, 3);
        assert_eq!(a.joins[3].at_ms, 100.0, "idle engine jumps to next arrival");
        // Every admission happens at a block boundary by construction: its
        // timestamp is start + boundary * block_ms until an idle jump.
        for j in &a.joins[..3] {
            assert_eq!(j.at_ms, j.boundary as f64 * 2.0);
        }
    }

    #[test]
    fn continuous_batcher_drives_paged_caches_and_virtual_clock() {
        let cfg = ModelConfig::tiny(48);
        let model = TransformerLM::synthetic(cfg.clone(), 31);
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(&cfg, 32)));
        let obs = Obs::new();
        let toks: Vec<TokenId> = (0..80u32).map(|i| (i * 7 + 5) % 48).collect();
        let mut dense_cache = model.new_cache();
        let dense = model.prefill(&toks, &mut dense_cache);
        let clock = VirtualClock::starting_at(50.0);
        let mut b = ContinuousBatcher::new(ContinuousBatcherConfig::default()).with_obs(&obs);
        for _ in 0..2 {
            let mut cache = pool.new_cache(cfg.max_seq_len);
            cache.try_reserve(toks.len()).unwrap();
            b.submit(50.0, PrefillStream::new(&model, toks.clone(), cache));
        }
        let out = b.run_with_clock(&clock);
        for (logits, cache) in &out.results {
            assert_eq!(logits, &dense, "paged continuous run diverged");
            assert_eq!(cache.len(), toks.len());
        }
        assert_eq!(clock.now_ms(), out.end_ms, "clock advanced to finish");
        assert!(out.end_ms >= 50.0 + out.blocks_run as f64);
        assert_eq!(
            obs.metrics_snapshot().value("hallu_paged_join_total", &[]),
            Some(2.0)
        );
    }

    proptest::proptest! {
        /// Random alloc/extend/fork/drop op logs uphold the pool invariants:
        /// page conservation (live + free == created, so the free list can
        /// never double-free), handle accounting (pool handles == Σ blocks
        /// across live caches), the page budget, byte-gauge consistency, and
        /// value integrity — after any COW chain, every cache still reads
        /// exactly the rows its own op history wrote (no aliasing).
        #[test]
        fn pool_op_logs_conserve_pages_and_never_alias(
            ops in proptest::collection::vec((0usize..4, 0u8..4, 1usize..6), 1..80),
        ) {
            let obs = Obs::new();
            let config = PagedPoolConfig {
                n_layers: 1,
                kv_dim: 2,
                block_tokens: 4,
                max_pages: 10,
            };
            let pool = Arc::new(PagedKvPool::new(config).with_obs(&obs));
            // Slot model: the cache plus the per-position fill values its
            // history dictates.
            let mut slots: Vec<Option<(PagedKvCache, Vec<f32>)>> =
                (0..4).map(|_| None).collect();
            for (step, &(slot, op, n)) in ops.iter().enumerate() {
                match op {
                    0 => slots[slot] = Some((pool.new_cache(20), Vec::new())),
                    1 => {
                        if let Some((c, vals)) = slots[slot].as_mut() {
                            let n = n.min(c.max_seq() - c.len());
                            if n > 0 && c.try_reserve(n).is_ok() {
                                for i in 0..n {
                                    let fill = (step * 8 + i) as f32 + 0.5;
                                    c.write(0, &[fill, fill + 0.25], &[-fill, -fill - 0.25]);
                                    c.advance();
                                    vals.push(fill);
                                }
                            }
                        }
                    }
                    2 => {
                        if let Some((c, vals)) = slots[slot].as_ref() {
                            let fork = c.fork_with_capacity(c.max_seq());
                            let vals = vals.clone();
                            slots[(slot + 1) % 4] = Some((fork, vals));
                        }
                    }
                    _ => slots[slot] = None,
                }
                let stats = pool.stats();
                proptest::prop_assert_eq!(
                    stats.pages_live + stats.pages_free,
                    stats.created,
                    "page conservation broken at step {}", step
                );
                proptest::prop_assert!(stats.pages_live <= config.max_pages);
                proptest::prop_assert!(stats.peak_live >= stats.pages_live);
                let held: usize = slots
                    .iter()
                    .flatten()
                    .map(|(c, _)| c.n_blocks())
                    .sum();
                proptest::prop_assert_eq!(stats.handles, held, "handle leak at step {}", step);
                for (c, vals) in slots.iter().flatten() {
                    proptest::prop_assert_eq!(c.len(), vals.len());
                    for (pos, &fill) in vals.iter().enumerate() {
                        proptest::prop_assert_eq!(c.key(0, pos), &[fill, fill + 0.25][..]);
                        proptest::prop_assert_eq!(c.value(0, pos), &[-fill, -fill - 0.25][..]);
                    }
                }
            }
            let stats = pool.stats();
            let snap = obs.metrics_snapshot();
            proptest::prop_assert_eq!(
                snap.value("hallu_paged_bytes", &[]),
                Some((stats.pages_live * config.page_bytes()) as f64)
            );
            proptest::prop_assert_eq!(
                snap.value("hallu_paged_pages", &[]),
                Some(stats.pages_live as f64)
            );
            for s in slots.iter_mut() {
                *s = None;
            }
            let stats = pool.stats();
            proptest::prop_assert_eq!(stats.handles, 0);
            proptest::prop_assert_eq!(stats.pages_live, 0);
            proptest::prop_assert_eq!(stats.pages_free, stats.created);
        }
    }
}
