//! Language-model scoring: token log-likelihoods and perplexity.
//!
//! Beyond yes/no verification, a deployed SLM is often asked "how surprising
//! is this text?" — perplexity underlies fluency filters and the
//! probability-based hallucination tests the paper's related work cites
//! ([29]'s distribution tests). One pass over the text yields the full
//! per-token log-likelihood profile.

use tensor::nn::log_softmax;

use crate::bpe::{Bpe, TokenId};
use crate::model::TransformerLM;

/// Log-likelihood profile of a token sequence under a model.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceScore {
    /// Per-token natural-log probabilities `log P(t_i | t_<i)`, starting at
    /// the second token (the first has no conditioning context).
    pub token_log_probs: Vec<f64>,
    /// Sum of the per-token log probabilities.
    pub total_log_prob: f64,
    /// `exp(−total / n)` — standard perplexity.
    pub perplexity: f64,
}

/// Score a token sequence (teacher forcing, one pass, KV cached).
///
/// # Panics
/// Panics if `tokens` has fewer than 2 tokens or exceeds the context window.
pub fn score_tokens(model: &TransformerLM, tokens: &[TokenId]) -> SequenceScore {
    assert!(tokens.len() >= 2, "need at least two tokens to score");
    let mut cache = model.new_cache();
    let mut token_log_probs = Vec::with_capacity(tokens.len() - 1);
    let mut logits = model.forward_token(tokens[0], &mut cache);
    for &next in &tokens[1..] {
        let logp = log_softmax(&logits);
        token_log_probs.push(f64::from(logp[next as usize]));
        logits = model.forward_token(next, &mut cache);
    }
    let total_log_prob: f64 = token_log_probs.iter().sum();
    let perplexity = (-total_log_prob / token_log_probs.len() as f64).exp();
    SequenceScore {
        token_log_probs,
        total_log_prob,
        perplexity,
    }
}

/// Tokenize text (with BOS) and score it.
///
/// Returns `None` when the text tokenizes to fewer than 2 tokens.
pub fn score_text(model: &TransformerLM, tokenizer: &Bpe, text: &str) -> Option<SequenceScore> {
    let ids = tokenizer.encode(text, true);
    let max = model.config().max_seq_len;
    let ids = if ids.len() > max {
        &ids[..max]
    } else {
        &ids[..]
    };
    if ids.len() < 2 {
        return None;
    }
    Some(score_tokens(model, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn setup() -> (TransformerLM, Bpe) {
        let bpe = Bpe::train(
            &["the store opens at nine and closes at five every day"],
            120,
        );
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 23);
        (model, bpe)
    }

    #[test]
    fn log_probs_are_valid() {
        let (model, bpe) = setup();
        let s = score_text(&model, &bpe, "the store opens at nine").unwrap();
        assert!(!s.token_log_probs.is_empty());
        assert!(s
            .token_log_probs
            .iter()
            .all(|&lp| lp <= 0.0 && lp.is_finite()));
        assert!((s.total_log_prob - s.token_log_probs.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn perplexity_formula_holds() {
        let (model, bpe) = setup();
        let s = score_text(&model, &bpe, "the store opens").unwrap();
        let n = s.token_log_probs.len() as f64;
        assert!((s.perplexity - (-s.total_log_prob / n).exp()).abs() < 1e-9);
        assert!(s.perplexity >= 1.0);
    }

    #[test]
    fn perplexity_bounded_by_vocab() {
        // uniform prediction gives ppl == vocab size; a real model stays below
        // astronomically worse than that
        let (model, bpe) = setup();
        let s = score_text(&model, &bpe, "the store opens at nine").unwrap();
        assert!(s.perplexity < (bpe.vocab_size() as f64) * 10.0);
    }

    #[test]
    fn greedy_continuation_has_maximal_token_prob() {
        // the greedy token must be at least as probable as any alternative
        let (model, bpe) = setup();
        let prompt = bpe.encode("the store", true);
        let greedy = model.generate_greedy(&prompt, 1, None)[0];
        let mut with_greedy = prompt.clone();
        with_greedy.push(greedy);
        let s_greedy = score_tokens(&model, &with_greedy);
        let alternative = if greedy == 5 { 6 } else { 5 };
        let mut with_alt = prompt.clone();
        with_alt.push(alternative);
        let s_alt = score_tokens(&model, &with_alt);
        assert!(s_greedy.token_log_probs.last().unwrap() >= s_alt.token_log_probs.last().unwrap());
    }

    #[test]
    fn too_short_text_is_none() {
        let (model, bpe) = setup();
        assert!(score_text(&model, &bpe, "").is_none());
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn single_token_panics() {
        let (model, _) = setup();
        score_tokens(&model, &[1]);
    }

    #[test]
    fn deterministic() {
        let (model, bpe) = setup();
        let a = score_text(&model, &bpe, "the store opens at nine").unwrap();
        let b = score_text(&model, &bpe, "the store opens at nine").unwrap();
        assert_eq!(a, b);
    }
}
