//! Shared-prefix KV cache: prefill a `(question, context)` prefix once, fork
//! it per sentence suffix.
//!
//! The paper scores every sentence `r_{i,j}` with one forward pass over the
//! prompt `(q_i, c_i, r_{i,j})` (Eq. 2–3). The `(q_i, c_i)` prefix — by far
//! the longest part — is identical across all sentences of a response, so
//! recomputing it per sentence wastes `O(sentences × prefix_len)` layer
//! passes. [`PrefixCache`] memoizes the KV state after the prefix: on a hit
//! the suffix continues from a cheap copy of the snapshot
//! ([`KvCache::fork_with_capacity`]); on a miss the caller prefises once and
//! deposits a compact snapshot ([`KvCache::compact_clone`]) for the next
//! sentence.
//!
//! **Why a hit cannot change scores.** The transformer is causal: the KV rows
//! of prefix positions depend only on prefix tokens, so a forked snapshot
//! extended with suffix tokens walks through bit-for-bit the same states as a
//! fresh prefill of `prefix ++ suffix` (asserted by the fork-then-extend
//! parity tests). Combined with the episode-purity contract of PR 4, prefix
//! reuse is semantically invisible — it only saves wall-clock work.
//!
//! Eviction is LRU under two bounds — entry count and accounted bytes (KV
//! floats + token ids + fixed overhead) — mirroring
//! [`crate::cache::VerificationCache`]. Hit/miss/insert/eviction counters and
//! occupancy gauges publish through `hallu-obs` when connected.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hallu_obs::{Counter, Gauge, Obs};

use crate::bpe::TokenId;
use crate::kv::KvCache;

/// Fixed accounting overhead per cached prefix, covering the entry struct,
/// recency tick, and map bookkeeping. Part of the deterministic byte model,
/// not a measurement.
pub const PREFIX_ENTRY_OVERHEAD_BYTES: usize = 96;

/// Capacity knobs for [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Bound on cached prefixes. Never exceeded.
    pub max_entries: usize,
    /// Bound on accounted bytes (KV rows + token ids +
    /// [`PREFIX_ENTRY_OVERHEAD_BYTES`] per entry). Never exceeded.
    pub max_bytes: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            max_entries: 64,
            // KV snapshots are dense float rows, so the byte budget is the
            // binding bound in practice: a 224-token qwen2-like prefix costs
            // ~230 KiB.
            max_bytes: 32 << 20,
        }
    }
}

impl PrefixCacheConfig {
    /// A config with `max_entries` entries and a non-binding byte budget,
    /// convenient for tests and sweeps.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self {
            max_entries,
            ..Self::default()
        }
    }
}

/// FNV-1a over the model name and the prefix token ids (with a separator so
/// the two fields cannot alias). Shared with [`crate::paged::PagedPrefixCache`]
/// so both prefix caches key identically.
pub(crate) fn prefix_hash(model: &str, tokens: &[TokenId]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in model.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h ^= 0xff;
    h = h.wrapping_mul(PRIME);
    for &t in tokens {
        for b in t.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[derive(Debug)]
struct Entry {
    model: String,
    tokens: Vec<TokenId>,
    /// Compact snapshot: `kv.max_seq() == kv.len() == tokens.len()`.
    kv: KvCache,
    bytes: usize,
    last_used: u64,
}

impl Entry {
    fn matches(&self, model: &str, tokens: &[TokenId]) -> bool {
        self.model == model && self.tokens == tokens
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Entries bucketed by full key hash; the inner vec holds hash
    /// collisions (resolved by exact comparison).
    buckets: HashMap<u64, Vec<Entry>>,
    entries: usize,
    bytes: usize,
    /// Monotonic recency clock, bumped on every touch.
    tick: u64,
}

impl Inner {
    fn evict_lru(&mut self) -> bool {
        let Some((&hash, pos)) = self
            .buckets
            .iter()
            .flat_map(|(hash, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(pos, entry)| ((hash, pos), entry.last_used))
            })
            .min_by_key(|&(_, last_used)| last_used)
            .map(|((hash, pos), _)| (hash, pos))
        else {
            return false;
        };
        let Some(bucket) = self.buckets.get_mut(&hash) else {
            return false;
        };
        let entry = bucket.remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.entries -= 1;
        self.bytes -= entry.bytes;
        true
    }
}

/// Point-in-time prefix-cache statistics. Counters are cumulative since
/// construction; `entries`/`bytes` are current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Forks served from a cached snapshot.
    pub hits: u64,
    /// Lookups that found no snapshot.
    pub misses: u64,
    /// New snapshots admitted.
    pub inserts: u64,
    /// Inserts that overwrote an existing prefix in place.
    pub updates: u64,
    /// Snapshots removed by LRU pressure.
    pub evictions: u64,
    /// Inserts refused (empty prefix or token/KV length mismatch).
    pub rejected: u64,
    /// Current snapshot count.
    pub entries: u64,
    /// Current accounted bytes.
    pub bytes: u64,
}

impl PrefixStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry handles mirroring the prefix-cache counters; disconnected (free)
/// unless [`PrefixCache::with_obs`] is used.
#[derive(Debug, Clone, Default)]
struct PrefixTelemetry {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    updates: Counter,
    evictions: Counter,
    rejected: Counter,
    entries: Gauge,
    bytes: Gauge,
}

impl PrefixTelemetry {
    fn register(obs: &Obs) -> Self {
        let event = |kind: &str, help: &str| {
            obs.counter("hallu_prefix_cache_events_total", help, &[("kind", kind)])
        };
        let help = "Prefix KV cache events by kind";
        Self {
            hits: event("hit", help),
            misses: event("miss", help),
            inserts: event("insert", help),
            updates: event("update", help),
            evictions: event("eviction", help),
            rejected: event("rejected", help),
            entries: obs.gauge(
                "hallu_prefix_cache_entries",
                "Current prefix KV cache snapshot count",
                &[],
            ),
            bytes: obs.gauge(
                "hallu_prefix_cache_bytes",
                "Current prefix KV cache accounted bytes",
                &[],
            ),
        }
    }
}

/// Bounded LRU store of post-prefix KV snapshots, keyed by
/// `(model, prefix tokens)`.
///
/// Thread-safe behind a single mutex: entries are few and large (the
/// expensive part of a hit is the fork *copy*, which happens outside the
/// lock would be unsound — the snapshot could be evicted mid-copy — so the
/// copy runs under the lock; at 64 snapshots of a few hundred KiB this is
/// still far cheaper than the prefill it replaces).
pub struct PrefixCache {
    inner: Mutex<Inner>,
    config: PrefixCacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    obs: PrefixTelemetry,
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PrefixCache {
    /// Build a cache with the given bounds.
    pub fn new(config: PrefixCacheConfig) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            config: PrefixCacheConfig {
                max_entries: config.max_entries.max(1),
                max_bytes: config.max_bytes.max(1),
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            obs: PrefixTelemetry::default(),
        }
    }

    /// Mirror cache counters into `obs` as
    /// `hallu_prefix_cache_events_total{kind}` plus occupancy gauges.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = PrefixTelemetry::register(obs);
        self
    }

    /// The configuration the cache was built with (after the ≥1 clamps).
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn publish_occupancy(&self, entries: usize, bytes: usize) {
        self.obs.entries.set(entries as f64);
        self.obs.bytes.set(bytes as f64);
    }

    /// Fork the snapshot for `(model, tokens)` into a cache with `capacity`
    /// positions, refreshing its recency. `None` on miss.
    ///
    /// # Panics
    /// Panics when `capacity` is smaller than the cached prefix length.
    pub fn fork(&self, model: &str, tokens: &[TokenId], capacity: usize) -> Option<KvCache> {
        let hash = prefix_hash(model, tokens);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let forked = inner
            .buckets
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.matches(model, tokens)))
            .map(|entry| {
                entry.last_used = tick;
                entry.kv.fork_with_capacity(capacity)
            });
        drop(inner);
        match forked {
            Some(kv) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.hits.inc();
                Some(kv)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.misses.inc();
                None
            }
        }
    }

    /// Admit a post-prefix KV snapshot (stored compacted). Returns `false`
    /// without caching when the prefix is empty or `kv.len()` disagrees with
    /// the token count — a snapshot that does not actually correspond to the
    /// claimed prefix must never be served. Existing prefixes are replaced in
    /// place; new entries may evict least-recently-used snapshots, and an
    /// entry larger than the whole byte budget is dropped immediately.
    pub fn insert(&self, model: &str, tokens: &[TokenId], kv: &KvCache) -> bool {
        if tokens.is_empty() || kv.len() != tokens.len() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.obs.rejected.inc();
            return false;
        }
        let snapshot = kv.compact_clone();
        let bytes = snapshot.kv_bytes()
            + std::mem::size_of_val(tokens)
            + model.len()
            + PREFIX_ENTRY_OVERHEAD_BYTES;
        let hash = prefix_hash(model, tokens);
        let mut evicted = 0u64;
        let updated;
        let (cur_entries, cur_bytes);
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let existing = inner
                .buckets
                .get_mut(&hash)
                .and_then(|bucket| bucket.iter_mut().find(|e| e.matches(model, tokens)));
            if let Some(entry) = existing {
                let old = entry.bytes;
                entry.kv = snapshot;
                entry.bytes = bytes;
                entry.last_used = tick;
                updated = true;
                inner.bytes = inner.bytes - old + bytes;
            } else {
                updated = false;
                inner.bytes += bytes;
                inner.entries += 1;
                inner.buckets.entry(hash).or_default().push(Entry {
                    model: model.to_string(),
                    tokens: tokens.to_vec(),
                    kv: snapshot,
                    bytes,
                    last_used: tick,
                });
            }
            while inner.entries > self.config.max_entries || inner.bytes > self.config.max_bytes {
                if !inner.evict_lru() {
                    break;
                }
                evicted += 1;
            }
            cur_entries = inner.entries;
            cur_bytes = inner.bytes;
        }
        if updated {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.obs.updates.inc();
        } else {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.obs.inserts.inc();
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.obs.evictions.add(evicted);
        }
        self.publish_occupancy(cur_entries, cur_bytes);
        true
    }

    /// Fork on hit, or build + admit + return on miss. `build` must return a
    /// KV state whose length equals `tokens.len()` and whose capacity is at
    /// least `capacity`; on a miss it is returned directly (no copy), after a
    /// compact snapshot is deposited for subsequent suffixes. The boolean is
    /// `true` on a hit.
    pub fn fork_or_build(
        &self,
        model: &str,
        tokens: &[TokenId],
        capacity: usize,
        build: impl FnOnce() -> KvCache,
    ) -> (KvCache, bool) {
        if let Some(kv) = self.fork(model, tokens, capacity) {
            return (kv, true);
        }
        let kv = build();
        debug_assert!(kv.max_seq() >= capacity, "built cache under capacity");
        self.insert(model, tokens, &kv);
        (kv, false)
    }

    /// Current snapshot count.
    pub fn len(&self) -> usize {
        self.lock().entries
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current accounted bytes.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> PrefixStats {
        let (entries, bytes) = {
            let inner = self.lock();
            (inner.entries as u64, inner.bytes as u64)
        };
        PrefixStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A distinguishable fake snapshot: `len` positions of a 1-layer,
    /// 2-wide KV filled with `fill`.
    fn snapshot(len: usize, fill: f32) -> KvCache {
        let mut kv = KvCache::new(1, len.max(1), 2);
        for _ in 0..len {
            kv.write(0, &[fill, fill], &[fill + 0.5, fill + 0.5]);
            kv.advance();
        }
        kv
    }

    fn tokens(n: usize, salt: u32) -> Vec<TokenId> {
        (0..n as u32).map(|i| i * 7 + salt).collect()
    }

    #[test]
    fn miss_then_insert_then_hit_roundtrip() {
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        let toks = tokens(5, 1);
        assert!(cache.fork("m", &toks, 8).is_none());
        assert!(cache.insert("m", &toks, &snapshot(5, 0.25)));
        let forked = cache.fork("m", &toks, 8).expect("hit");
        assert_eq!(forked.len(), 5);
        assert_eq!(forked.max_seq(), 8);
        assert_eq!(forked.key(0, 4), &[0.25, 0.25]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn model_and_tokens_separate_keys() {
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        cache.insert("m1", &tokens(4, 1), &snapshot(4, 1.0));
        assert!(cache.fork("m2", &tokens(4, 1), 8).is_none());
        assert!(cache.fork("m1", &tokens(4, 2), 8).is_none());
        assert!(cache.fork("m1", &tokens(3, 1), 8).is_none());
        assert!(cache.fork("m1", &tokens(4, 1), 8).is_some());
    }

    #[test]
    fn mismatched_snapshots_are_rejected() {
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        assert!(!cache.insert("m", &[], &snapshot(0, 0.0)), "empty prefix");
        assert!(
            !cache.insert("m", &tokens(3, 0), &snapshot(2, 0.0)),
            "length mismatch"
        );
        assert_eq!(cache.stats().rejected, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        let toks = tokens(3, 9);
        cache.insert("m", &toks, &snapshot(3, 1.0));
        cache.insert("m", &toks, &snapshot(3, 2.0));
        let forked = cache.fork("m", &toks, 4).expect("hit");
        assert_eq!(forked.key(0, 0), &[2.0, 2.0]);
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.updates, stats.entries), (1, 1, 1));
    }

    #[test]
    fn entry_bound_evicts_lru() {
        let cache = PrefixCache::new(PrefixCacheConfig::with_max_entries(2));
        cache.insert("m", &tokens(2, 0), &snapshot(2, 0.0));
        cache.insert("m", &tokens(2, 100), &snapshot(2, 1.0));
        // Touch the first so the second becomes LRU.
        assert!(cache.fork("m", &tokens(2, 0), 4).is_some());
        cache.insert("m", &tokens(2, 200), &snapshot(2, 2.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.fork("m", &tokens(2, 100), 4).is_none(), "LRU evicted");
        assert!(cache.fork("m", &tokens(2, 0), 4).is_some());
        assert!(cache.fork("m", &tokens(2, 200), 4).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let per_entry = snapshot(4, 0.0).kv_bytes()
            + 4 * std::mem::size_of::<TokenId>()
            + 1
            + PREFIX_ENTRY_OVERHEAD_BYTES;
        let config = PrefixCacheConfig {
            max_entries: usize::MAX >> 1,
            max_bytes: 3 * per_entry,
        };
        let cache = PrefixCache::new(config);
        for i in 0..16 {
            cache.insert("m", &tokens(4, i * 1000), &snapshot(4, i as f32));
            assert!(cache.bytes() <= config.max_bytes, "violated at insert {i}");
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn oversized_entry_is_dropped_immediately() {
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 8,
            max_bytes: 16,
        });
        assert!(cache.insert("m", &tokens(64, 0), &snapshot(64, 0.0)));
        assert!(cache.is_empty(), "entry above the whole budget evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn fork_or_build_builds_once_then_hits() {
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        let toks = tokens(3, 5);
        let mut builds = 0;
        for round in 0..3 {
            let (kv, hit) = cache.fork_or_build("m", &toks, 6, || {
                builds += 1;
                snapshot(3, 7.0).fork_with_capacity(6)
            });
            assert_eq!(hit, round > 0);
            assert_eq!(kv.len(), 3);
            assert!(kv.max_seq() >= 6);
            assert_eq!(kv.key(0, 2), &[7.0, 7.0]);
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let obs = Obs::new();
        let cache = PrefixCache::new(PrefixCacheConfig::with_max_entries(2)).with_obs(&obs);
        for i in 0..5u32 {
            let toks = tokens(2, i * 50);
            cache.insert("m", &toks, &snapshot(2, i as f32));
            let _ = cache.fork("m", &toks, 4);
            let _ = cache.fork("m", &tokens(2, 999_999), 4);
        }
        cache.insert("m", &tokens(3, 0), &snapshot(2, 0.0));
        let stats = cache.stats();
        let snap = obs.metrics_snapshot();
        for (kind, count) in [
            ("hit", stats.hits),
            ("miss", stats.misses),
            ("insert", stats.inserts),
            ("update", stats.updates),
            ("eviction", stats.evictions),
            ("rejected", stats.rejected),
        ] {
            assert_eq!(
                snap.value("hallu_prefix_cache_events_total", &[("kind", kind)]),
                Some(count as f64),
                "kind {kind}"
            );
        }
        assert_eq!(
            snap.value("hallu_prefix_cache_entries", &[]),
            Some(stats.entries as f64)
        );
        assert_eq!(
            snap.value("hallu_prefix_cache_bytes", &[]),
            Some(stats.bytes as f64)
        );
    }

    proptest::proptest! {
        /// Under ANY interleaving of forks and inserts over a small key
        /// space: both bounds hold after every op, a fork never returns a
        /// snapshot other than the last one stored for that key, and the
        /// counters reconcile with the op log.
        #[test]
        fn arbitrary_op_logs_preserve_bounds_values_and_counters(
            max_entries in 1usize..6,
            byte_slots in 1usize..6,
            ops in proptest::collection::vec((0usize..8, 0u8..3), 1..120),
        ) {
            // All keys cost the same, so the byte budget admits exactly
            // `byte_slots` entries; the binding bound varies per case.
            let prefix_len = 3usize;
            let per_entry = {
                let snap = snapshot(prefix_len, 0.0);
                snap.kv_bytes()
                    + prefix_len * std::mem::size_of::<TokenId>()
                    + 1
                    + PREFIX_ENTRY_OVERHEAD_BYTES
            };
            let config = PrefixCacheConfig {
                max_entries,
                max_bytes: byte_slots * per_entry,
            };
            let cache = PrefixCache::new(config);
            let mut model: HashMap<usize, f32> = HashMap::new();
            let (mut forks, mut inserts) = (0u64, 0u64);
            for (i, &(key_idx, op)) in ops.iter().enumerate() {
                let toks = tokens(prefix_len, key_idx as u32 * 100);
                match op {
                    0 => {
                        forks += 1;
                        if let Some(kv) = cache.fork("m", &toks, prefix_len + 2) {
                            proptest::prop_assert_eq!(kv.len(), prefix_len);
                            let expected = model.get(&key_idx).copied();
                            proptest::prop_assert_eq!(
                                Some(kv.key(0, 0)[0]),
                                expected,
                                "stale snapshot for key {}",
                                key_idx
                            );
                        }
                    }
                    _ => {
                        let fill = (i % 13) as f32 + 0.25;
                        proptest::prop_assert!(
                            cache.insert("m", &toks, &snapshot(prefix_len, fill))
                        );
                        // The new entry may itself be evicted when it exceeds
                        // the byte budget alone; the model tracks residency.
                        if cache.fork("m", &toks, prefix_len).is_some() {
                            // un-count the verification fork below
                            forks += 1;
                            model.insert(key_idx, fill);
                        } else {
                            forks += 1;
                            model.remove(&key_idx);
                        }
                        inserts += 1;
                    }
                }
                proptest::prop_assert!(cache.len() <= max_entries);
                proptest::prop_assert!(cache.bytes() <= config.max_bytes);
                // Residency invariant: eviction only ever removes whole
                // entries, so len and bytes agree with per-entry cost.
                proptest::prop_assert_eq!(cache.bytes(), cache.len() * per_entry);
            }
            let stats = cache.stats();
            proptest::prop_assert_eq!(stats.hits + stats.misses, forks);
            proptest::prop_assert_eq!(stats.inserts + stats.updates, inserts);
            proptest::prop_assert_eq!(stats.entries as usize, cache.len());
        }
    }
}
