//! First-token probability extraction — Eq. 2 of the paper.
//!
//! `s_i^(m) = P(token_1 = "yes" | q_i, r_i, c_i)`: run the verification
//! prompt through the model once, softmax the next-token logits, and read the
//! probability mass on the single-token "yes" piece, renormalized against
//! "no". This is exactly what local deployment buys over an API model — one
//! forward pass instead of repeated sampled calls.

use tensor::nn::softmax;

use crate::bpe::Bpe;
use crate::model::TransformerLM;

/// The verification prompt template the paper shows in Fig. 1: question,
/// context and the (sub-)response, followed by an instruction to answer
/// starting with YES or NO.
pub fn verification_prompt(question: &str, context: &str, response: &str) -> String {
    format!(
        "context: {context}\nquestion: {question}\nanswer: {response}\n\
         is the answer correct according to the context? reply yes or no: "
    )
}

/// Probability of the next token over the whole vocabulary.
pub fn next_token_distribution(model: &TransformerLM, prompt_ids: &[u32]) -> Vec<f32> {
    let mut cache = model.new_cache();
    let logits = model.prefill(prompt_ids, &mut cache);
    softmax(&logits)
}

/// `P(yes)` renormalized against `P(no)` (the paper follows Kadavath et al.'s
/// P(True), which restricts mass to the two answer tokens).
///
/// Returns a value in `[0, 1]`. When both token probabilities are zero
/// (degenerate weights) returns 0.5.
pub fn p_yes(
    model: &TransformerLM,
    tokenizer: &Bpe,
    question: &str,
    context: &str,
    response: &str,
) -> f64 {
    let prompt = verification_prompt(question, context, response);
    let ids = tokenizer.encode(&prompt, true);
    // Clamp to cache capacity from the front: the tail (the response under
    // test and the instruction) is the signal-bearing part.
    let max = model.config().max_seq_len;
    let ids = if ids.len() > max {
        &ids[ids.len() - max..]
    } else {
        &ids[..]
    };
    let dist = next_token_distribution(model, ids);
    let yes = dist
        .get(tokenizer.yes_token() as usize)
        .copied()
        .unwrap_or(0.0) as f64;
    let no = dist
        .get(tokenizer.no_token() as usize)
        .copied()
        .unwrap_or(0.0) as f64;
    if yes + no <= 0.0 {
        0.5
    } else {
        yes / (yes + no)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn setup() -> (TransformerLM, Bpe) {
        let corpus = [
            "the store operates from 9 am to 5 pm",
            "working hours are from sunday to saturday",
            "is the answer correct according to the context reply yes or no",
            "context question answer",
        ];
        let bpe = Bpe::train(&corpus, 200);
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 21);
        (model, bpe)
    }

    #[test]
    fn distribution_sums_to_one() {
        let (model, bpe) = setup();
        let ids = bpe.encode("the store", true);
        let dist = next_token_distribution(&model, &ids);
        let sum: f32 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(dist.len(), bpe.vocab_size());
    }

    #[test]
    fn p_yes_is_probability_and_deterministic() {
        let (model, bpe) = setup();
        let p1 = p_yes(
            &model,
            &bpe,
            "what are the hours?",
            "store opens 9 am",
            "9 am",
        );
        let p2 = p_yes(
            &model,
            &bpe,
            "what are the hours?",
            "store opens 9 am",
            "9 am",
        );
        assert!((0.0..=1.0).contains(&p1));
        assert_eq!(p1, p2);
    }

    #[test]
    fn p_yes_depends_on_the_response() {
        // With synthetic weights the value is uninformative but it MUST
        // change with the input — the probability is really being read from
        // the forward pass, not a constant.
        let (model, bpe) = setup();
        let a = p_yes(
            &model,
            &bpe,
            "hours?",
            "store opens 9 am",
            "the store opens 9 am",
        );
        let b = p_yes(
            &model,
            &bpe,
            "hours?",
            "store opens 9 am",
            "the store opens 5 pm",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn long_prompts_are_clamped_not_crashed() {
        let (model, bpe) = setup();
        let long_context = "the store operates from 9 am to 5 pm ".repeat(60);
        let p = p_yes(&model, &bpe, "hours?", &long_context, "9 am to 5 pm");
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn prompt_template_contains_all_parts() {
        let p = verification_prompt("Q?", "CTX", "RESP");
        assert!(p.contains("Q?") && p.contains("CTX") && p.contains("RESP"));
        assert!(p.to_lowercase().contains("yes or no"));
    }
}
