//! First-token probability extraction — Eq. 2 of the paper.
//!
//! `s_i^(m) = P(token_1 = "yes" | q_i, r_i, c_i)`: run the verification
//! prompt through the model once, softmax the next-token logits, and read the
//! probability mass on the single-token "yes" piece, renormalized against
//! "no". This is exactly what local deployment buys over an API model — one
//! forward pass instead of repeated sampled calls.

use tensor::nn::softmax;

use crate::bpe::Bpe;
use crate::model::InferenceModel;
use crate::paged::{PagedPrefixCache, PoolExhausted};
use crate::prefix::PrefixCache;

/// The verification prompt template the paper shows in Fig. 1: question,
/// context and the (sub-)response, followed by an instruction to answer
/// starting with YES or NO.
pub fn verification_prompt(question: &str, context: &str, response: &str) -> String {
    format!(
        "context: {context}\nquestion: {question}\nanswer: {response}\n\
         is the answer correct according to the context? reply yes or no: "
    )
}

/// The response-independent head of [`verification_prompt`]: everything up to
/// (and excluding) the whitespace before the response. Shared by every
/// sentence probed against the same `(question, context)` cell, so its KV
/// state is what [`PrefixCache`] snapshots.
pub fn prefix_prompt(question: &str, context: &str) -> String {
    format!("context: {context}\nquestion: {question}\nanswer:")
}

/// The response-dependent tail: `prefix_prompt() + suffix_prompt()` equals
/// [`verification_prompt`] character-for-character, split at a whitespace
/// boundary. The BPE normalizes and encodes word-by-word, so the split also
/// concatenates at the *token* level — `encode(prefix, bos) ++ encode(suffix,
/// no-bos) == encode(full, bos)` (asserted by the concat-property test),
/// which is what makes the prefix-cached path bitwise identical.
pub fn suffix_prompt(response: &str) -> String {
    format!(
        " {response}\n\
         is the answer correct according to the context? reply yes or no: "
    )
}

/// Probability of the next token over the whole vocabulary.
///
/// Generic over [`InferenceModel`]: the f32 and int8 engines run the same
/// extraction — the paper's Eq. 2 does not care what precision produced the
/// logits, only the eval gate does.
pub fn next_token_distribution<M: InferenceModel>(model: &M, prompt_ids: &[u32]) -> Vec<f32> {
    let mut cache = model.new_cache();
    let logits = model.prefill(prompt_ids, &mut cache);
    softmax(&logits)
}

/// `P(yes)` renormalized against `P(no)` (the paper follows Kadavath et al.'s
/// P(True), which restricts mass to the two answer tokens).
///
/// Returns a value in `[0, 1]`. When both token probabilities are zero
/// (degenerate weights) returns 0.5.
pub fn p_yes<M: InferenceModel>(
    model: &M,
    tokenizer: &Bpe,
    question: &str,
    context: &str,
    response: &str,
) -> f64 {
    let prompt = verification_prompt(question, context, response);
    let ids = tokenizer.encode(&prompt, true);
    // Clamp to cache capacity from the front: the tail (the response under
    // test and the instruction) is the signal-bearing part.
    let max = model.config().max_seq_len;
    let ids = if ids.len() > max {
        &ids[ids.len() - max..]
    } else {
        &ids[..]
    };
    let dist = next_token_distribution(model, ids);
    renormalized_yes(&dist, tokenizer)
}

/// `P(yes)` for one cell through a shared-prefix KV cache.
///
/// Tokenizes the `(question, context)` prefix and the sentence suffix
/// separately, forks the prefix KV snapshot on a hit (building and depositing
/// it on a miss), and prefills only the suffix. Bitwise identical to
/// [`p_yes`]: token-level concatenation holds at the whitespace split, and
/// fork-then-extend walks the same states as a fresh full prefill. Prompts
/// that would exceed the model's context window fall back to the clamped
/// full-prompt path, which is the same computation [`p_yes`] performs.
pub fn p_yes_prefix<M: InferenceModel>(
    model: &M,
    model_name: &str,
    prefix_cache: &PrefixCache,
    tokenizer: &Bpe,
    question: &str,
    context: &str,
    response: &str,
) -> f64 {
    let prefix_ids = tokenizer.encode(&prefix_prompt(question, context), true);
    let suffix_ids = tokenizer.encode(&suffix_prompt(response), false);
    let max = model.config().max_seq_len;
    if prefix_ids.is_empty() || suffix_ids.is_empty() || prefix_ids.len() + suffix_ids.len() > max {
        // Over-length prompts clamp from the front, which cuts into the
        // shared prefix — no reusable snapshot exists, so score exactly as
        // the uncached path does.
        return p_yes(model, tokenizer, question, context, response);
    }
    // Fork capacity is exactly what this probe touches. Sizing it at
    // `max_seq_len` (the latent over-allocation bug) made every warm fork pay
    // for the model's whole context window — rows the suffix never reaches —
    // so peak bytes scaled with the window instead of the prompt.
    let need = prefix_ids.len() + suffix_ids.len();
    let (mut kv, _hit) = prefix_cache.fork_or_build(model_name, &prefix_ids, need, || {
        let mut fresh = model.new_cache_with_capacity(need);
        model.prefill_cache_only(&prefix_ids, &mut fresh);
        fresh
    });
    let logits = model.prefill(&suffix_ids, &mut kv);
    renormalized_yes(&softmax(&logits), tokenizer)
}

/// `P(yes)` for one cell through the paged prefix cache.
///
/// Same split and same arithmetic as [`p_yes_prefix`], but the prefix
/// snapshot is a table of shared pool pages: a hit forks in `O(blocks)` and
/// copies zero floats, with copy-on-write only for the partial tail page the
/// suffix extends. [`PoolExhausted`] — at any reservation point — degrades to
/// the uncached [`p_yes`] path, which computes the *same* renormalized
/// probability (the pool already counted the rejection); exhaustion can
/// therefore never panic, tear a fork, or change a verdict.
pub fn p_yes_paged<M: InferenceModel>(
    model: &M,
    model_name: &str,
    paged_cache: &PagedPrefixCache,
    tokenizer: &Bpe,
    question: &str,
    context: &str,
    response: &str,
) -> f64 {
    let prefix_ids = tokenizer.encode(&prefix_prompt(question, context), true);
    let suffix_ids = tokenizer.encode(&suffix_prompt(response), false);
    let max = model.config().max_seq_len;
    if prefix_ids.is_empty() || suffix_ids.is_empty() || prefix_ids.len() + suffix_ids.len() > max {
        return p_yes(model, tokenizer, question, context, response);
    }
    match p_yes_paged_attempt(
        model,
        model_name,
        paged_cache,
        tokenizer,
        &prefix_ids,
        &suffix_ids,
    ) {
        Ok(p) => p,
        Err(_exhausted) => p_yes(model, tokenizer, question, context, response),
    }
}

/// The pool-backed scoring attempt behind [`p_yes_paged`]; every reservation
/// failure surfaces as a typed error before any state was torn.
fn p_yes_paged_attempt<M: InferenceModel>(
    model: &M,
    model_name: &str,
    paged_cache: &PagedPrefixCache,
    tokenizer: &Bpe,
    prefix_ids: &[u32],
    suffix_ids: &[u32],
) -> Result<f64, PoolExhausted> {
    let need = prefix_ids.len() + suffix_ids.len();
    let mut kv = match paged_cache.fork(model_name, prefix_ids, need) {
        Some(kv) => kv,
        None => {
            let mut built = paged_cache.pool().new_cache(need);
            built.try_reserve(prefix_ids.len())?;
            model.prefill_cache_only(prefix_ids, &mut built);
            paged_cache.insert(model_name, prefix_ids, &built);
            built
        }
    };
    // On the miss path the insert above shares the builder's pages, so this
    // reservation also copy-on-writes the partial tail page before the suffix
    // extends it.
    kv.try_reserve(suffix_ids.len())?;
    let logits = model.prefill(suffix_ids, &mut kv);
    Ok(renormalized_yes(&softmax(&logits), tokenizer))
}

/// Yes-mass renormalized against no-mass; 0.5 when both are zero. One shared
/// helper so cached and uncached paths read the distribution identically.
fn renormalized_yes(dist: &[f32], tokenizer: &Bpe) -> f64 {
    let yes = dist
        .get(tokenizer.yes_token() as usize)
        .copied()
        .unwrap_or(0.0) as f64;
    let no = dist
        .get(tokenizer.no_token() as usize)
        .copied()
        .unwrap_or(0.0) as f64;
    if yes + no <= 0.0 {
        0.5
    } else {
        yes / (yes + no)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::TransformerLM;

    fn setup() -> (TransformerLM, Bpe) {
        let corpus = [
            "the store operates from 9 am to 5 pm",
            "working hours are from sunday to saturday",
            "is the answer correct according to the context reply yes or no",
            "context question answer",
        ];
        let bpe = Bpe::train(&corpus, 200);
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), 21);
        (model, bpe)
    }

    #[test]
    fn distribution_sums_to_one() {
        let (model, bpe) = setup();
        let ids = bpe.encode("the store", true);
        let dist = next_token_distribution(&model, &ids);
        let sum: f32 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(dist.len(), bpe.vocab_size());
    }

    #[test]
    fn p_yes_is_probability_and_deterministic() {
        let (model, bpe) = setup();
        let p1 = p_yes(
            &model,
            &bpe,
            "what are the hours?",
            "store opens 9 am",
            "9 am",
        );
        let p2 = p_yes(
            &model,
            &bpe,
            "what are the hours?",
            "store opens 9 am",
            "9 am",
        );
        assert!((0.0..=1.0).contains(&p1));
        assert_eq!(p1, p2);
    }

    #[test]
    fn p_yes_depends_on_the_response() {
        // With synthetic weights the value is uninformative but it MUST
        // change with the input — the probability is really being read from
        // the forward pass, not a constant.
        let (model, bpe) = setup();
        let a = p_yes(
            &model,
            &bpe,
            "hours?",
            "store opens 9 am",
            "the store opens 9 am",
        );
        let b = p_yes(
            &model,
            &bpe,
            "hours?",
            "store opens 9 am",
            "the store opens 5 pm",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn long_prompts_are_clamped_not_crashed() {
        let (model, bpe) = setup();
        let long_context = "the store operates from 9 am to 5 pm ".repeat(60);
        let p = p_yes(&model, &bpe, "hours?", &long_context, "9 am to 5 pm");
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn prompt_template_contains_all_parts() {
        let p = verification_prompt("Q?", "CTX", "RESP");
        assert!(p.contains("Q?") && p.contains("CTX") && p.contains("RESP"));
        assert!(p.to_lowercase().contains("yes or no"));
    }

    #[test]
    fn prefix_plus_suffix_is_the_full_prompt() {
        for (q, c, r) in [
            ("hours?", "store opens 9 am", "9 am"),
            ("Q?", "CTX", ""),
            ("  spaced  q ", "ctx\nwith\nnewlines", "  padded resp  "),
        ] {
            assert_eq!(
                format!("{}{}", prefix_prompt(q, c), suffix_prompt(r)),
                verification_prompt(q, c, r),
                "({q:?}, {c:?}, {r:?})"
            );
        }
    }

    #[test]
    fn tokenization_concatenates_at_the_split() {
        // The property the prefix-cached path rests on: encoding the two
        // halves separately yields exactly the tokens of the whole prompt.
        let (_, bpe) = setup();
        for (q, c, r) in [
            ("what are the hours?", "store opens 9 am", "9 am to 5 pm"),
            ("hours?", "working hours are from sunday to saturday", ""),
            ("q", "context", "  odd   whitespace\tresponse "),
        ] {
            let full = bpe.encode(&verification_prompt(q, c, r), true);
            let mut split = bpe.encode(&prefix_prompt(q, c), true);
            split.extend(bpe.encode(&suffix_prompt(r), false));
            assert_eq!(split, full, "({q:?}, {c:?}, {r:?})");
        }
    }

    #[test]
    fn p_yes_prefix_is_bit_identical_cold_and_warm() {
        let (model, bpe) = setup();
        let cache = PrefixCache::new(crate::prefix::PrefixCacheConfig::default());
        let cells = [
            ("what are the hours?", "store opens 9 am", "9 am"),
            ("what are the hours?", "store opens 9 am", "5 pm"),
            ("what are the hours?", "store opens 9 am", "9 am to 5 pm"),
            (
                "days?",
                "working hours are from sunday to saturday",
                "sunday",
            ),
        ];
        for &(q, c, r) in &cells {
            let plain = p_yes(&model, &bpe, q, c, r);
            let cold = p_yes_prefix(&model, "m", &cache, &bpe, q, c, r);
            let warm = p_yes_prefix(&model, "m", &cache, &bpe, q, c, r);
            assert_eq!(plain, cold, "cold ({q:?}, {r:?})");
            assert_eq!(plain, warm, "warm ({q:?}, {r:?})");
        }
        let stats = cache.stats();
        // Two distinct prefixes → 2 builds; all later lookups hit.
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.hits, cells.len() as u64 * 2 - 2);
    }

    /// Regression for the latent fork over-allocation: warm probes must fork
    /// at `prefix + suffix` capacity, so peak fork bytes track the prompt,
    /// never the model's context window.
    #[test]
    fn warm_fork_capacity_tracks_the_prompt_not_the_window() {
        let (model, bpe) = setup();
        let cache = PrefixCache::new(crate::prefix::PrefixCacheConfig::default());
        let (q, c, r) = ("what are the hours?", "store opens 9 am", "9 am");
        let plain = p_yes(&model, &bpe, q, c, r);
        assert_eq!(plain, p_yes_prefix(&model, "m", &cache, &bpe, q, c, r));

        let prefix_ids = bpe.encode(&prefix_prompt(q, c), true);
        let suffix_ids = bpe.encode(&suffix_prompt(r), false);
        let need = prefix_ids.len() + suffix_ids.len();
        let window = model.config().max_seq_len;
        assert!(need < window / 2, "test needs a short prompt");
        // Fork exactly as the fixed warm path does and pin its allocation.
        let forked = cache.fork("m", &prefix_ids, need).expect("snapshot cached");
        let kv_dim = model.config().n_kv_heads * model.config().head_dim();
        let per_row = 2 * model.config().n_layers * kv_dim * std::mem::size_of::<f32>();
        assert_eq!(forked.allocated_bytes(), need * per_row);
        assert!(forked.allocated_bytes() < window * per_row / 2);
    }

    #[test]
    fn p_yes_paged_is_bit_identical_cold_and_warm() {
        use crate::paged::{PagedKvPool, PagedPoolConfig, PagedPrefixCache};
        use std::sync::Arc;
        let (model, bpe) = setup();
        let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
            model.config(),
            64,
        )));
        let cache = PagedPrefixCache::new(
            Arc::clone(&pool),
            crate::prefix::PrefixCacheConfig::default(),
        );
        let cells = [
            ("what are the hours?", "store opens 9 am", "9 am"),
            ("what are the hours?", "store opens 9 am", "5 pm"),
            (
                "days?",
                "working hours are from sunday to saturday",
                "sunday",
            ),
        ];
        for &(q, c, r) in &cells {
            let plain = p_yes(&model, &bpe, q, c, r);
            let cold = p_yes_paged(&model, "m", &cache, &bpe, q, c, r);
            let warm = p_yes_paged(&model, "m", &cache, &bpe, q, c, r);
            assert_eq!(plain, cold, "cold ({q:?}, {r:?})");
            assert_eq!(plain, warm, "warm ({q:?}, {r:?})");
        }
        let stats = cache.stats();
        assert_eq!(stats.inserts, 2, "two distinct prefixes");
        assert_eq!(stats.hits, cells.len() as u64 * 2 - 2);
        assert!(pool.stats().cow_copies > 0, "suffix extension COWs");
        assert_eq!(pool.stats().rejected, 0);
    }

    /// Satellite 3: a starved pool degrades to the uncached path — verdict
    /// parity preserved, rejection counted, never a panic or torn fork.
    #[test]
    fn exhausted_pool_degrades_to_the_uncached_path() {
        use crate::paged::{PagedKvPool, PagedPoolConfig, PagedPrefixCache};
        use std::sync::Arc;
        let (model, bpe) = setup();
        let (q, c, r) = ("what are the hours?", "store opens 9 am", "9 am");
        let plain = p_yes(&model, &bpe, q, c, r);
        for max_pages in 1..4 {
            let mut cfg = PagedPoolConfig::for_model(model.config(), max_pages);
            // Tiny pages so even short prompts need several of them.
            cfg.block_tokens = 4;
            let pool = Arc::new(PagedKvPool::new(cfg));
            let cache = PagedPrefixCache::new(
                Arc::clone(&pool),
                crate::prefix::PrefixCacheConfig::default(),
            );
            for round in 0..2 {
                let p = p_yes_paged(&model, "m", &cache, &bpe, q, c, r);
                assert_eq!(plain, p, "max_pages {max_pages} round {round}");
            }
            let prefix_len = bpe.encode(&prefix_prompt(q, c), true).len();
            if max_pages * 4 < prefix_len {
                assert!(
                    pool.stats().rejected > 0,
                    "prefix cannot fit in {max_pages} pages"
                );
                assert!(cache.is_empty(), "nothing was cached");
            }
        }
    }

    #[test]
    fn over_length_prompts_fall_back_to_the_clamped_path() {
        let (model, bpe) = setup();
        let cache = PrefixCache::new(crate::prefix::PrefixCacheConfig::default());
        let long_context = "the store operates from 9 am to 5 pm ".repeat(60);
        let plain = p_yes(&model, &bpe, "hours?", &long_context, "9 am");
        let via_prefix = p_yes_prefix(&model, "m", &cache, &bpe, "hours?", &long_context, "9 am");
        assert_eq!(plain, via_prefix);
        assert!(cache.is_empty(), "nothing cacheable for clamped prompts");
    }
}
