//! Calibrated profiles of the paper's models.
//!
//! The constants below are *behavioral fingerprints*, not claims about the
//! real checkpoints: each profile fixes which features the simulated model
//! attends to, how optimistic it is, and how noisy its judgments are. They
//! were chosen so that the framework-level results reproduce the paper's
//! shapes (Fig. 3–7): both SLMs are individually decent, have different
//! means/variances (motivating Eq. 4), and err on different inputs
//! (motivating the ensemble). The ChatGPT profile is accurate but
//! decision-only (the API hides probabilities), which is exactly why it
//! loses on partially-correct responses.

use crate::bpe::Bpe;
use crate::config::{ModelConfig, Precision};
use crate::engine_verifier::EngineVerifier;
use crate::model::TransformerLM;
use crate::quant::QuantizedLM;
use crate::sim::{SimProfile, SimVerifier};
use crate::verifier::YesNoVerifier;

/// Build an engine-backed verifier honoring the config's [`Precision`] knob:
/// `F32` wraps a [`TransformerLM`], `Int8` calibrates and wraps a
/// [`QuantizedLM`]. Both are deterministic in `(cfg, seed)`, score through
/// the same `p_yes` extraction, and slot into the same ensemble — precision
/// is a per-member deployment choice, not a behavioral contract (the AUC
/// eval gate in `quant_sweep` bounds the drift it introduces).
pub fn engine_profile(
    name: impl Into<String>,
    cfg: ModelConfig,
    seed: u64,
    tokenizer: Bpe,
) -> Box<dyn YesNoVerifier> {
    match cfg.precision {
        Precision::F32 => Box::new(EngineVerifier::new(
            name,
            TransformerLM::synthetic(cfg, seed),
            tokenizer,
        )),
        Precision::Int8 => Box::new(EngineVerifier::new(
            name,
            QuantizedLM::synthetic(cfg, seed),
            tokenizer,
        )),
    }
}

/// Simulated Qwen2-1.5B-Instruct: entity-sensitive, slightly optimistic,
/// moderately noisy.
pub fn qwen2_sim() -> SimVerifier {
    SimVerifier::new(SimProfile {
        name: "qwen2-1.5b-sim".into(),
        entity_weight: 0.64,
        containment_weight: 0.22,
        bigram_weight: 0.14,
        negation_penalty: 0.72,
        temperature: 1.0,
        bias: 0.30,
        noise_sigma: 1.2,
        seed: 0x5177_454e, // "QWEN"
        contradiction_miss_prob: 0.22,
        decision_only: false,
        sentence_aware: true,
        tail_prob: 0.26,
        tail_magnitude: 2.6,
    })
}

/// Simulated MiniCPM-2B: lexically-driven, conservative, flatter and noisier
/// than Qwen2 — a visibly different score scale, which is what Eq. 4's
/// per-model normalization corrects.
pub fn minicpm_sim() -> SimVerifier {
    SimVerifier::new(SimProfile {
        name: "minicpm-2b-sim".into(),
        entity_weight: 0.38,
        containment_weight: 0.42,
        bigram_weight: 0.20,
        negation_penalty: 0.30,
        temperature: 1.6,
        bias: -0.35,
        // scaled with 1/temperature so MiniCPM's rank quality matches
        // Qwen2's — the ensemble premise is two comparable models that err
        // on different inputs, not a strong model diluted by a weak one
        noise_sigma: 0.75,
        seed: 0x4350_4d32, // "CPM2"
        contradiction_miss_prob: 0.20,
        decision_only: false,
        sentence_aware: true,
        tail_prob: 0.26,
        tail_magnitude: 2.6,
    })
}

/// Simulated ChatGPT P(True) baseline: strong and low-noise, but API-only —
/// it returns a sampled yes/no decision, not a probability.
pub fn chatgpt_sim() -> SimVerifier {
    SimVerifier::new(SimProfile {
        name: "chatgpt-sim".into(),
        entity_weight: 0.48,
        containment_weight: 0.32,
        bigram_weight: 0.20,
        negation_penalty: 0.40,
        temperature: 0.8,
        bias: -0.30,
        noise_sigma: 0.30,
        seed: 0x4750_5433, // "GPT3"
        contradiction_miss_prob: 0.10,
        decision_only: true,
        sentence_aware: true,
        tail_prob: 0.04,
        tail_magnitude: 2.6,
    })
}

/// Extension profile (§VI future work, ensemble-size sweep): a Phi-2-style
/// small model — sharp but biased toward "yes".
pub fn phi2_sim() -> SimVerifier {
    SimVerifier::new(SimProfile {
        name: "phi2-sim".into(),
        entity_weight: 0.50,
        containment_weight: 0.25,
        bigram_weight: 0.25,
        negation_penalty: 0.55,
        temperature: 1.1,
        bias: 0.55,
        noise_sigma: 2.2,
        seed: 0x5048_4932, // "PHI2"
        contradiction_miss_prob: 0.30,
        decision_only: false,
        sentence_aware: true,
        tail_prob: 0.26,
        tail_magnitude: 2.6,
    })
}

/// Extension profile: a Gemma-2B-style model — balanced but noisy.
pub fn gemma_sim() -> SimVerifier {
    SimVerifier::new(SimProfile {
        name: "gemma-2b-sim".into(),
        entity_weight: 0.45,
        containment_weight: 0.35,
        bigram_weight: 0.20,
        negation_penalty: 0.50,
        temperature: 1.3,
        bias: 0.0,
        noise_sigma: 1.2,
        seed: 0x4745_4d41, // "GEMA"
        contradiction_miss_prob: 0.30,
        decision_only: false,
        sentence_aware: true,
        tail_prob: 0.26,
        tail_magnitude: 2.6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::VerificationRequest;

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
    const Q: &str = "What are the working hours?";
    const GOOD: &str =
        "The working hours are 9 AM to 5 PM, and the store is open from Sunday to Saturday.";
    const BAD: &str =
        "The working hours are 9 AM to 9 PM, and you do not need to work on weekends.";

    #[test]
    fn every_profile_separates_good_from_bad() {
        for v in [qwen2_sim(), minicpm_sim(), phi2_sim(), gemma_sim()] {
            let g = v.p_yes(&VerificationRequest::new(Q, CTX, GOOD));
            let b = v.p_yes(&VerificationRequest::new(Q, CTX, BAD));
            assert!(g > b, "{}: good={g} bad={b}", v.name());
        }
    }

    #[test]
    fn chatgpt_is_binary_and_usually_right() {
        let v = chatgpt_sim();
        let g = v.p_yes(&VerificationRequest::new(Q, CTX, GOOD));
        let b = v.p_yes(&VerificationRequest::new(Q, CTX, BAD));
        assert_eq!(g, 1.0);
        assert_eq!(b, 0.0);
        assert!(!v.exposes_probabilities());
    }

    #[test]
    fn profiles_have_distinct_scales() {
        // On the same inputs the two SLMs must produce different score
        // distributions (different means) — the premise of Eq. 4.
        let q = qwen2_sim();
        let m = minicpm_sim();
        // A large bank of varied responses so the sample statistics are stable.
        let mut responses = Vec::new();
        for i in 0..30 {
            responses.push(format!(
                "The working hours are {} AM to {} PM, case {i}.",
                8 + i % 3,
                4 + i % 4
            ));
            responses.push(format!(
                "The store is open from Monday to Friday, note {i}."
            ));
        }
        let stats = |v: &dyn YesNoVerifier| {
            let ps: Vec<f64> = responses
                .iter()
                .map(|r| v.p_yes(&VerificationRequest::new(Q, CTX, r)))
                .collect();
            let mean = ps.iter().sum::<f64>() / ps.len() as f64;
            let var = ps.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / ps.len() as f64;
            (mean, var.sqrt())
        };
        let (qm, qs) = stats(&q);
        let (mm, ms) = stats(&m);
        // Different means OR visibly different spreads — the premise of Eq. 4.
        assert!(
            (qm - mm).abs() > 0.03 || (qs - ms).abs() > 0.02,
            "qwen ({qm:.3}, {qs:.3}) vs minicpm ({mm:.3}, {ms:.3})"
        );
    }

    #[test]
    fn engine_profile_dispatches_on_precision() {
        let bpe = Bpe::train(
            &[
                "the store operates from 9 am to 5 pm",
                "is the answer correct according to the context reply yes or no",
            ],
            250,
        );
        let cfg = ModelConfig::tiny(bpe.vocab_size());
        let f32_v = engine_profile("f32-engine", cfg.clone(), 7, bpe.clone());
        let int8_v = engine_profile("int8-engine", cfg.with_precision(Precision::Int8), 7, bpe);
        let req = VerificationRequest::new("hours?", "the store operates from 9 am", "9 am");
        let pf = f32_v.p_yes(&req);
        let pq = int8_v.p_yes(&req);
        assert!((0.0..=1.0).contains(&pf));
        assert!((0.0..=1.0).contains(&pq));
        // Same seed, same shapes: quantization error must be small enough
        // that the two precisions broadly agree on the same probe.
        assert!((pf - pq).abs() < 0.2, "f32 {pf} vs int8 {pq}");
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            qwen2_sim(),
            minicpm_sim(),
            chatgpt_sim(),
            phi2_sim(),
            gemma_sim(),
        ]
        .iter()
        .map(|v| v.name().to_string())
        .collect();
        assert_eq!(names.len(), 5);
    }
}
