//! Int8 weight quantization.
//!
//! MiniCPM's selling point is edge deployment; on-device SLMs ship with
//! quantized weights. This module implements symmetric per-row int8
//! quantization of weight matrices with an int8-aware matvec, plus a fully
//! quantized model wrapper whose forward pass matches the f32 engine within
//! quantization error. Memory drops ~4× (1 byte + one f32 scale per row
//! versus 4 bytes per element).

use tensor::Matrix;

use crate::bpe::TokenId;
use crate::config::ModelConfig;
use crate::kv::KvCache;
use crate::model::TransformerLM;
use crate::weights::{LayerWeights, ModelWeights};

/// A symmetric per-row int8 quantized matrix.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 values.
    data: Vec<i8>,
    /// Per-row dequantization scale: `f32 ≈ i8 · scale`.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantize an f32 matrix, one scale per row.
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            scales.push(scale);
            for &v in row {
                data.push((v / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        Self {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dequantize back to f32 (for accuracy checks).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.data[r * self.cols + c]) * self.scales[r]
        })
    }

    /// Bytes used by the quantized representation.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// `x^T · M` where M is this quantized matrix (row-major, like
    /// [`tensor::ops::vecmat`]). The inner accumulation runs in f32 with the
    /// per-row scale folded into `x`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "vecmat shape mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let scaled = xr * self.scales[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yj, &q) in y.iter_mut().zip(row) {
                *yj += scaled * f32::from(q);
            }
        }
        y
    }

    /// Multi-row `X · M` over the quantized weights: the blocked-prefill
    /// analogue of [`QuantizedMatrix::vecmat`]. Each int8 weight row is
    /// decoded once per block of [`QUANT_I_BLOCK`] activation rows instead of
    /// once per row, mirroring the panel reuse of `tensor::ops::matmul_into`.
    /// Output row `i` accumulates its terms in exactly [`QuantizedMatrix::vecmat`]'s
    /// order (ascending `r`, zero `x` terms skipped), so the result is
    /// bit-identical to stacking per-row vecmats.
    ///
    /// # Panics
    /// Panics when `x.cols() != self.rows()`.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.rows, "matmul shape mismatch");
        let mut c = Matrix::zeros(x.rows(), self.cols);
        for i0 in (0..x.rows()).step_by(QUANT_I_BLOCK) {
            let i1 = (i0 + QUANT_I_BLOCK).min(x.rows());
            for r in 0..self.rows {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                let scale = self.scales[r];
                for i in i0..i1 {
                    let xr = x.row(i)[r];
                    if xr == 0.0 {
                        continue;
                    }
                    let scaled = xr * scale;
                    for (cj, &q) in c.row_mut(i).iter_mut().zip(row) {
                        *cj += scaled * f32::from(q);
                    }
                }
            }
        }
        c
    }
}

/// Activation rows per int8-row decode pass in [`QuantizedMatrix::matmul`].
pub const QUANT_I_BLOCK: usize = 8;

/// Quantized transformer weights.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    /// Embedding stays f32 (it is read row-wise, not multiplied).
    pub embed: Matrix,
    layers: Vec<QuantizedLayer>,
    final_norm: Vec<f32>,
    lm_head: QuantizedMatrix,
}

#[derive(Debug, Clone)]
struct QuantizedLayer {
    wq: QuantizedMatrix,
    wk: QuantizedMatrix,
    wv: QuantizedMatrix,
    wo: QuantizedMatrix,
    w_gate: QuantizedMatrix,
    w_up: QuantizedMatrix,
    w_down: QuantizedMatrix,
    attn_norm: Vec<f32>,
    ffn_norm: Vec<f32>,
}

impl QuantizedWeights {
    /// Quantize full-precision weights.
    pub fn quantize(w: &ModelWeights) -> Self {
        Self {
            embed: w.embed.clone(),
            layers: w
                .layers
                .iter()
                .map(|l| QuantizedLayer {
                    wq: QuantizedMatrix::quantize(&l.wq),
                    wk: QuantizedMatrix::quantize(&l.wk),
                    wv: QuantizedMatrix::quantize(&l.wv),
                    wo: QuantizedMatrix::quantize(&l.wo),
                    w_gate: QuantizedMatrix::quantize(&l.w_gate),
                    w_up: QuantizedMatrix::quantize(&l.w_up),
                    w_down: QuantizedMatrix::quantize(&l.w_down),
                    attn_norm: l.attn_norm.clone(),
                    ffn_norm: l.ffn_norm.clone(),
                })
                .collect(),
            final_norm: w.final_norm.clone(),
            lm_head: QuantizedMatrix::quantize(&w.lm_head),
        }
    }

    /// Reconstruct (dequantized) f32 weights — handy for reusing the f32
    /// engine while measuring quantization error.
    pub fn dequantize(&self) -> ModelWeights {
        ModelWeights {
            embed: self.embed.clone(),
            layers: self
                .layers
                .iter()
                .map(|l| LayerWeights {
                    wq: l.wq.dequantize(),
                    wk: l.wk.dequantize(),
                    wv: l.wv.dequantize(),
                    wo: l.wo.dequantize(),
                    w_gate: l.w_gate.dequantize(),
                    w_up: l.w_up.dequantize(),
                    w_down: l.w_down.dequantize(),
                    attn_norm: l.attn_norm.clone(),
                    ffn_norm: l.ffn_norm.clone(),
                })
                .collect(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.dequantize(),
        }
    }

    /// Total bytes of the quantized weight matrices (embedding excluded —
    /// it is shared with the f32 representation).
    pub fn quantized_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.wq.memory_bytes()
                    + l.wk.memory_bytes()
                    + l.wv.memory_bytes()
                    + l.wo.memory_bytes()
                    + l.w_gate.memory_bytes()
                    + l.w_up.memory_bytes()
                    + l.w_down.memory_bytes()
            })
            .sum::<usize>()
            + self.lm_head.memory_bytes()
    }
}

/// A quantized model: runs the f32 engine over dequantized weights. The
/// dequantization happens once at load, so per-token cost matches the f32
/// engine while storage/transport uses the int8 form.
pub struct QuantizedLM {
    inner: TransformerLM,
}

impl QuantizedLM {
    /// Build from a config and quantized weights.
    pub fn new(cfg: ModelConfig, weights: &QuantizedWeights) -> Self {
        Self {
            inner: TransformerLM::new(cfg, weights.dequantize()),
        }
    }

    /// Forward one token (see [`TransformerLM::forward_token`]).
    pub fn forward_token(&self, token: TokenId, cache: &mut KvCache) -> Vec<f32> {
        self.inner.forward_token(token, cache)
    }

    /// Prefill a prompt (see [`TransformerLM::prefill`]).
    pub fn prefill(&self, prompt: &[TokenId], cache: &mut KvCache) -> Vec<f32> {
        self.inner.prefill(prompt, cache)
    }

    /// Fresh KV cache.
    pub fn new_cache(&self) -> KvCache {
        self.inner.new_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init::{seeded_rng, xavier_uniform};
    use tensor::ops::vecmat;

    #[test]
    fn roundtrip_error_is_bounded_by_scale() {
        let mut rng = seeded_rng(3);
        let m = xavier_uniform(16, 24, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        // max error per element is half a quantization step
        for r in 0..m.rows() {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let step = max_abs / 127.0;
            for c in 0..m.cols() {
                assert!(
                    (m.get(r, c) - back.get(r, c)).abs() <= step * 0.5 + 1e-7,
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn quantized_vecmat_tracks_f32() {
        let mut rng = seeded_rng(5);
        let m = xavier_uniform(32, 48, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| ((i * 13) % 7) as f32 * 0.1 - 0.3).collect();
        let exact = vecmat(&x, &m);
        let approx = q.vecmat(&x);
        let norm: f32 = exact.iter().map(|v| v * v).sum::<f32>().sqrt();
        let err: f32 = exact
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(err / norm.max(1e-6) < 0.02, "relative error {}", err / norm);
    }

    #[test]
    fn quantized_matmul_rows_are_bit_identical_to_vecmat() {
        // Shapes straddle the QUANT_I_BLOCK boundary; zeros exercise the
        // zero-skip path on both sides.
        let mut rng = seeded_rng(9);
        for (rows, k, n) in [
            (1usize, 5usize, 3usize),
            (7, 16, 9),
            (9, 24, 17),
            (17, 8, 4),
        ] {
            let m = xavier_uniform(k, n, &mut rng);
            let q = QuantizedMatrix::quantize(&m);
            let x = Matrix::from_fn(rows, k, |r, c| {
                if (r + c) % 7 == 0 {
                    0.0
                } else {
                    ((r * 19 + c * 5) % 13) as f32 * 0.21 - 1.2
                }
            });
            let prod = q.matmul(&x);
            for i in 0..rows {
                assert_eq!(
                    prod.row(i),
                    q.vecmat(x.row(i)).as_slice(),
                    "({rows},{k},{n}) row {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn quantized_matmul_shape_checked() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(4, 4));
        q.matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let m = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.vecmat(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn memory_shrinks_roughly_4x() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(64, 64, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let f32_bytes = 64 * 64 * 4;
        assert!(
            q.memory_bytes() * 3 < f32_bytes,
            "{} vs {f32_bytes}",
            q.memory_bytes()
        );
    }

    #[test]
    fn quantized_model_agrees_with_f32_on_argmax() {
        let cfg = ModelConfig::tiny(48);
        let f32_weights = ModelWeights::synthetic(&cfg, 11);
        let f32_model = TransformerLM::new(cfg.clone(), f32_weights.clone());
        let q = QuantizedWeights::quantize(&f32_weights);
        let q_model = QuantizedLM::new(cfg, &q);

        let prompt = [3u32, 1, 4, 1, 5];
        let mut c1 = f32_model.new_cache();
        let mut c2 = q_model.new_cache();
        let l1 = f32_model.prefill(&prompt, &mut c1);
        let l2 = q_model.prefill(&prompt, &mut c2);
        // logits drift slightly but the prediction should usually agree and
        // the logit vectors must be close
        let max_diff = l1
            .iter()
            .zip(&l2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let spread = l1.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v))
            - l1.iter().fold(f32::INFINITY, |a, &v| a.min(v));
        assert!(
            max_diff < 0.25 * spread,
            "max_diff {max_diff} vs spread {spread}"
        );
    }

    #[test]
    fn full_model_quantized_bytes_reported() {
        let cfg = ModelConfig::tiny(48);
        let w = ModelWeights::synthetic(&cfg, 1);
        let q = QuantizedWeights::quantize(&w);
        assert!(q.quantized_bytes() > 0);
        // quantized matrices ≈ 1/4 the f32 bytes of the same matrices
        let f32_matrix_bytes = (w.num_parameters()
            - w.embed.rows() * w.embed.cols() // embed not quantized
            - w.final_norm.len()
            - w.layers.iter().map(|l| l.attn_norm.len() + l.ffn_norm.len()).sum::<usize>())
            * 4;
        assert!(q.quantized_bytes() * 3 < f32_matrix_bytes);
    }
}
