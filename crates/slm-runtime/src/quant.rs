//! Int8 weight quantization and the int8 inference engine.
//!
//! MiniCPM's selling point is edge deployment; on-device SLMs ship with
//! quantized weights, and on CPU the verifier's speed is bounded by weight
//! memory bandwidth — which int8 cuts 4×. This module provides:
//!
//! - [`QuantizedMatrix`]: the original per-*input*-row symmetric scheme with
//!   an f32-accumulating matvec, kept as the storage/round-trip reference
//!   (its error bound is pinned by a proptest suite).
//! - [`QuantizedWeights`]: full-model weights whose projections are
//!   [`tensor::Int8Matrix`] — per-*output*-row scales picked by a calibration
//!   pass, the layout the integer kernels consume.
//! - [`QuantizedLM`]: a transformer that **computes in int8**. Every Q/K/V,
//!   attention-output, FFN and LM-head projection runs the exact-integer
//!   kernels; RoPE, softmax, RMSNorm, residuals and the KV cache stay f32.
//!   It implements [`InferenceModel`], so blocked prefill, `PrefillStream`
//!   continuous batching, and the paged `KvStore` machinery from the f32
//!   engine drive it unchanged — and because the integer accumulation is
//!   exact in a fixed order, `(seed, config) → logits` is bitwise
//!   reproducible, same as the f32 path.

use tensor::{Int8Matrix, Matrix};

use crate::bpe::TokenId;
use crate::config::{ModelConfig, Precision};
use crate::kv::{KvCache, KvStore};
use crate::model::{finish_logits_core, forward_block_core, forward_token_core, InferenceModel};
use crate::rope::RopeTable;
use crate::weights::{LayerView, LayerWeights, ModelWeights};

/// A symmetric per-row int8 quantized matrix.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 values.
    data: Vec<i8>,
    /// Per-row dequantization scale: `f32 ≈ i8 · scale`.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantize an f32 matrix, one scale per row.
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            scales.push(scale);
            for &v in row {
                data.push((v / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        Self {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dequantize back to f32 (for accuracy checks).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.data[r * self.cols + c]) * self.scales[r]
        })
    }

    /// Bytes used by the quantized representation.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// `x^T · M` where M is this quantized matrix (row-major, like
    /// [`tensor::ops::vecmat`]). The inner accumulation runs in f32 with the
    /// per-row scale folded into `x`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "vecmat shape mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let scaled = xr * self.scales[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yj, &q) in y.iter_mut().zip(row) {
                *yj += scaled * f32::from(q);
            }
        }
        y
    }

    /// Multi-row `X · M` over the quantized weights: the blocked-prefill
    /// analogue of [`QuantizedMatrix::vecmat`]. Each int8 weight row is
    /// decoded once per block of [`QUANT_I_BLOCK`] activation rows instead of
    /// once per row, mirroring the panel reuse of `tensor::ops::matmul_into`.
    /// Output row `i` accumulates its terms in exactly [`QuantizedMatrix::vecmat`]'s
    /// order (ascending `r`, zero `x` terms skipped), so the result is
    /// bit-identical to stacking per-row vecmats.
    ///
    /// # Panics
    /// Panics when `x.cols() != self.rows()`.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.rows, "matmul shape mismatch");
        let mut c = Matrix::zeros(x.rows(), self.cols);
        for i0 in (0..x.rows()).step_by(QUANT_I_BLOCK) {
            let i1 = (i0 + QUANT_I_BLOCK).min(x.rows());
            for r in 0..self.rows {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                let scale = self.scales[r];
                for i in i0..i1 {
                    let xr = x.row(i)[r];
                    if xr == 0.0 {
                        continue;
                    }
                    let scaled = xr * scale;
                    for (cj, &q) in c.row_mut(i).iter_mut().zip(row) {
                        *cj += scaled * f32::from(q);
                    }
                }
            }
        }
        c
    }
}

/// Activation rows per int8-row decode pass in [`QuantizedMatrix::matmul`].
pub const QUANT_I_BLOCK: usize = 8;

/// Quantized transformer weights: int8 projections with per-output-row
/// scales, everything else f32.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    /// Embedding stays f32 (it is read row-wise, not multiplied).
    pub embed: Matrix,
    layers: Vec<QuantizedLayer>,
    final_norm: Vec<f32>,
    lm_head: Int8Matrix,
}

/// One transformer block's weights in the int8 layout. Norm gains stay f32.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    wq: Int8Matrix,
    wk: Int8Matrix,
    wv: Int8Matrix,
    wo: Int8Matrix,
    w_gate: Int8Matrix,
    w_up: Int8Matrix,
    w_down: Int8Matrix,
    attn_norm: Vec<f32>,
    ffn_norm: Vec<f32>,
}

impl LayerView for QuantizedLayer {
    type Lin = Int8Matrix;

    fn wq(&self) -> &Int8Matrix {
        &self.wq
    }
    fn wk(&self) -> &Int8Matrix {
        &self.wk
    }
    fn wv(&self) -> &Int8Matrix {
        &self.wv
    }
    fn wo(&self) -> &Int8Matrix {
        &self.wo
    }
    fn w_gate(&self) -> &Int8Matrix {
        &self.w_gate
    }
    fn w_up(&self) -> &Int8Matrix {
        &self.w_up
    }
    fn w_down(&self) -> &Int8Matrix {
        &self.w_down
    }
    fn attn_norm(&self) -> &[f32] {
        &self.attn_norm
    }
    fn ffn_norm(&self) -> &[f32] {
        &self.ffn_norm
    }
}

impl QuantizedWeights {
    /// The calibration pass: quantize full-precision weights, picking one
    /// scale per output channel of every projection (`max_abs / 127` over
    /// that channel's inputs — see [`Int8Matrix::calibrate`]).
    pub fn quantize(w: &ModelWeights) -> Self {
        Self {
            embed: w.embed.clone(),
            layers: w
                .layers
                .iter()
                .map(|l| QuantizedLayer {
                    wq: Int8Matrix::calibrate(&l.wq),
                    wk: Int8Matrix::calibrate(&l.wk),
                    wv: Int8Matrix::calibrate(&l.wv),
                    wo: Int8Matrix::calibrate(&l.wo),
                    w_gate: Int8Matrix::calibrate(&l.w_gate),
                    w_up: Int8Matrix::calibrate(&l.w_up),
                    w_down: Int8Matrix::calibrate(&l.w_down),
                    attn_norm: l.attn_norm.clone(),
                    ffn_norm: l.ffn_norm.clone(),
                })
                .collect(),
            final_norm: w.final_norm.clone(),
            lm_head: Int8Matrix::calibrate(&w.lm_head),
        }
    }

    /// Reconstruct (dequantized) f32 weights — handy for reusing the f32
    /// engine while measuring quantization error.
    pub fn dequantize(&self) -> ModelWeights {
        ModelWeights {
            embed: self.embed.clone(),
            layers: self
                .layers
                .iter()
                .map(|l| LayerWeights {
                    wq: l.wq.dequantize(),
                    wk: l.wk.dequantize(),
                    wv: l.wv.dequantize(),
                    wo: l.wo.dequantize(),
                    w_gate: l.w_gate.dequantize(),
                    w_up: l.w_up.dequantize(),
                    w_down: l.w_down.dequantize(),
                    attn_norm: l.attn_norm.clone(),
                    ffn_norm: l.ffn_norm.clone(),
                })
                .collect(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.dequantize(),
        }
    }

    /// Actual bytes of the quantized projections: i8 payload **plus** the f32
    /// scales (embedding excluded — it is shared with the f32 representation
    /// and never quantized).
    pub fn quantized_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.wq.memory_bytes()
                    + l.wk.memory_bytes()
                    + l.wv.memory_bytes()
                    + l.wo.memory_bytes()
                    + l.w_gate.memory_bytes()
                    + l.w_up.memory_bytes()
                    + l.w_down.memory_bytes()
            })
            .sum::<usize>()
            + self.lm_head.memory_bytes()
    }

    /// Total resident storage of this representation: the quantized
    /// projections ([`QuantizedWeights::quantized_bytes`]) plus the f32
    /// embedding table and every norm gain.
    pub fn memory_bytes(&self) -> usize {
        let f32_bytes = std::mem::size_of::<f32>();
        let norm_bytes: usize = self
            .layers
            .iter()
            .map(|l| (l.attn_norm.len() + l.ffn_norm.len()) * f32_bytes)
            .sum();
        self.quantized_bytes()
            + self.embed.rows() * self.embed.cols() * f32_bytes
            + norm_bytes
            + self.final_norm.len() * f32_bytes
    }

    /// Largest calibrated weight scale across every projection — the summary
    /// statistic `quant_sweep` reports for the calibration pass (big scales
    /// mean coarse quantization steps and hence larger worst-case error).
    pub fn max_weight_scale(&self) -> f32 {
        self.layers
            .iter()
            .flat_map(|l| [&l.wq, &l.wk, &l.wv, &l.wo, &l.w_gate, &l.w_up, &l.w_down])
            .chain(std::iter::once(&self.lm_head))
            .map(|m| m.max_scale())
            .fold(0.0f32, f32::max)
    }
}

/// A transformer that computes in int8.
///
/// Runs the *same* shared forward cores as [`crate::model::TransformerLM`]
/// (embedding lookup, RMSNorm, RoPE, the causal attention core, SwiGLU,
/// residuals — all f32), but every projection goes through the exact-integer
/// [`Int8Matrix`] kernels. Implements [`InferenceModel`], so the blocked
/// prefill, [`crate::model::PrefillStream`] continuous batching, and any
/// [`KvStore`] (contiguous or paged) work unchanged.
#[derive(Debug, Clone)]
pub struct QuantizedLM {
    cfg: ModelConfig,
    embed: Matrix,
    layers: Vec<QuantizedLayer>,
    final_norm: Vec<f32>,
    lm_head: Int8Matrix,
    rope: RopeTable,
}

impl QuantizedLM {
    /// Build from a config and quantized weights. The stored config's
    /// `precision` is normalized to [`Precision::Int8`] — this engine always
    /// computes in int8 regardless of what the caller's knob said.
    ///
    /// # Panics
    /// Panics if the config is invalid, naming the failed constraint.
    pub fn new(cfg: ModelConfig, weights: &QuantizedWeights) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model config: {e}");
        }
        let cfg = cfg.with_precision(Precision::Int8);
        let rope = RopeTable::new(cfg.head_dim(), cfg.max_seq_len, cfg.rope_theta);
        Self {
            cfg,
            embed: weights.embed.clone(),
            layers: weights.layers.clone(),
            final_norm: weights.final_norm.clone(),
            lm_head: weights.lm_head.clone(),
            rope,
        }
    }

    /// Convenience: calibrate-and-build from synthetic weights. Bitwise
    /// reproducible from `(cfg, seed)` — same seed, same config, same logits.
    pub fn synthetic(cfg: ModelConfig, seed: u64) -> Self {
        let weights = QuantizedWeights::quantize(&ModelWeights::synthetic(&cfg, seed));
        Self::new(cfg, &weights)
    }

    /// Model configuration (`precision` is always [`Precision::Int8`]).
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Forward one token (see [`InferenceModel::forward_token`]).
    pub fn forward_token<C: KvStore>(&self, token: TokenId, cache: &mut C) -> Vec<f32> {
        InferenceModel::forward_token(self, token, cache)
    }

    /// Blocked-GEMM prefill (see [`InferenceModel::prefill`]).
    pub fn prefill<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        InferenceModel::prefill(self, prompt, cache)
    }

    /// K/V-only prefill for prefix snapshotting
    /// (see [`InferenceModel::prefill_cache_only`]).
    pub fn prefill_cache_only<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) {
        InferenceModel::prefill_cache_only(self, prompt, cache)
    }

    /// Token-at-a-time prefill, the parity reference
    /// (see [`InferenceModel::prefill_sequential`]).
    pub fn prefill_sequential<C: KvStore>(&self, prompt: &[TokenId], cache: &mut C) -> Vec<f32> {
        InferenceModel::prefill_sequential(self, prompt, cache)
    }

    /// Fresh KV cache sized for the full context window.
    pub fn new_cache(&self) -> KvCache {
        InferenceModel::new_cache(self)
    }

    /// Fresh KV cache with exactly `max_seq` positions (clamped).
    pub fn new_cache_with_capacity(&self, max_seq: usize) -> KvCache {
        InferenceModel::new_cache_with_capacity(self, max_seq)
    }
}

impl InferenceModel for QuantizedLM {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward_token<C: KvStore>(&self, token: TokenId, cache: &mut C) -> Vec<f32> {
        let x = forward_token_core(
            &self.cfg,
            &self.embed,
            &self.layers,
            &self.rope,
            token,
            cache,
        );
        self.finish_logits(&x)
    }

    fn forward_block_states<C: KvStore>(&self, tokens: &[TokenId], cache: &mut C) -> Matrix {
        forward_block_core(
            &self.cfg,
            &self.embed,
            &self.layers,
            &self.rope,
            tokens,
            cache,
        )
    }

    fn finish_logits(&self, last_residual: &[f32]) -> Vec<f32> {
        finish_logits_core(&self.cfg, &self.final_norm, &self.lm_head, last_residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PrefillStream, TransformerLM};
    use tensor::init::{seeded_rng, xavier_uniform};
    use tensor::ops::vecmat;

    #[test]
    fn roundtrip_error_is_bounded_by_scale() {
        let mut rng = seeded_rng(3);
        let m = xavier_uniform(16, 24, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        // max error per element is half a quantization step
        for r in 0..m.rows() {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let step = max_abs / 127.0;
            for c in 0..m.cols() {
                assert!(
                    (m.get(r, c) - back.get(r, c)).abs() <= step * 0.5 + 1e-7,
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn quantized_vecmat_tracks_f32() {
        let mut rng = seeded_rng(5);
        let m = xavier_uniform(32, 48, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| ((i * 13) % 7) as f32 * 0.1 - 0.3).collect();
        let exact = vecmat(&x, &m);
        let approx = q.vecmat(&x);
        let norm: f32 = exact.iter().map(|v| v * v).sum::<f32>().sqrt();
        let err: f32 = exact
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(err / norm.max(1e-6) < 0.02, "relative error {}", err / norm);
    }

    #[test]
    fn quantized_matmul_rows_are_bit_identical_to_vecmat() {
        // Shapes straddle the QUANT_I_BLOCK boundary; zeros exercise the
        // zero-skip path on both sides.
        let mut rng = seeded_rng(9);
        for (rows, k, n) in [
            (1usize, 5usize, 3usize),
            (7, 16, 9),
            (9, 24, 17),
            (17, 8, 4),
        ] {
            let m = xavier_uniform(k, n, &mut rng);
            let q = QuantizedMatrix::quantize(&m);
            let x = Matrix::from_fn(rows, k, |r, c| {
                if (r + c) % 7 == 0 {
                    0.0
                } else {
                    ((r * 19 + c * 5) % 13) as f32 * 0.21 - 1.2
                }
            });
            let prod = q.matmul(&x);
            for i in 0..rows {
                assert_eq!(
                    prod.row(i),
                    q.vecmat(x.row(i)).as_slice(),
                    "({rows},{k},{n}) row {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn quantized_matmul_shape_checked() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(4, 4));
        q.matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn zero_matrix_quantizes_safely() {
        let m = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.vecmat(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn memory_shrinks_roughly_4x() {
        let mut rng = seeded_rng(7);
        let m = xavier_uniform(64, 64, &mut rng);
        let q = QuantizedMatrix::quantize(&m);
        let f32_bytes = 64 * 64 * 4;
        assert!(
            q.memory_bytes() * 3 < f32_bytes,
            "{} vs {f32_bytes}",
            q.memory_bytes()
        );
    }

    #[test]
    fn quantized_model_agrees_with_f32_on_argmax() {
        let cfg = ModelConfig::tiny(48);
        let f32_weights = ModelWeights::synthetic(&cfg, 11);
        let f32_model = TransformerLM::new(cfg.clone(), f32_weights.clone());
        let q = QuantizedWeights::quantize(&f32_weights);
        let q_model = QuantizedLM::new(cfg, &q);

        let prompt = [3u32, 1, 4, 1, 5];
        let mut c1 = f32_model.new_cache();
        let mut c2 = q_model.new_cache();
        let l1 = f32_model.prefill(&prompt, &mut c1);
        let l2 = q_model.prefill(&prompt, &mut c2);
        // logits drift slightly but the prediction should usually agree and
        // the logit vectors must be close
        let max_diff = l1
            .iter()
            .zip(&l2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let spread = l1.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v))
            - l1.iter().fold(f32::INFINITY, |a, &v| a.min(v));
        assert!(
            max_diff < 0.25 * spread,
            "max_diff {max_diff} vs spread {spread}"
        );
    }

    #[test]
    fn int8_blocked_prefill_is_bit_identical_to_sequential() {
        // The int8 analogue of the f32 GEMM-prefill parity test: blocked and
        // token-at-a-time forwards must agree bitwise because the integer
        // accumulation is exact in a fixed order.
        let m = QuantizedLM::synthetic(ModelConfig::tiny(48), 11);
        for len in [1usize, 5, 63, 64, 65, 130] {
            let prompt: Vec<TokenId> = (0..len).map(|i| ((i * 7 + 3) % 48) as TokenId).collect();
            let mut c_blk = m.new_cache();
            let mut c_seq = m.new_cache();
            assert_eq!(
                m.prefill(&prompt, &mut c_blk),
                m.prefill_sequential(&prompt, &mut c_seq),
                "len {len}"
            );
        }
    }

    #[test]
    fn int8_prefill_stream_matches_direct_prefill() {
        // Continuous batching drives QuantizedLM through the same generic
        // PrefillStream as the f32 engine; stepping must reproduce prefill.
        let m = QuantizedLM::synthetic(ModelConfig::tiny(48), 5);
        let prompt: Vec<TokenId> = (0..130).map(|i| ((i * 11 + 2) % 48) as TokenId).collect();
        let mut c = m.new_cache();
        let want = m.prefill(&prompt, &mut c);
        let stream = PrefillStream::new(&m, prompt, m.new_cache());
        let (got, cache) = stream.finish();
        assert_eq!(want, got);
        assert_eq!(cache.len(), 130);
    }

    #[test]
    fn int8_engine_is_bitwise_reproducible_from_seed_and_config() {
        let a = QuantizedLM::synthetic(ModelConfig::tiny(48), 9);
        let b = QuantizedLM::synthetic(ModelConfig::tiny(48), 9);
        let prompt = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let mut ca = a.new_cache();
        let mut cb = b.new_cache();
        assert_eq!(a.prefill(&prompt, &mut ca), b.prefill(&prompt, &mut cb));
    }

    #[test]
    fn quantized_lm_normalizes_precision_to_int8() {
        let m = QuantizedLM::synthetic(ModelConfig::tiny(48), 1);
        assert_eq!(m.config().precision, Precision::Int8);
    }

    #[test]
    fn memory_bytes_exceeds_quantized_bytes_by_f32_parts() {
        let cfg = ModelConfig::tiny(48);
        let q = QuantizedWeights::quantize(&ModelWeights::synthetic(&cfg, 1));
        let f32b = std::mem::size_of::<f32>();
        let expected_extra = cfg.vocab_size * cfg.hidden * f32b // embed
            + cfg.n_layers * 2 * cfg.hidden * f32b             // per-layer norms
            + cfg.hidden * f32b; // final norm
        assert_eq!(q.memory_bytes(), q.quantized_bytes() + expected_extra);
        assert!(q.max_weight_scale() > 0.0);
    }

    #[test]
    fn full_model_quantized_bytes_reported() {
        let cfg = ModelConfig::tiny(48);
        let w = ModelWeights::synthetic(&cfg, 1);
        let q = QuantizedWeights::quantize(&w);
        assert!(q.quantized_bytes() > 0);
        // quantized matrices ≈ 1/4 the f32 bytes of the same matrices
        let f32_matrix_bytes = (w.num_parameters()
            - w.embed.rows() * w.embed.cols() // embed not quantized
            - w.final_norm.len()
            - w.layers.iter().map(|l| l.attn_norm.len() + l.ffn_norm.len()).sum::<usize>())
            * 4;
        assert!(q.quantized_bytes() * 3 < f32_matrix_bytes);
    }
}
