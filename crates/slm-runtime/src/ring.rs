//! Consistent-hash slot ring for the sharded verification cluster.
//!
//! [`HashRing`] maps request keys to shard ids with the two properties the
//! cluster layer needs:
//!
//! 1. **Locality** — a key always hashes to the same slot, and a slot moves
//!    between shards only when membership changes, so per-shard prefix and
//!    verification caches stay warm across unrelated topology changes.
//! 2. **Bounded rebalancing** — the ring is a fixed table of `S` slots
//!    (Redis-cluster style) whose ownership is *stateful*: adding the
//!    `N`-th shard moves exactly `⌊S/N⌋` slots (all to the new shard, each
//!    taken from the currently most-loaded shard), and removing a shard
//!    moves exactly that shard's slots (spread over the least-loaded
//!    survivors). Keys on unaffected slots never move, which is the exact
//!    form of the "≤ K/N keys move" guarantee: slot movement is bounded by
//!    `⌈S/N⌉` and keys follow their slots.
//!
//! Shard ownership stays balanced within one slot after every operation, so
//! no shard can silently accumulate a disproportionate key range.
//!
//! Everything is a pure function of `(seed, operation sequence)`: no
//! randomness, no wall clock, no iteration-order dependence — the same
//! discipline as [`crate::faults`].

use std::collections::BTreeMap;
use std::fmt;

use crate::sim::{fnv1a, splitmix64};

/// Default slot count. Large enough that per-slot balance (±1 slot) keeps
/// per-shard key load within a few percent at cluster sizes of interest.
pub const DEFAULT_RING_SLOTS: usize = 512;

/// Membership errors. Typed so callers can distinguish a topology bug from
/// an empty ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// `add_shard` with an id already on the ring.
    DuplicateShard(u32),
    /// `remove_shard` with an id not on the ring.
    UnknownShard(u32),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::DuplicateShard(s) => write!(f, "shard {s} is already on the ring"),
            RingError::UnknownShard(s) => write!(f, "shard {s} is not on the ring"),
        }
    }
}

impl std::error::Error for RingError {}

/// Which membership operation a [`RebalanceReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOp {
    /// A shard joined the ring.
    Added,
    /// A shard left the ring.
    Removed,
}

/// What a membership change actually moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The shard that joined or left.
    pub shard: u32,
    /// The operation.
    pub op: RingOp,
    /// Slots whose owner changed.
    pub moved_slots: usize,
    /// Total slots on the ring.
    pub slot_count: usize,
    /// Shard count after the operation.
    pub shards_after: usize,
}

impl RebalanceReport {
    /// Fraction of the keyspace that moved.
    pub fn moved_fraction(&self) -> f64 {
        self.moved_slots as f64 / self.slot_count.max(1) as f64
    }

    /// The bounded-rebalance contract, in slot space:
    /// adding the `N`-th shard moves at most `⌊S/N⌋` slots; removing one of
    /// `N` shards moves at most `⌈S/N⌉` (the departing shard's balanced
    /// ownership). The cluster asserts this after every topology change.
    pub fn within_bound(&self) -> bool {
        match self.op {
            RingOp::Added => self.moved_slots <= self.slot_count / self.shards_after.max(1),
            RingOp::Removed => self.moved_slots <= self.slot_count.div_ceil(self.shards_after + 1),
        }
    }
}

/// A fixed-slot consistent-hash ring with stateful, minimally-moving slot
/// ownership. See the module docs for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct HashRing {
    seed: u64,
    /// Slot → owning shard (`None` only while the ring is empty).
    slots: Vec<Option<u32>>,
    /// Shard → owned slot indices, each ascending. Source of truth for
    /// load accounting; `slots` is the routing view of the same state.
    owned: BTreeMap<u32, Vec<usize>>,
}

impl HashRing {
    /// An empty ring of `slot_count` slots (clamped to at least 1),
    /// hashing keys with `seed`.
    pub fn new(seed: u64, slot_count: usize) -> Self {
        Self {
            seed,
            slots: vec![None; slot_count.max(1)],
            owned: BTreeMap::new(),
        }
    }

    /// A ring pre-populated with shards `0..shards`.
    pub fn with_shards(seed: u64, slot_count: usize, shards: u32) -> Self {
        let mut ring = Self::new(seed, slot_count);
        for s in 0..shards {
            // ids 0..shards are distinct by construction
            let _ = ring.add_shard(s);
        }
        ring
    }

    /// Total slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        self.owned.len()
    }

    /// Whether any shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.owned.is_empty()
    }

    /// Member shard ids, ascending.
    pub fn shards(&self) -> Vec<u32> {
        self.owned.keys().copied().collect()
    }

    /// Whether `shard` is on the ring.
    pub fn contains(&self, shard: u32) -> bool {
        self.owned.contains_key(&shard)
    }

    /// Slots currently owned by `shard` (0 for non-members).
    pub fn load(&self, shard: u32) -> usize {
        self.owned.get(&shard).map_or(0, Vec::len)
    }

    /// The slot `key` hashes to.
    pub fn key_slot(&self, key: &str) -> usize {
        (splitmix64(fnv1a(self.seed, &[key])) % self.slots.len() as u64) as usize
    }

    /// Owner of `slot`, if any.
    pub fn slot_owner(&self, slot: usize) -> Option<u32> {
        self.slots.get(slot).copied().flatten()
    }

    /// The shard responsible for `key` (`None` on an empty ring).
    pub fn shard_for(&self, key: &str) -> Option<u32> {
        self.slots[self.key_slot(key)]
    }

    /// The first `extra + 1` distinct shards encountered walking the ring
    /// forward from `key`'s slot: the primary first, then the successor
    /// shards a router spills or replicates to. Shorter than `extra + 1`
    /// when the ring has fewer shards; the successor set is disjoint from
    /// the primary by construction.
    pub fn route(&self, key: &str, extra: usize) -> Vec<u32> {
        let want = extra.saturating_add(1).min(self.owned.len());
        let mut out: Vec<u32> = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let start = self.key_slot(key);
        for i in 0..self.slots.len() {
            if let Some(owner) = self.slots[(start + i) % self.slots.len()] {
                if !out.contains(&owner) {
                    out.push(owner);
                    if out.len() == want {
                        break;
                    }
                }
            }
        }
        out
    }

    /// The next distinct shard after `key`'s primary — where an overloaded
    /// primary spills. `None` when fewer than two shards are up.
    pub fn spill_target(&self, key: &str) -> Option<u32> {
        self.route(key, 1).get(1).copied()
    }

    /// The shard that inherits most of `shard`'s keyspace if it leaves: for
    /// each slot `shard` owns, walk forward to the next slot owned by a
    /// different shard and tally the owner; the most frequent successor
    /// wins, ties broken by smallest id. This is the natural cross-shard
    /// cache-replication target — it is where failed-over keys re-route.
    /// `None` when `shard` is unknown or has no distinct successor.
    pub fn successor_of(&self, shard: u32) -> Option<u32> {
        let owned = self.owned.get(&shard)?;
        let mut tally: BTreeMap<u32, usize> = BTreeMap::new();
        for &slot in owned {
            for i in 1..self.slots.len() {
                if let Some(owner) = self.slots[(slot + i) % self.slots.len()] {
                    if owner != shard {
                        *tally.entry(owner).or_insert(0) += 1;
                        break;
                    }
                }
            }
        }
        tally
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(s, _)| s)
    }

    /// Add `shard`, stealing exactly `⌊S/N⌋` slots (N = new shard count)
    /// from the most-loaded members, highest slot index first. The first
    /// shard takes the whole ring.
    ///
    /// # Errors
    /// [`RingError::DuplicateShard`] if `shard` is already a member.
    pub fn add_shard(&mut self, shard: u32) -> Result<RebalanceReport, RingError> {
        if self.owned.contains_key(&shard) {
            return Err(RingError::DuplicateShard(shard));
        }
        let moved_slots = if self.owned.is_empty() {
            for slot in &mut self.slots {
                *slot = Some(shard);
            }
            self.owned.insert(shard, (0..self.slots.len()).collect());
            self.slots.len()
        } else {
            self.owned.insert(shard, Vec::new());
            let target = self.slots.len() / self.owned.len();
            for _ in 0..target {
                let Some(donor) = self.most_loaded_excluding(shard) else {
                    break;
                };
                let Some(slot) = self.owned.get_mut(&donor).and_then(Vec::pop) else {
                    break;
                };
                self.assign(slot, shard);
            }
            self.owned.get(&shard).map_or(0, Vec::len)
        };
        let report = RebalanceReport {
            shard,
            op: RingOp::Added,
            moved_slots,
            slot_count: self.slots.len(),
            shards_after: self.owned.len(),
        };
        debug_assert!(report.within_bound(), "add rebalance bound: {report:?}");
        Ok(report)
    }

    /// Remove `shard`, handing each of its slots (ascending index order) to
    /// the least-loaded survivor. Only the departing shard's keys move.
    ///
    /// # Errors
    /// [`RingError::UnknownShard`] if `shard` is not a member.
    pub fn remove_shard(&mut self, shard: u32) -> Result<RebalanceReport, RingError> {
        let Some(freed) = self.owned.remove(&shard) else {
            return Err(RingError::UnknownShard(shard));
        };
        let moved_slots = freed.len();
        for slot in freed {
            match self.least_loaded() {
                Some(heir) => self.assign(slot, heir),
                None => self.slots[slot] = None,
            }
        }
        let report = RebalanceReport {
            shard,
            op: RingOp::Removed,
            moved_slots,
            slot_count: self.slots.len(),
            shards_after: self.owned.len(),
        };
        debug_assert!(report.within_bound(), "remove rebalance bound: {report:?}");
        Ok(report)
    }

    /// Point `slot` at `owner`, keeping the ownership index sorted.
    fn assign(&mut self, slot: usize, owner: u32) {
        self.slots[slot] = Some(owner);
        if let Some(list) = self.owned.get_mut(&owner) {
            if let Err(pos) = list.binary_search(&slot) {
                list.insert(pos, slot);
            }
        }
    }

    /// Most-loaded member other than `except` (ties → smallest id).
    fn most_loaded_excluding(&self, except: u32) -> Option<u32> {
        self.owned
            .iter()
            .filter(|(&s, _)| s != except)
            .max_by(|(a, la), (b, lb)| la.len().cmp(&lb.len()).then(b.cmp(a)))
            .map(|(&s, _)| s)
    }

    /// Least-loaded member (ties → smallest id).
    fn least_loaded(&self) -> Option<u32> {
        self.owned
            .iter()
            .min_by(|(a, la), (b, lb)| la.len().cmp(&lb.len()).then(a.cmp(b)))
            .map(|(&s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("question-{i}")).collect()
    }

    fn primaries(ring: &HashRing, keys: &[String]) -> Vec<Option<u32>> {
        keys.iter().map(|k| ring.shard_for(k.as_str())).collect()
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(1, 64);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for("q"), None);
        assert_eq!(ring.route("q", 2), Vec::<u32>::new());
        assert_eq!(ring.spill_target("q"), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::with_shards(1, 64, 1);
        assert_eq!(ring.load(0), 64);
        for k in keys(50) {
            assert_eq!(ring.shard_for(&k), Some(0));
        }
    }

    #[test]
    fn successor_is_stable_and_distinct() {
        let ring = HashRing::with_shards(7, 256, 4);
        for s in ring.shards() {
            let succ = ring.successor_of(s).expect("4-shard ring has successors");
            assert_ne!(succ, s, "successor must be a different shard");
            assert_eq!(ring.successor_of(s), Some(succ), "deterministic");
        }
        let solo = HashRing::with_shards(7, 64, 1);
        assert_eq!(solo.successor_of(0), None, "no distinct successor");
        assert_eq!(solo.successor_of(9), None, "unknown shard");
    }

    #[test]
    fn key_to_slot_is_stable_and_seeded() {
        let a = HashRing::with_shards(7, 256, 4);
        let b = HashRing::with_shards(7, 256, 4);
        let c = HashRing::with_shards(8, 256, 4);
        let ks = keys(100);
        assert_eq!(
            primaries(&a, &ks),
            primaries(&b, &ks),
            "same seed, same map"
        );
        assert_ne!(
            primaries(&a, &ks),
            primaries(&c, &ks),
            "seed changes the map"
        );
    }

    #[test]
    fn balance_stays_within_one_slot_through_membership_churn() {
        let mut ring = HashRing::new(3, 512);
        for s in 0..9 {
            ring.add_shard(s).unwrap();
            let loads: Vec<usize> = ring.shards().iter().map(|&x| ring.load(x)).collect();
            let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(max - min <= 1, "after add {s}: {loads:?}");
        }
        for s in [4u32, 0, 7] {
            ring.remove_shard(s).unwrap();
            let loads: Vec<usize> = ring.shards().iter().map(|&x| ring.load(x)).collect();
            let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(max - min <= 1, "after remove {s}: {loads:?}");
        }
    }

    #[test]
    fn add_moves_at_most_one_nth_of_the_keyspace_to_the_new_shard() {
        let ks = keys(1024);
        let mut ring = HashRing::new(11, 512);
        for s in 0..7 {
            ring.add_shard(s).unwrap();
        }
        let before = primaries(&ring, &ks);
        let report = ring.add_shard(7).unwrap();
        let after = primaries(&ring, &ks);
        assert_eq!(report.moved_slots, 512 / 8, "exactly ⌊S/N⌋ slots move");
        assert!(report.within_bound());
        let mut moved_keys = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*a, Some(7), "a moved key may only land on the new shard");
                moved_keys += 1;
            }
        }
        // Slot movement is exactly S/N here; with this seed the hashed key
        // movement lands at or under the K/N budget too.
        assert!(
            moved_keys <= ks.len() / 8,
            "moved {moved_keys} of {} keys, budget {}",
            ks.len(),
            ks.len() / 8
        );
    }

    #[test]
    fn remove_moves_only_the_departing_shards_keys() {
        let ks = keys(600);
        let mut ring = HashRing::with_shards(5, 256, 6);
        let before = primaries(&ring, &ks);
        let report = ring.remove_shard(2).unwrap();
        let after = primaries(&ring, &ks);
        assert!(report.within_bound());
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*b, Some(2), "only keys of the removed shard move");
            }
            assert_ne!(*a, Some(2), "no key may still map to the removed shard");
        }
    }

    #[test]
    fn duplicate_and_unknown_shards_are_typed_errors() {
        let mut ring = HashRing::with_shards(1, 64, 2);
        assert_eq!(ring.add_shard(1), Err(RingError::DuplicateShard(1)));
        assert_eq!(ring.remove_shard(9), Err(RingError::UnknownShard(9)));
        assert_eq!(
            ring.remove_shard(9).unwrap_err().to_string(),
            "shard 9 is not on the ring"
        );
    }

    #[test]
    fn route_returns_distinct_shards_primary_first() {
        let ring = HashRing::with_shards(13, 256, 5);
        for k in keys(64) {
            let primary = ring.shard_for(&k).unwrap();
            let route = ring.route(&k, 2);
            assert_eq!(route.len(), 3);
            assert_eq!(route[0], primary);
            let mut sorted = route.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "route must be distinct: {route:?}");
            assert_eq!(ring.spill_target(&k), Some(route[1]));
        }
    }

    #[test]
    fn route_is_capped_by_membership() {
        let ring = HashRing::with_shards(13, 64, 2);
        let route = ring.route("q", 5);
        assert_eq!(route.len(), 2, "cannot route to more shards than exist");
    }

    proptest::proptest! {
        /// Ring invariants under arbitrary membership churn:
        /// - unrelated keys never move (stability),
        /// - adds move keys only onto the new shard, removes move only the
        ///   departing shard's keys,
        /// - slot movement respects the ⌈S/N⌉ rebalance bound exactly, and
        ///   key movement stays within twice the K/N budget (hash variance
        ///   over a finite key set),
        /// - ownership stays balanced within one slot,
        /// - routes are distinct and primary-first.
        #[test]
        fn membership_churn_preserves_ring_invariants(
            ops in proptest::collection::vec((0u8..2, 0u32..10), 1..40),
            seed in 0u64..1000,
        ) {
            let ks = keys(256);
            let mut ring = HashRing::new(seed, 128);
            for (kind, shard) in ops {
                let before = primaries(&ring, &ks);
                let n_before = ring.shard_count();
                let report = match kind {
                    0 => match ring.add_shard(shard) {
                        Ok(r) => r,
                        Err(RingError::DuplicateShard(_)) => continue,
                        Err(e) => panic!("unexpected {e}"),
                    },
                    _ => match ring.remove_shard(shard) {
                        Ok(r) => r,
                        Err(RingError::UnknownShard(_)) => continue,
                        Err(e) => panic!("unexpected {e}"),
                    },
                };
                let after = primaries(&ring, &ks);
                proptest::prop_assert!(report.within_bound(), "slot bound: {:?}", report);
                let mut moved_keys = 0usize;
                for (b, a) in before.iter().zip(&after) {
                    if b == a {
                        continue;
                    }
                    moved_keys += 1;
                    match report.op {
                        RingOp::Added => proptest::prop_assert_eq!(
                            *a, Some(shard), "moved keys must land on the new shard"
                        ),
                        RingOp::Removed => proptest::prop_assert_eq!(
                            *b, Some(shard), "only the removed shard's keys may move"
                        ),
                    }
                }
                // Key movement tracks slot movement: bounded by the K/N
                // budget with 2x slack for hash variance plus a small
                // additive floor for tiny clusters.
                let n = match report.op {
                    RingOp::Added => ring.shard_count(),
                    RingOp::Removed => n_before,
                };
                let budget = 2 * ks.len() / n.max(1) + 8;
                proptest::prop_assert!(
                    moved_keys <= budget,
                    "moved {} keys, budget {}", moved_keys, budget
                );
                if !ring.is_empty() {
                    let loads: Vec<usize> =
                        ring.shards().iter().map(|&x| ring.load(x)).collect();
                    let (min, max) =
                        (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
                    proptest::prop_assert!(max - min <= 1, "balance: {:?}", loads);
                    for k in ks.iter().take(16) {
                        let route = ring.route(k, 2);
                        proptest::prop_assert_eq!(route[0], ring.shard_for(k).unwrap());
                        let mut sorted = route.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        proptest::prop_assert_eq!(sorted.len(), route.len());
                    }
                }
            }
        }
    }
}
