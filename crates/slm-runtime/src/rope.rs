//! Rotary position embeddings (RoPE).
//!
//! Qwen2 and MiniCPM both use rotary embeddings; the engine precomputes the
//! cos/sin tables for all positions up to `max_seq_len` and rotates adjacent
//! element pairs `(x[2i], x[2i+1])` of each head.

/// Precomputed RoPE tables.
#[derive(Debug, Clone)]
pub struct RopeTable {
    /// cos/sin per (position, pair index): `[pos * half + i]`.
    cos: Vec<f32>,
    sin: Vec<f32>,
    half: usize,
    max_pos: usize,
}

impl RopeTable {
    /// Build tables for `head_dim` (must be even) up to `max_pos` positions.
    ///
    /// # Panics
    /// Panics if `head_dim` is odd.
    pub fn new(head_dim: usize, max_pos: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE requires an even head_dim");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_pos * half);
        let mut sin = Vec::with_capacity(max_pos * half);
        for pos in 0..max_pos {
            for i in 0..half {
                let freq = 1.0 / (theta as f64).powf(2.0 * i as f64 / head_dim as f64);
                let angle = pos as f64 * freq;
                cos.push(angle.cos() as f32);
                sin.push(angle.sin() as f32);
            }
        }
        Self {
            cos,
            sin,
            half,
            max_pos,
        }
    }

    /// Rotate one head vector in place for position `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= max_pos` or `x.len() != head_dim`.
    pub fn apply(&self, x: &mut [f32], pos: usize) {
        assert!(
            pos < self.max_pos,
            "position {pos} beyond RoPE table ({})",
            self.max_pos
        );
        assert_eq!(x.len(), self.half * 2, "head vector length mismatch");
        let base = pos * self.half;
        for i in 0..self.half {
            let (c, s) = (self.cos[base + i], self.sin[base + i]);
            let (a, b) = (x[2 * i], x[2 * i + 1]);
            x[2 * i] = a * c - b * s;
            x[2 * i + 1] = a * s + b * c;
        }
    }

    /// Rotate every head of a multi-head vector (`n_heads * head_dim`).
    pub fn apply_all_heads(&self, x: &mut [f32], pos: usize) {
        let head_dim = self.half * 2;
        assert!(
            x.len().is_multiple_of(head_dim),
            "vector not a multiple of head_dim"
        );
        for head in x.chunks_mut(head_dim) {
            self.apply(head, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_zero_is_identity() {
        let rope = RopeTable::new(8, 16, 10_000.0);
        let mut x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let orig = x;
        rope.apply(&mut x, 0);
        assert_eq!(x, orig);
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = RopeTable::new(8, 64, 10_000.0);
        let mut x = [0.3, -1.2, 0.7, 2.0, -0.5, 0.1, 1.5, -2.2];
        let before: f32 = x.iter().map(|v| v * v).sum();
        rope.apply(&mut x, 37);
        let after: f32 = x.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn relative_position_property() {
        // RoPE's defining property: <rot(q,m), rot(k,n)> depends only on m-n.
        let rope = RopeTable::new(4, 64, 10_000.0);
        let q = [0.8, -0.3, 0.5, 1.1];
        let k = [0.2, 0.9, -0.7, 0.4];
        let dot_at = |m: usize, n: usize| {
            let (mut qm, mut kn) = (q, k);
            rope.apply(&mut qm, m);
            rope.apply(&mut kn, n);
            qm.iter().zip(&kn).map(|(a, b)| a * b).sum::<f32>()
        };
        assert!((dot_at(5, 2) - dot_at(13, 10)).abs() < 1e-4);
        assert!((dot_at(7, 7) - dot_at(0, 0)).abs() < 1e-4);
    }

    #[test]
    fn different_positions_rotate_differently() {
        let rope = RopeTable::new(4, 16, 10_000.0);
        let mut a = [1.0, 0.0, 1.0, 0.0];
        let mut b = [1.0, 0.0, 1.0, 0.0];
        rope.apply(&mut a, 1);
        rope.apply(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_all_heads_rotates_each() {
        let rope = RopeTable::new(4, 16, 10_000.0);
        let mut multi = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        rope.apply_all_heads(&mut multi, 3);
        // both heads received the identical rotation
        assert_eq!(multi[0], multi[4]);
        assert_eq!(multi[1], multi[5]);
    }

    #[test]
    #[should_panic(expected = "even head_dim")]
    fn odd_head_dim_panics() {
        RopeTable::new(5, 8, 10_000.0);
    }

    #[test]
    #[should_panic(expected = "beyond RoPE table")]
    fn out_of_range_position_panics() {
        let rope = RopeTable::new(4, 4, 10_000.0);
        rope.apply(&mut [0.0; 4], 4);
    }
}
