//! Decoding strategies: greedy, temperature, top-k, nucleus (top-p).

use rand::rngs::StdRng;
use rand::Rng;

use tensor::nn::softmax;

/// Index of the maximum logit (first on ties). Panics on empty input.
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "argmax of empty logits");
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Softmax temperature; 0 means greedy.
    pub temperature: f32,
    /// Keep only the k most likely tokens (0 = no limit).
    pub top_k: usize,
    /// Nucleus threshold; keep the smallest set of tokens whose cumulative
    /// probability reaches `top_p` (1.0 = no limit).
    pub top_p: f32,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            temperature: 1.0,
            top_k: 0,
            top_p: 1.0,
        }
    }
}

/// Sample a token id from logits under `cfg` using `rng`.
pub fn sample(logits: &[f32], cfg: &SamplerConfig, rng: &mut StdRng) -> usize {
    assert!(!logits.is_empty(), "sample from empty logits");
    if cfg.temperature <= 0.0 {
        return argmax(logits);
    }
    let scaled: Vec<f32> = logits.iter().map(|v| v / cfg.temperature).collect();
    let probs = softmax(&scaled);

    // Order token indices by probability descending.
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| {
        probs[b]
            .partial_cmp(&probs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Truncate by top-k, then top-p.
    let k = if cfg.top_k == 0 {
        order.len()
    } else {
        cfg.top_k.min(order.len())
    };
    let mut kept = Vec::with_capacity(k);
    let mut cum = 0.0;
    for &idx in order.iter().take(k) {
        kept.push(idx);
        cum += probs[idx];
        if cum >= cfg.top_p {
            break;
        }
    }

    // Renormalize over the kept set and draw.
    let total: f32 = kept.iter().map(|&i| probs[i]).sum();
    let mut draw = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for &i in &kept {
        draw -= probs[i];
        if draw <= 0.0 {
            return i;
        }
    }
    // Float round-off can leave `draw` marginally positive after the loop;
    // the last kept token is the correct CDF bucket. An empty kept set is
    // impossible (k ≥ 1 pushes at least one index) — fall back to argmax
    // rather than panic if that invariant ever broke.
    kept.last().copied().unwrap_or_else(|| argmax(logits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let cfg = SamplerConfig {
            temperature: 0.0,
            ..Default::default()
        };
        let mut r = rng(0);
        for _ in 0..10 {
            assert_eq!(sample(&[0.0, 10.0, 1.0], &cfg, &mut r), 1);
        }
    }

    #[test]
    fn top_k_one_is_greedy() {
        let cfg = SamplerConfig {
            temperature: 1.0,
            top_k: 1,
            top_p: 1.0,
        };
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(sample(&[0.0, 10.0, 1.0], &cfg, &mut r), 1);
        }
    }

    #[test]
    fn tight_top_p_is_nearly_greedy() {
        let cfg = SamplerConfig {
            temperature: 1.0,
            top_k: 0,
            top_p: 0.01,
        };
        let mut r = rng(2);
        for _ in 0..10 {
            assert_eq!(sample(&[0.0, 10.0, 1.0], &cfg, &mut r), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_choices() {
        let cfg = SamplerConfig {
            temperature: 100.0,
            ..Default::default()
        };
        let mut r = rng(3);
        let logits = [0.0, 1.0, 2.0, 3.0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(sample(&logits, &cfg, &mut r));
        }
        assert!(
            seen.len() >= 3,
            "high temperature should visit most tokens, saw {seen:?}"
        );
    }

    #[test]
    fn sampling_respects_distribution_roughly() {
        // token 1 has ~73% probability at T=1 for logits [0,1]
        let cfg = SamplerConfig::default();
        let mut r = rng(4);
        let mut count1 = 0;
        let n = 2000;
        for _ in 0..n {
            if sample(&[0.0, 1.0], &cfg, &mut r) == 1 {
                count1 += 1;
            }
        }
        let frac = count1 as f64 / n as f64;
        assert!((frac - 0.731).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SamplerConfig::default();
        let logits = [0.5, 0.4, 0.3, 0.2];
        let a: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| sample(&logits, &cfg, &mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| sample(&logits, &cfg, &mut r)).collect()
        };
        assert_eq!(a, b);
    }

    proptest::proptest! {
        #[test]
        fn sampled_index_in_range(
            logits in proptest::collection::vec(-5f32..5.0, 1..20),
            seed in 0u64..50,
            temp in 0.0f32..3.0,
            top_k in 0usize..10,
            top_p in 0.1f32..1.0,
        ) {
            let cfg = SamplerConfig { temperature: temp, top_k, top_p };
            let mut r = rng(seed);
            let idx = sample(&logits, &cfg, &mut r);
            proptest::prop_assert!(idx < logits.len());
        }
    }
}
