//! Behavioral SLM verifiers.
//!
//! Trained Qwen2 / MiniCPM checkpoints are not available offline, so the
//! framework's experiments run on *behavioral models* of how instruction-
//! tuned SLMs answer the yes/no verification prompt (see DESIGN.md §2 for
//! the substitution argument). Each simulated model is:
//!
//! ```text
//! p_yes = sigmoid( logit(agreement) / temperature + bias + sigma · noise )
//! ```
//!
//! where `agreement ∈ (0,1)` is a feature-based entailment score between the
//! response sentence and the (question, context) pair — entity agreement,
//! stemmed content-word containment, bigram overlap and negation parity —
//! and `(temperature, bias, sigma)` are per-model calibration constants that
//! give each simulated SLM its own mean and variance (exactly what Eq. 4 of
//! the paper normalizes away) plus input-keyed deterministic noise (each
//! model errs on different inputs, which is what makes the multi-SLM
//! ensemble outperform single models).

use std::collections::HashSet;

use text_engine::entities::{extract_entities, Entity, EntityKind};
use text_engine::ngram::word_ngrams;
use text_engine::similarity::{dice, weighted_containment};
use text_engine::stem::porter_stem;
use text_engine::stopwords::is_stopword;
use text_engine::token::tokenize_words;

use crate::verifier::{VerificationRequest, YesNoVerifier};

/// Per-entity verdict when checking a response entity against the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityVerdict {
    /// A context entity states the same fact.
    Supported,
    /// Comparable context entities exist but none agree.
    Contradicted,
    /// Nothing in the context speaks to this entity.
    Unsupported,
}

/// The raw entailment features for one (question, context, response) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    /// Average per-entity agreement (1.0 support / 0.65 unsupported / 0.12
    /// contradiction); 1.0 when the response carries no entities.
    pub entity_agreement: f64,
    /// Weighted containment of the response's stemmed content words in the
    /// context + question (long words weigh double).
    pub containment: f64,
    /// Dice overlap of word bigrams between response and context.
    pub bigram_overlap: f64,
    /// Negation parity differs between the response and its best-matching
    /// context region.
    pub negation_mismatch: bool,
    /// Number of entities found in the response.
    pub entity_count: usize,
    /// Number of contradicted entities.
    pub contradictions: usize,
}

/// Does a context entity support (`Some(true)`), contradict (`Some(false)`),
/// or say nothing about (`None`) a response entity?
pub fn context_supports(response_ent: &EntityKind, context_ent: &EntityKind) -> Option<bool> {
    use EntityKind::*;
    match (response_ent, context_ent) {
        (Time(a), Time(b)) => Some(a == b),
        (Time(a), TimeRange(s, e)) => Some(a == s || a == e),
        (TimeRange(..), TimeRange(..)) => Some(response_ent.matches(context_ent)),
        (Weekday(d), Weekday(b)) => Some(d == b),
        (Weekday(d), WeekdayRange(s, e)) => {
            Some(text_engine::entities::expand_weekday_range(*s, *e).contains(d))
        }
        (WeekdayRange(..), WeekdayRange(..)) => Some(response_ent.matches(context_ent)),
        (Number(a), Number(b)) => Some((a - b).abs() < 1e-9),
        (Number(a), Duration(v, _)) => Some((a - v).abs() < 1e-9),
        (Duration(..), Duration(..)) => Some(response_ent.matches(context_ent)),
        (Duration(v, _), Number(b)) => Some((v - b).abs() < 1e-9),
        (Money(a), Money(b)) => Some((a - b).abs() < 1e-9),
        (Percent(a), Percent(b)) => Some((a - b).abs() < 1e-9),
        _ => None,
    }
}

/// Classify one response entity against all context entities.
pub fn entity_verdict(response_ent: &Entity, context_ents: &[Entity]) -> EntityVerdict {
    let mut comparable = false;
    for c in context_ents {
        match context_supports(&response_ent.kind, &c.kind) {
            Some(true) => return EntityVerdict::Supported,
            Some(false) => comparable = true,
            None => {}
        }
    }
    if comparable {
        EntityVerdict::Contradicted
    } else {
        EntityVerdict::Unsupported
    }
}

/// Damping applied to positive noise excursions (scores saturate near 1).
const UPWARD_NOISE_DAMP: f64 = 0.15;

const NEGATION_WORDS: &[&str] = &[
    "not",
    "no",
    "never",
    "none",
    "without",
    "closed",
    "excluding",
    "except",
    "neither",
];

fn has_negation(words: &[String]) -> bool {
    words
        .iter()
        .any(|w| NEGATION_WORDS.contains(&w.as_str()) || w.ends_with("n't"))
}

fn content_stems(text: &str) -> HashSet<String> {
    tokenize_words(text)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .map(|w| porter_stem(&w))
        .collect()
}

/// Extract the entailment features for a verification request (perfect
/// entity checking — the model-aware variant is
/// [`extract_features_for_model`]).
pub fn extract_features(req: &VerificationRequest<'_>) -> Features {
    extract_features_for_model(req, 0, 0.0)
}

/// Extract features as a specific (imperfect) model perceives them: each
/// contradicted entity goes *unnoticed* with probability `miss_prob`, keyed
/// by (model seed, entity text) — a missed contradiction reads as support.
/// Different models miss different errors, which is exactly why the paper's
/// multi-SLM ensemble beats any single SLM.
pub fn extract_features_for_model(
    req: &VerificationRequest<'_>,
    model_seed: u64,
    miss_prob: f64,
) -> Features {
    let support_text = format!("{} {}", req.context, req.question);
    let context_ents = extract_entities(&support_text);
    let response_ents = extract_entities(req.response);

    let (mut supported, mut contradicted, mut unsupported) = (0usize, 0usize, 0usize);
    for e in &response_ents {
        match entity_verdict(e, &context_ents) {
            EntityVerdict::Supported => supported += 1,
            EntityVerdict::Contradicted => {
                let span = &req.response[e.start..e.end];
                let h = fnv1a(model_seed ^ 0x1111_2222_3333_4444, &[span, req.context]);
                let u = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
                if u < miss_prob {
                    supported += 1; // the model fails to notice the conflict
                } else {
                    contradicted += 1;
                }
            }
            EntityVerdict::Unsupported => unsupported += 1,
        }
    }
    let entity_count = response_ents.len();
    let entity_agreement = if entity_count == 0 {
        1.0
    } else {
        (supported as f64 + 0.65 * unsupported as f64 + 0.12 * contradicted as f64)
            / entity_count as f64
    };

    let r_stems = content_stems(req.response);
    let c_stems = content_stems(&support_text);
    let containment =
        weighted_containment(&r_stems, &c_stems, |t| if t.len() >= 7 { 2.0 } else { 1.0 });

    let r_words = tokenize_words(req.response);
    let c_words = tokenize_words(req.context);
    let r_bigrams: HashSet<String> = word_ngrams(&r_words, 2).into_iter().collect();
    let c_bigrams: HashSet<String> = word_ngrams(&c_words, 2).into_iter().collect();
    let bigram_overlap = dice(&r_bigrams, &c_bigrams);

    // Negation parity against the context region that best matches the response.
    let neg_r = has_negation(&r_words);
    let neg_c = {
        let sentences = text_engine::split_sentences(req.context);
        let best = sentences
            .iter()
            .map(|s| {
                let s_stems = content_stems(s);
                let ov = weighted_containment(&r_stems, &s_stems, |_| 1.0);
                (s, ov)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((s, _)) => has_negation(&tokenize_words(s)),
            None => false,
        }
    };

    Features {
        entity_agreement,
        containment,
        bigram_overlap,
        negation_mismatch: neg_r != neg_c,
        entity_count,
        contradictions: contradicted,
    }
}

/// Calibration constants of one simulated SLM.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Model name (reports, per-model statistics).
    pub name: String,
    /// Weight of the entity-agreement feature.
    pub entity_weight: f64,
    /// Weight of the containment feature.
    pub containment_weight: f64,
    /// Weight of the bigram-overlap feature.
    pub bigram_weight: f64,
    /// Multiplier applied to the agreement when negation parity breaks.
    pub negation_penalty: f64,
    /// Softmax-style temperature on the agreement logit (>1 flattens).
    pub temperature: f64,
    /// Additive logit bias (positive = answers "yes" more readily).
    pub bias: f64,
    /// Standard deviation of the input-keyed noise on the logit.
    pub noise_sigma: f64,
    /// Seed mixed into the noise hash — two models with different seeds err
    /// on different inputs.
    pub seed: u64,
    /// Probability that this model fails to notice a contradicted entity
    /// (keyed per entity, so different models miss different errors).
    pub contradiction_miss_prob: f64,
    /// Probability of a heavy-tailed *downward* shock on a given input:
    /// instruction-tuned verifiers occasionally balk hard at a perfectly
    /// supported sentence (odd phrasing, tokenization quirks). This is what
    /// makes the `min` aggregation fragile (Fig. 5b) while leaving `max`
    /// untouched (Fig. 5a).
    pub tail_prob: f64,
    /// Magnitude of the downward shock, in logit units.
    pub tail_magnitude: f64,
    /// API-style models collapse the probability to a 0/1 decision.
    pub decision_only: bool,
    /// Large models read multi-sentence responses sentence by sentence even
    /// when asked for a single verdict: agreement is computed per sentence
    /// and averaged. One bad sentence among several is still diluted —
    /// which is why whole-response verification stays blind to *partial*
    /// responses — but a fully-wrong response is reliably rejected.
    pub sentence_aware: bool,
}

/// A behavioral verifier built from a [`SimProfile`].
#[derive(Debug, Clone)]
pub struct SimVerifier {
    profile: SimProfile,
}

impl SimVerifier {
    /// Wrap a profile.
    pub fn new(profile: SimProfile) -> Self {
        Self { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &SimProfile {
        &self.profile
    }

    /// Features as this model perceives them (with its contradiction misses).
    pub fn perceived_features(&self, request: &VerificationRequest<'_>) -> Features {
        extract_features_for_model(
            request,
            self.profile.seed,
            self.profile.contradiction_miss_prob,
        )
    }

    /// The blended agreement score in (0, 1) before calibration.
    pub fn agreement(&self, features: &Features) -> f64 {
        let p = &self.profile;
        let total = p.entity_weight + p.containment_weight + p.bigram_weight;
        let mut a = (p.entity_weight * features.entity_agreement
            + p.containment_weight * features.containment
            + p.bigram_weight * features.bigram_overlap)
            / total;
        if features.negation_mismatch {
            a *= p.negation_penalty;
        }
        // Sycophancy on unverifiable statements: a pleasantry with no
        // checkable facts ("planning ahead helps") reads as agreeable, and
        // instruction-tuned models lean toward "yes" on it unless the
        // polarity is off. Without this, innocuous closing sentences drag
        // response scores as hard as real errors.
        if features.entity_count == 0 && !features.negation_mismatch {
            a = a.max(0.62);
        }
        // Explicit contradictions dominate an instruction-tuned verifier's
        // judgment far beyond their share of the token overlap: scale the
        // agreement down by the fraction of contradicted entities.
        if features.entity_count > 0 && features.contradictions > 0 {
            let fraction = features.contradictions as f64 / features.entity_count as f64;
            a *= 1.0 - 0.55 * fraction;
        }
        a.clamp(0.02, 0.98)
    }
}

impl YesNoVerifier for SimVerifier {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn p_yes(&self, request: &VerificationRequest<'_>) -> f64 {
        let a = if self.profile.sentence_aware {
            let sentences = text_engine::split_sentences(request.response);
            if sentences.len() > 1 {
                let per: Vec<f64> = sentences
                    .iter()
                    .map(|s| {
                        let sub = VerificationRequest::new(request.question, request.context, s);
                        self.agreement(&self.perceived_features(&sub))
                    })
                    .collect();
                let mean = per.iter().sum::<f64>() / per.len() as f64;
                let max = per.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // A single-verdict judgment anchors on the response's gist:
                // one clearly-supported statement pulls the whole response
                // toward "yes" (mean/max blend). This is what keeps whole-
                // response verification blind to *partially* wrong answers
                // while still rejecting fully-wrong ones.
                (0.5 * mean + 0.5 * max).clamp(0.02, 0.98)
            } else {
                self.agreement(&self.perceived_features(request))
            }
        } else {
            self.agreement(&self.perceived_features(request))
        };
        let logit = (a / (1.0 - a)).ln();
        let noise = input_noise(self.profile.seed, request);
        // Shocks are PER MODEL (each checkpoint balks at its own set of
        // inputs): a single SLM eats the full dip, while the ensemble halves
        // it — the paper's multi-SLM advantage. Because ensembled sentence
        // scores then carry frequent mild dips, the brittle `min`
        // aggregation degrades (Fig. 5b) while `max` stays immune (Fig. 5a).
        let shock = if tail_shock(self.profile.seed, request, self.profile.tail_prob) {
            let hm = fnv1a(self.profile.seed ^ 0x5eed_d002, &[request.response]);
            let u_model = (splitmix64(hm) >> 11) as f64 / (1u64 << 53) as f64;
            // Depth is bounded: a balked verifier drops to "suspicious",
            // not to the contradicted-sentence floor — that is what lets the
            // harmonic mean ride out a dip that breaks `min`.
            (self.profile.tail_magnitude * (0.5 + u_model)).clamp(1.0, 2.9)
        } else {
            0.0
        };
        // Verifier scores saturate toward "yes" for supported statements:
        // upward noise excursions are strongly damped while downward ones
        // (confusion, distrust) keep their full weight. This skew is what
        // protects the `max` aggregation (Fig. 5a) and erodes `min`.
        let skewed = if noise > 0.0 {
            noise * UPWARD_NOISE_DAMP
        } else {
            noise
        };
        let z = logit / self.profile.temperature
            + self.profile.bias
            + self.profile.noise_sigma * skewed
            - shock;
        let p = 1.0 / (1.0 + (-z).exp());
        if self.profile.decision_only {
            if p >= 0.5 {
                1.0
            } else {
                0.0
            }
        } else {
            p
        }
    }

    fn exposes_probabilities(&self) -> bool {
        !self.profile.decision_only
    }
}

/// FNV-1a 64-bit hash (stable across platforms and Rust versions, unlike
/// `DefaultHasher`).
pub(crate) fn fnv1a(seed: u64, parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x1f; // separator so ("ab","c") != ("a","bc")
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic standard-normal noise keyed by (model seed, request).
///
/// Local models are deterministic per input: the same prompt always yields
/// the same first-token distribution. The "noise" models which inputs a
/// given checkpoint happens to misjudge, so it must be a *function of the
/// input*, not a random draw per call.
pub fn input_noise(seed: u64, request: &VerificationRequest<'_>) -> f64 {
    let h = fnv1a(seed, &[request.question, request.context, request.response]);
    // Finalize through splitmix64 twice so the two uniforms are decorrelated
    // even when inputs differ in a single byte.
    let u1 = ((splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
    let u2 = (splitmix64(h ^ 0xd6e8_feb8_6659_fd93) >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic Bernoulli draw for the heavy-tail shock, keyed by
/// (model seed, request) like [`input_noise`] but on an independent stream.
pub fn tail_shock(seed: u64, request: &VerificationRequest<'_>, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    let h = fnv1a(
        seed ^ 0x7a11_540c_7a11_540c,
        &[request.question, request.context, request.response],
    );
    let u = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
    u < prob
}

/// SplitMix64 finalizer: a full-avalanche bijection on u64.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(seed: u64) -> SimProfile {
        SimProfile {
            name: "test-slm".into(),
            entity_weight: 0.5,
            containment_weight: 0.3,
            bigram_weight: 0.2,
            negation_penalty: 0.45,
            temperature: 1.0,
            bias: 0.0,
            noise_sigma: 0.3,
            seed,
            contradiction_miss_prob: 0.0,
            decision_only: false,
            sentence_aware: false,
            tail_prob: 0.0,
            tail_magnitude: 0.0,
        }
    }

    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";

    #[test]
    fn correct_sentence_scores_high() {
        let v = SimVerifier::new(profile(1));
        let req = VerificationRequest::new(Q, CTX, "The working hours are 9 AM to 5 PM.");
        assert!(v.p_yes(&req) > 0.6, "p={}", v.p_yes(&req));
    }

    #[test]
    fn wrong_sentence_scores_low() {
        let v = SimVerifier::new(profile(1));
        let req = VerificationRequest::new(Q, CTX, "The working hours are 9 AM to 9 PM.");
        assert!(v.p_yes(&req) < 0.5, "p={}", v.p_yes(&req));
    }

    #[test]
    fn correct_beats_wrong_for_all_seeds() {
        for seed in 0..20 {
            let v = SimVerifier::new(profile(seed));
            let good = v.p_yes(&VerificationRequest::new(
                Q,
                CTX,
                "The working hours are 9 AM to 5 PM.",
            ));
            let bad = v.p_yes(&VerificationRequest::new(
                Q,
                CTX,
                "The working hours are 9 AM to 9 PM.",
            ));
            assert!(good > bad, "seed {seed}: good={good} bad={bad}");
        }
    }

    #[test]
    fn negation_flip_is_caught() {
        let v = SimVerifier::new(profile(2));
        let good = v.p_yes(&VerificationRequest::new(
            Q,
            CTX,
            "The store is open from Sunday to Saturday.",
        ));
        let bad = v.p_yes(&VerificationRequest::new(
            Q,
            CTX,
            "You do not need to work on weekends.",
        ));
        assert!(good > bad, "good={good} bad={bad}");
    }

    #[test]
    fn wrong_day_range_is_contradicted() {
        let feats = extract_features(&VerificationRequest::new(
            Q,
            CTX,
            "The store is open from Monday to Friday.",
        ));
        assert!(feats.contradictions >= 1, "{feats:?}");
        assert!(feats.entity_agreement < 0.5);
    }

    #[test]
    fn supported_entities_agree() {
        let feats = extract_features(&VerificationRequest::new(
            Q,
            CTX,
            "The working hours are 9 AM to 5 PM.",
        ));
        assert_eq!(feats.contradictions, 0);
        assert!(feats.entity_agreement > 0.9, "{feats:?}");
    }

    #[test]
    fn no_entities_falls_back_to_lexical() {
        let feats = extract_features(&VerificationRequest::new(Q, CTX, "The store runs a shop."));
        assert_eq!(feats.entity_count, 0);
        assert_eq!(feats.entity_agreement, 1.0);
        assert!(feats.containment > 0.5);
    }

    #[test]
    fn verdicts() {
        let ctx = extract_entities(CTX);
        let good = extract_entities("9 AM to 5 PM");
        assert_eq!(entity_verdict(&good[0], &ctx), EntityVerdict::Supported);
        let bad = extract_entities("9 AM to 9 PM");
        assert_eq!(entity_verdict(&bad[0], &ctx), EntityVerdict::Contradicted);
        let unrelated = extract_entities("$500");
        assert_eq!(
            entity_verdict(&unrelated[0], &ctx),
            EntityVerdict::Unsupported
        );
    }

    #[test]
    fn single_time_supported_by_range_endpoint() {
        let ctx = extract_entities(CTX);
        let open = extract_entities("opens at 9 AM");
        assert_eq!(entity_verdict(&open[0], &ctx), EntityVerdict::Supported);
        let closes_late = extract_entities("closes at 9 PM");
        assert_eq!(
            entity_verdict(&closes_late[0], &ctx),
            EntityVerdict::Contradicted
        );
    }

    #[test]
    fn p_yes_is_deterministic_per_input() {
        let v = SimVerifier::new(profile(5));
        let req = VerificationRequest::new(Q, CTX, "The working hours are 9 AM to 5 PM.");
        assert_eq!(v.p_yes(&req), v.p_yes(&req));
    }

    #[test]
    fn different_seeds_err_differently() {
        let a = SimVerifier::new(profile(1));
        let b = SimVerifier::new(profile(2));
        let req = VerificationRequest::new(Q, CTX, "The working hours are 9 AM to 5 PM.");
        assert_ne!(a.p_yes(&req), b.p_yes(&req));
    }

    #[test]
    fn decision_only_collapses_to_binary() {
        let mut p = profile(3);
        p.decision_only = true;
        let v = SimVerifier::new(p);
        let good = v.p_yes(&VerificationRequest::new(Q, CTX, "Hours are 9 AM to 5 PM."));
        let bad = v.p_yes(&VerificationRequest::new(Q, CTX, "Hours are 9 AM to 9 PM."));
        assert!(good == 0.0 || good == 1.0);
        assert!(bad == 0.0 || bad == 1.0);
        assert!(!v.exposes_probabilities());
    }

    #[test]
    fn bias_shifts_mean() {
        let mut hi = profile(4);
        hi.bias = 1.0;
        let mut lo = profile(4);
        lo.bias = -1.0;
        let req = VerificationRequest::new(Q, CTX, "The working hours are 9 AM to 5 PM.");
        assert!(SimVerifier::new(hi).p_yes(&req) > SimVerifier::new(lo).p_yes(&req));
    }

    #[test]
    fn noise_is_roughly_standard_normal() {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = 2000;
        for i in 0..n {
            let r = format!("response {i}");
            let req = VerificationRequest::new("q", "c", &r);
            let x = input_noise(42, &req);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 1.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn fnv_separator_prevents_concat_collisions() {
        assert_ne!(fnv1a(0, &["ab", "c"]), fnv1a(0, &["a", "bc"]));
    }

    proptest::proptest! {
        #[test]
        fn p_yes_always_in_unit_interval(
            resp in "[a-zA-Z0-9 .]{0,80}", seed in 0u64..100
        ) {
            let v = SimVerifier::new(profile(seed));
            let p = v.p_yes(&VerificationRequest::new(Q, CTX, &resp));
            proptest::prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        }

        #[test]
        fn features_bounded(resp in "[a-zA-Z0-9 .]{0,80}") {
            let f = extract_features(&VerificationRequest::new(Q, CTX, &resp));
            proptest::prop_assert!((0.0..=1.0).contains(&f.entity_agreement));
            proptest::prop_assert!((0.0..=1.0).contains(&f.containment));
            proptest::prop_assert!((0.0..=1.0).contains(&f.bigram_overlap));
        }
    }
}
