//! The verifier abstraction the framework consumes.
//!
//! A verifier is anything that, given (question, context, response), produces
//! `P(token_1 = "yes")` — a transformer running locally, a behavioral
//! simulator, or an API-style model that only exposes a binary decision.

/// One verification query: Eq. 2's conditioning set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationRequest<'a> {
    /// The user's question `q_i`.
    pub question: &'a str,
    /// The retrieved context `c_i`.
    pub context: &'a str,
    /// The (sub-)response under test — `r_i` or a split sentence `r_{i,j}`.
    pub response: &'a str,
}

impl<'a> VerificationRequest<'a> {
    /// Convenience constructor.
    pub fn new(question: &'a str, context: &'a str, response: &'a str) -> Self {
        Self {
            question,
            context,
            response,
        }
    }
}

/// A yes/no answer-verification model (Eq. 2: `P(token_1 = yes | q, c, r)`).
pub trait YesNoVerifier: Send + Sync {
    /// Human-readable model name (used in reports and per-model statistics).
    fn name(&self) -> &str;

    /// The probability that the model's first generated token is "yes".
    ///
    /// Must be deterministic for a given request (local models read the
    /// probability from a single forward pass).
    fn p_yes(&self, request: &VerificationRequest<'_>) -> f64;

    /// Whether the backing model exposes token probabilities at all.
    ///
    /// API-only models (the paper's ChatGPT baseline) return `false`: their
    /// `p_yes` collapses to {0, 1} because only a sampled decision is
    /// observable.
    fn exposes_probabilities(&self) -> bool {
        true
    }
}

impl<T: YesNoVerifier + ?Sized> YesNoVerifier for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn p_yes(&self, request: &VerificationRequest<'_>) -> f64 {
        (**self).p_yes(request)
    }

    fn exposes_probabilities(&self) -> bool {
        (**self).exposes_probabilities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl YesNoVerifier for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn p_yes(&self, _request: &VerificationRequest<'_>) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_objects_work() {
        let v: Box<dyn YesNoVerifier> = Box::new(Constant(0.7));
        let req = VerificationRequest::new("q", "c", "r");
        assert_eq!(v.p_yes(&req), 0.7);
        assert!(v.exposes_probabilities());
        assert_eq!(v.name(), "constant");
    }

    #[test]
    fn request_holds_fields() {
        let req = VerificationRequest::new("q?", "ctx", "resp");
        assert_eq!(req.question, "q?");
        assert_eq!(req.context, "ctx");
        assert_eq!(req.response, "resp");
    }
}
