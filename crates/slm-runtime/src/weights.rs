//! Model weights and their deterministic synthetic initialization.
//!
//! Real Qwen2 / MiniCPM checkpoints are unavailable offline (DESIGN.md), so
//! the engine runs on seeded Xavier-initialized weights. Everything about the
//! *mechanics* — shapes, memory layout, the first-token probability
//! extraction — is identical to running a trained checkpoint.

use rand::rngs::StdRng;

use tensor::init::{ones, seeded_rng, xavier_uniform};
use tensor::{Linear, Matrix};

use crate::config::ModelConfig;

/// Per-layer weight access, abstracted over storage precision.
///
/// `attention_step`/`attention_block` and `ffn_step`/`ffn_block` are written
/// once against this trait; the associated [`Linear`] type decides whether a
/// projection runs the f32 kernels ([`LayerWeights`], `Lin = Matrix`) or the
/// int8 kernels (`quant::QuantizedLayer`, `Lin = Int8Matrix`). The norm gains
/// stay f32 in both precisions — RMSNorm is cheap and scale-sensitive.
pub trait LayerView {
    /// Projection storage for this precision.
    type Lin: Linear;

    /// Query projection, `hidden × hidden`.
    fn wq(&self) -> &Self::Lin;
    /// Key projection, `hidden × kv_dim`.
    fn wk(&self) -> &Self::Lin;
    /// Value projection, `hidden × kv_dim`.
    fn wv(&self) -> &Self::Lin;
    /// Attention output projection, `hidden × hidden`.
    fn wo(&self) -> &Self::Lin;
    /// SwiGLU gate projection, `hidden × ffn_hidden`.
    fn w_gate(&self) -> &Self::Lin;
    /// SwiGLU up projection, `hidden × ffn_hidden`.
    fn w_up(&self) -> &Self::Lin;
    /// SwiGLU down projection, `ffn_hidden × hidden`.
    fn w_down(&self) -> &Self::Lin;
    /// RMSNorm gain before attention.
    fn attn_norm(&self) -> &[f32];
    /// RMSNorm gain before the FFN.
    fn ffn_norm(&self) -> &[f32];
}

/// Weights of a single transformer block.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection, `hidden × hidden` (applied as `x^T · W`).
    pub wq: Matrix,
    /// Key projection, `hidden × kv_dim`.
    pub wk: Matrix,
    /// Value projection, `hidden × kv_dim`.
    pub wv: Matrix,
    /// Output projection, `hidden × hidden`.
    pub wo: Matrix,
    /// SwiGLU gate projection, `hidden × ffn_hidden`.
    pub w_gate: Matrix,
    /// SwiGLU up projection, `hidden × ffn_hidden`.
    pub w_up: Matrix,
    /// SwiGLU down projection, `ffn_hidden × hidden`.
    pub w_down: Matrix,
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm gain before the FFN.
    pub ffn_norm: Vec<f32>,
}

impl LayerView for LayerWeights {
    type Lin = Matrix;

    fn wq(&self) -> &Matrix {
        &self.wq
    }
    fn wk(&self) -> &Matrix {
        &self.wk
    }
    fn wv(&self) -> &Matrix {
        &self.wv
    }
    fn wo(&self) -> &Matrix {
        &self.wo
    }
    fn w_gate(&self) -> &Matrix {
        &self.w_gate
    }
    fn w_up(&self) -> &Matrix {
        &self.w_up
    }
    fn w_down(&self) -> &Matrix {
        &self.w_down
    }
    fn attn_norm(&self) -> &[f32] {
        &self.attn_norm
    }
    fn ffn_norm(&self) -> &[f32] {
        &self.ffn_norm
    }
}

/// All weights of a decoder-only transformer.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding table, `vocab × hidden`.
    pub embed: Matrix,
    /// Transformer blocks.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head, `hidden × vocab` (untied from the embedding).
    pub lm_head: Matrix,
}

impl ModelWeights {
    /// Deterministic synthetic weights for `cfg`, seeded by `seed`.
    ///
    /// # Panics
    /// Panics if the config is invalid, naming the failed constraint.
    pub fn synthetic(cfg: &ModelConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model config: {e}");
        }
        let mut rng: StdRng = seeded_rng(seed);
        let h = cfg.hidden;
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        let layers = (0..cfg.n_layers)
            .map(|_| LayerWeights {
                wq: xavier_uniform(h, h, &mut rng),
                wk: xavier_uniform(h, kv_dim, &mut rng),
                wv: xavier_uniform(h, kv_dim, &mut rng),
                wo: xavier_uniform(h, h, &mut rng),
                w_gate: xavier_uniform(h, cfg.ffn_hidden, &mut rng),
                w_up: xavier_uniform(h, cfg.ffn_hidden, &mut rng),
                w_down: xavier_uniform(cfg.ffn_hidden, h, &mut rng),
                attn_norm: ones(h),
                ffn_norm: ones(h),
            })
            .collect();
        Self {
            embed: xavier_uniform(cfg.vocab_size, h, &mut rng),
            layers,
            final_norm: ones(h),
            lm_head: xavier_uniform(h, cfg.vocab_size, &mut rng),
        }
    }

    /// Actual parameter count held by these weights.
    pub fn num_parameters(&self) -> usize {
        let layer_params: usize = self
            .layers
            .iter()
            .map(|l| {
                l.wq.rows() * l.wq.cols()
                    + l.wk.rows() * l.wk.cols()
                    + l.wv.rows() * l.wv.cols()
                    + l.wo.rows() * l.wo.cols()
                    + l.w_gate.rows() * l.w_gate.cols()
                    + l.w_up.rows() * l.w_up.cols()
                    + l.w_down.rows() * l.w_down.cols()
                    + l.attn_norm.len()
                    + l.ffn_norm.len()
            })
            .sum();
        self.embed.rows() * self.embed.cols()
            + layer_params
            + self.final_norm.len()
            + self.lm_head.rows() * self.lm_head.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matches_config_formula() {
        let cfg = ModelConfig::tiny(64);
        let w = ModelWeights::synthetic(&cfg, 42);
        assert_eq!(w.num_parameters(), cfg.num_parameters());
    }

    #[test]
    fn seeding_is_reproducible() {
        let cfg = ModelConfig::tiny(64);
        let a = ModelWeights::synthetic(&cfg, 1);
        let b = ModelWeights::synthetic(&cfg, 1);
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        let c = ModelWeights::synthetic(&cfg, 2);
        assert_ne!(a.embed, c.embed);
    }

    #[test]
    fn shapes_follow_config() {
        let cfg = ModelConfig::qwen2_like(128);
        let w = ModelWeights::synthetic(&cfg, 0);
        let kv_dim = cfg.n_kv_heads * cfg.head_dim();
        assert_eq!(w.layers.len(), cfg.n_layers);
        assert_eq!(w.layers[0].wk.cols(), kv_dim);
        assert_eq!(w.lm_head.cols(), cfg.vocab_size);
        assert_eq!(w.embed.rows(), cfg.vocab_size);
    }

    #[test]
    #[should_panic(expected = "invalid model config")]
    fn invalid_config_panics() {
        let mut cfg = ModelConfig::tiny(64);
        cfg.n_heads = 3;
        ModelWeights::synthetic(&cfg, 0);
    }
}
