//! Binary weight persistence.
//!
//! A compact little-endian format for shipping model weights (f32 or the
//! int8-quantized form) between processes — the missing piece between
//! "train/quantize once" and "deploy on many edge devices". The format is
//! versioned and self-describing enough to fail loudly on mismatches.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "SLMW" | version u32 | kind u8 (0 = f32, 1 = int8) |
//! vocab u32 | hidden u32 | n_layers u32 | n_heads u32 | n_kv_heads u32 |
//! ffn_hidden u32 | payload…
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use tensor::Matrix;

use crate::config::ModelConfig;
use crate::weights::{LayerWeights, ModelWeights};

const MAGIC: &[u8; 4] = b"SLMW";
const VERSION: u32 = 1;
const KIND_F32: u8 = 0;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn write_f32s(w: &mut impl Write, values: &[f32]) -> io::Result<()> {
    for v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_matrix(w: &mut impl Write, m: &Matrix) -> io::Result<()> {
    write_u32(w, m.rows() as u32)?;
    write_u32(w, m.cols() as u32)?;
    write_f32s(w, m.as_slice())
}

fn read_matrix(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    let data = read_f32s(r, rows * cols)?;
    Ok(Matrix::from_vec(rows, cols, data))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize config + f32 weights into a writer.
pub fn save_f32(w: &mut impl Write, cfg: &ModelConfig, weights: &ModelWeights) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    w.write_all(&[KIND_F32])?;
    for v in [
        cfg.vocab_size,
        cfg.hidden,
        cfg.n_layers,
        cfg.n_heads,
        cfg.n_kv_heads,
        cfg.ffn_hidden,
        cfg.max_seq_len,
    ] {
        write_u32(w, v as u32)?;
    }
    write_f32s(w, &[cfg.rope_theta, cfg.norm_eps])?;

    write_matrix(w, &weights.embed)?;
    for layer in &weights.layers {
        for m in [
            &layer.wq,
            &layer.wk,
            &layer.wv,
            &layer.wo,
            &layer.w_gate,
            &layer.w_up,
            &layer.w_down,
        ] {
            write_matrix(w, m)?;
        }
        write_f32s(w, &layer.attn_norm)?;
        write_f32s(w, &layer.ffn_norm)?;
    }
    write_f32s(w, &weights.final_norm)?;
    write_matrix(w, &weights.lm_head)
}

/// Deserialize config + f32 weights from a reader.
pub fn load_f32(r: &mut impl Read) -> io::Result<(ModelConfig, ModelWeights)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not an SLMW weights file"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(invalid(format!("unsupported weights version {version}")));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    if kind[0] != KIND_F32 {
        return Err(invalid(format!("unsupported weight kind {}", kind[0])));
    }
    let vocab_size = read_u32(r)? as usize;
    let hidden = read_u32(r)? as usize;
    let n_layers = read_u32(r)? as usize;
    let n_heads = read_u32(r)? as usize;
    let n_kv_heads = read_u32(r)? as usize;
    let ffn_hidden = read_u32(r)? as usize;
    let max_seq_len = read_u32(r)? as usize;
    let extras = read_f32s(r, 2)?;
    let cfg = ModelConfig {
        vocab_size,
        hidden,
        n_layers,
        n_heads,
        n_kv_heads,
        ffn_hidden,
        max_seq_len,
        rope_theta: extras[0],
        norm_eps: extras[1],
        // The on-disk format stores f32 payloads (KIND_F32 checked above);
        // callers opt into int8 execution via `with_precision` after load.
        precision: crate::config::Precision::F32,
    };
    cfg.validate().map_err(invalid)?;

    let embed = read_matrix(r)?;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let wq = read_matrix(r)?;
        let wk = read_matrix(r)?;
        let wv = read_matrix(r)?;
        let wo = read_matrix(r)?;
        let w_gate = read_matrix(r)?;
        let w_up = read_matrix(r)?;
        let w_down = read_matrix(r)?;
        let attn_norm = read_f32s(r, hidden)?;
        let ffn_norm = read_f32s(r, hidden)?;
        layers.push(LayerWeights {
            wq,
            wk,
            wv,
            wo,
            w_gate,
            w_up,
            w_down,
            attn_norm,
            ffn_norm,
        });
    }
    let final_norm = read_f32s(r, hidden)?;
    let lm_head = read_matrix(r)?;
    let weights = ModelWeights {
        embed,
        layers,
        final_norm,
        lm_head,
    };
    if weights.embed.rows() != vocab_size || weights.embed.cols() != hidden {
        return Err(invalid("embedding shape does not match header"));
    }
    Ok((cfg, weights))
}

/// Save to a file path.
pub fn save_file(path: &Path, cfg: &ModelConfig, weights: &ModelWeights) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    save_f32(&mut file, cfg, weights)?;
    file.flush()
}

/// Load from a file path.
pub fn load_file(path: &Path) -> io::Result<(ModelConfig, ModelWeights)> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    load_f32(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransformerLM;

    fn setup() -> (ModelConfig, ModelWeights) {
        let cfg = ModelConfig::tiny(48);
        let weights = ModelWeights::synthetic(&cfg, 9);
        (cfg, weights)
    }

    #[test]
    fn roundtrip_through_memory_is_exact() {
        let (cfg, weights) = setup();
        let mut buf = Vec::new();
        save_f32(&mut buf, &cfg, &weights).unwrap();
        let (cfg2, weights2) = load_f32(&mut buf.as_slice()).unwrap();
        assert_eq!(cfg, cfg2);
        assert_eq!(weights.embed, weights2.embed);
        assert_eq!(weights.layers[0].wq, weights2.layers[0].wq);
        assert_eq!(weights.lm_head, weights2.lm_head);
    }

    #[test]
    fn loaded_model_produces_identical_logits() {
        let (cfg, weights) = setup();
        let mut buf = Vec::new();
        save_f32(&mut buf, &cfg, &weights).unwrap();
        let (cfg2, weights2) = load_f32(&mut buf.as_slice()).unwrap();

        let a = TransformerLM::new(cfg, weights);
        let b = TransformerLM::new(cfg2, weights2);
        let mut ca = a.new_cache();
        let mut cb = b.new_cache();
        assert_eq!(
            a.prefill(&[1, 2, 3], &mut ca),
            b.prefill(&[1, 2, 3], &mut cb)
        );
    }

    #[test]
    fn file_roundtrip() {
        let (cfg, weights) = setup();
        let path = std::env::temp_dir().join(format!("slm-weights-{}.bin", std::process::id()));
        save_file(&path, &cfg, &weights).unwrap();
        let (cfg2, _) = load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_f32(&mut &b"NOPE0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let (cfg, weights) = setup();
        let mut buf = Vec::new();
        save_f32(&mut buf, &cfg, &weights).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_f32(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let (cfg, weights) = setup();
        let mut buf = Vec::new();
        save_f32(&mut buf, &cfg, &weights).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = load_f32(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn size_matches_parameter_count() {
        let (cfg, weights) = setup();
        let mut buf = Vec::new();
        save_f32(&mut buf, &cfg, &weights).unwrap();
        // parameters * 4 bytes + headers and matrix shape prefixes
        let min = cfg.num_parameters() * 4;
        assert!(buf.len() >= min);
        assert!(
            buf.len() < min + 1024,
            "excessive overhead: {}",
            buf.len() - min
        );
    }
}
