//! Deterministic weight initialization.
//!
//! The inference engine runs on synthetic weights (no access to real Qwen2 /
//! MiniCPM checkpoints — see DESIGN.md). All initializers are seeded so every
//! test, example and bench is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Xavier/Glorot-uniform initialization: U(−a, a) with a = sqrt(6/(fan_in+fan_out)).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Kaiming/He-normal-ish initialization via a Box–Muller pair, scaled by
/// sqrt(2/fan_in).
pub fn kaiming_normal(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / rows as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| std * sample_standard_normal(rng))
}

/// One standard-normal sample via Box–Muller.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// A vector of ones (norm gains).
pub fn ones(n: usize) -> Vec<f32> {
    vec![1.0; n]
}

/// Seeded RNG for weight construction.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded_rng(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f64 / 30.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(7));
        let b = xavier_uniform(4, 4, &mut seeded_rng(7));
        assert_eq!(a, b);
        let c = xavier_uniform(4, 4, &mut seeded_rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_roughly_zero_mean() {
        let mut rng = seeded_rng(2);
        let m = kaiming_normal(50, 50, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 2500.0;
        assert!(mean.abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_samples_have_plausible_spread() {
        let mut rng = seeded_rng(3);
        let xs: Vec<f32> = (0..2000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 1.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn ones_is_ones() {
        assert_eq!(ones(3), [1.0, 1.0, 1.0]);
    }
}
