//! Int8 weight storage and exact-integer GEMM kernels.
//!
//! ## Representation
//!
//! [`Int8Matrix`] stores a logical `in × out` projection (same orientation as
//! the f32 [`Matrix`] weights, where `y = x^T · W`) **transposed**, one
//! contiguous `i8` row per *output* channel. Each output row `j` carries one
//! scale `s_j = max_k |W[k][j]| / 127` picked by the calibration constructor
//! ([`Int8Matrix::calibrate`]); activations are quantized dynamically per
//! token with a single symmetric scale `s_x = max_k |x[k]| / 127`.
//!
//! ## Why this is bitwise-reproducible
//!
//! Every inner product is accumulated in `i32` over products of values in
//! `[-127, 127]`. Integer addition is associative *and* exact here:
//! `|acc| ≤ K · 127² < 2^31` for any `K ≤ 133 000`, far above every
//! projection in this engine, so the accumulator never saturates or rounds —
//! which means **any** reduction order (scalar, 8-lane, 16-lane, pairwise
//! `madd`) produces the same integer. The only floating-point operation is
//! the final rescale `acc as f32 * (s_x * s_j)` — one multiply per output —
//! so the scalar, AVX2, and AVX-512 kernels, blocked or single-row or
//! thread-split, are all bit-identical by construction. That makes
//! `(seed, config) → logits` a pure function for the int8 path exactly as it
//! is for f32, and lets the kernels pick whatever instruction set the host
//! has without a reproducibility caveat.
//!
//! ## Why this is fast
//!
//! Weight traffic drops 4× versus f32, and the multiply-accumulate runs on
//! `pmaddwd`-class instructions (two `i16 × i16 → i32` fused ops per lane),
//! selected at runtime: AVX-512BW, then AVX2, then a scalar fallback. The
//! blocked path additionally stages the activation block and each group of
//! four weight rows as `i16` once, so the sign-extension cost is amortized
//! across the whole block — this is where the ≥2× prefill speedup measured
//! by `quant_sweep` comes from.

use crate::linear::Linear;
use crate::matrix::Matrix;

/// Below this many multiply-accumulates, [`Int8Matrix::apply_parallel`] runs
/// serially: thread spawn overhead would dominate.
const PARALLEL_MIN_WORK: usize = 32 * 1024;

/// Instruction set the integer kernels run on, detected once per process.
/// Every level computes the exact same integers (see the module docs), so
/// the choice is invisible in the output bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SimdLevel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
        *LEVEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512bw") {
                SimdLevel::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                SimdLevel::Scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// Quantize one activation vector symmetrically to `i8`.
///
/// Returns the quantized values and the scale `s_x` such that
/// `x[k] ≈ q[k] as f32 * s_x`. A zero (or empty) vector gets scale `1.0` so
/// the dequantized product is exactly zero.
pub fn quantize_activation(x: &[f32]) -> (Vec<i8>, f32) {
    let (q16, scale) = quantize_activation_i16(x);
    (q16.iter().map(|&v| v as i8).collect(), scale)
}

/// [`quantize_activation`] storing the (identical) values widened to `i16` —
/// the staged form the `pmaddwd` kernels consume without a sign-extension in
/// the inner loop.
fn quantize_activation_i16(x: &[f32]) -> (Vec<i16>, f32) {
    let mut q = vec![0i16; x.len()];
    let scale = quantize_row_into(x, &mut q);
    (q, scale)
}

/// Round to the nearest integer, ties to even, exactly and branchlessly: for
/// `|y| < 2^22`, adding and subtracting `1.5 · 2^23` forces the mantissa to
/// integer precision under the default rounding mode. This is the rounding
/// rule of the int8 quantizer — chosen over `f32::round` (ties away from
/// zero) because it compiles to two adds instead of a libm call at the SSE2
/// baseline, which makes activation staging vectorizable and nearly free.
#[inline]
fn round_ties_even(y: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    (y + MAGIC) - MAGIC
}

/// [`quantize_activation_i16`] into a caller-provided buffer — the blocked
/// path quantizes every activation row into one flat staging area without
/// per-row allocations. Same values, same scale.
fn quantize_row_into(x: &[f32], out: &mut [i16]) -> f32 {
    debug_assert_eq!(x.len(), out.len());
    let max_abs = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    let inv = 1.0 / scale;
    for (dst, &v) in out.iter_mut().zip(x) {
        *dst = round_ties_even(v * inv).clamp(-127.0, 127.0) as i16;
    }
    scale
}

/// Scalar reference kernel: staged `i16` activation against an `i8` weight
/// row. Exact, so every SIMD kernel must (and does) reproduce it bit-for-bit.
fn dot_mixed_scalar(a16: &[i16], w: &[i8]) -> i32 {
    debug_assert_eq!(a16.len(), w.len());
    let mut acc = 0i32;
    for (&x, &wv) in a16.iter().zip(w.iter()) {
        acc += i32::from(x) * i32::from(wv);
    }
    acc
}

/// Scalar reference for the staged 4-row kernel.
fn dot4_staged_scalar(a16: &[i16], w16: &[i16], k: usize) -> [i32; 4] {
    let mut accs = [0i32; 4];
    for (jj, acc) in accs.iter_mut().enumerate() {
        let wrow = &w16[jj * k..(jj + 1) * k];
        for (&x, &wv) in a16.iter().zip(wrow.iter()) {
            *acc += i32::from(x) * i32::from(wv);
        }
    }
    accs
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX-512BW / AVX2 variants of the integer kernels. All arithmetic is
    //! exact (`i16 × i16` pair-sums into `i32` lanes, `|pair| ≤ 2 · 127²`),
    //! so these return bit-identical integers to the scalar references —
    //! asserted by the `simd_kernels_match_scalar_reference` test.
    use std::arch::x86_64::*;

    use super::Int8Matrix;
    use crate::matrix::Matrix;

    /// Full single-activation sweep over output rows `[j0, j1)` — the whole
    /// loop lives inside one `target_feature` region so the per-row dot
    /// kernel inlines instead of paying a function-call boundary per row.
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn apply_range_avx512(
        m: &Int8Matrix,
        a16: &[i16],
        sx: f32,
        j0: usize,
        j1: usize,
        out: &mut [f32],
    ) {
        for (slot, j) in out.iter_mut().zip(j0..j1) {
            let acc = dot_mixed_avx512(a16, m.weight_row(j));
            *slot = acc as f32 * (sx * m.scales[j]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn apply_range_avx2(
        m: &Int8Matrix,
        a16: &[i16],
        sx: f32,
        j0: usize,
        j1: usize,
        out: &mut [f32],
    ) {
        for (slot, j) in out.iter_mut().zip(j0..j1) {
            let acc = dot_mixed_avx2(a16, m.weight_row(j));
            *slot = acc as f32 * (sx * m.scales[j]);
        }
    }

    /// Full blocked sweep: stage each group of four weight rows as i16 once,
    /// run every activation row against the group with four shared-load
    /// accumulators, finish remainder columns with the fused kernel.
    // index-based rows: `i` addresses both `a16` (via pointer math) and `sxs`
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn apply_block_avx512(
        m: &Int8Matrix,
        a16: &[i16],
        sxs: &[f32],
        wbuf: &mut [i16],
        out: &mut Matrix,
    ) {
        let n = sxs.len();
        let k = m.in_features;
        let chunks = k / 32;
        let mut j = 0;
        while j + 4 <= m.out_features {
            m.stage_weight_rows(j, 4, wbuf);
            let w0 = wbuf.as_ptr();
            let w1 = wbuf.as_ptr().add(k);
            let w2 = wbuf.as_ptr().add(2 * k);
            let w3 = wbuf.as_ptr().add(3 * k);
            for i in 0..n {
                let a = a16.as_ptr().add(i * k);
                let mut acc0 = _mm512_setzero_si512();
                let mut acc1 = _mm512_setzero_si512();
                let mut acc2 = _mm512_setzero_si512();
                let mut acc3 = _mm512_setzero_si512();
                for c in 0..chunks {
                    let av = _mm512_loadu_si512(a.add(c * 32) as *const __m512i);
                    let l0 = _mm512_loadu_si512(w0.add(c * 32) as *const __m512i);
                    let l1 = _mm512_loadu_si512(w1.add(c * 32) as *const __m512i);
                    let l2 = _mm512_loadu_si512(w2.add(c * 32) as *const __m512i);
                    let l3 = _mm512_loadu_si512(w3.add(c * 32) as *const __m512i);
                    acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(av, l0));
                    acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(av, l1));
                    acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(av, l2));
                    acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(av, l3));
                }
                let mut t0 = _mm512_reduce_add_epi32(acc0);
                let mut t1 = _mm512_reduce_add_epi32(acc1);
                let mut t2 = _mm512_reduce_add_epi32(acc2);
                let mut t3 = _mm512_reduce_add_epi32(acc3);
                for kk in chunks * 32..k {
                    let av = i32::from(*a.add(kk));
                    t0 += av * i32::from(*w0.add(kk));
                    t1 += av * i32::from(*w1.add(kk));
                    t2 += av * i32::from(*w2.add(kk));
                    t3 += av * i32::from(*w3.add(kk));
                }
                let sx = sxs[i];
                let orow = out.row_mut(i);
                orow[j] = t0 as f32 * (sx * m.scales[j]);
                orow[j + 1] = t1 as f32 * (sx * m.scales[j + 1]);
                orow[j + 2] = t2 as f32 * (sx * m.scales[j + 2]);
                orow[j + 3] = t3 as f32 * (sx * m.scales[j + 3]);
            }
            j += 4;
        }
        for jr in j..m.out_features {
            let wrow = m.weight_row(jr);
            let sj = m.scales[jr];
            for i in 0..n {
                let arow = &a16[i * k..(i + 1) * k];
                let acc = dot_mixed_avx512(arow, wrow);
                out.row_mut(i)[jr] = acc as f32 * (sxs[i] * sj);
            }
        }
    }

    // index-based rows: `i` addresses both `a16` (via pointer math) and `sxs`
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn apply_block_avx2(
        m: &Int8Matrix,
        a16: &[i16],
        sxs: &[f32],
        wbuf: &mut [i16],
        out: &mut Matrix,
    ) {
        let n = sxs.len();
        let k = m.in_features;
        let chunks = k / 16;
        let mut j = 0;
        while j + 4 <= m.out_features {
            m.stage_weight_rows(j, 4, wbuf);
            let w0 = wbuf.as_ptr();
            let w1 = wbuf.as_ptr().add(k);
            let w2 = wbuf.as_ptr().add(2 * k);
            let w3 = wbuf.as_ptr().add(3 * k);
            for i in 0..n {
                let a = a16.as_ptr().add(i * k);
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for c in 0..chunks {
                    let av = _mm256_loadu_si256(a.add(c * 16) as *const __m256i);
                    let l0 = _mm256_loadu_si256(w0.add(c * 16) as *const __m256i);
                    let l1 = _mm256_loadu_si256(w1.add(c * 16) as *const __m256i);
                    let l2 = _mm256_loadu_si256(w2.add(c * 16) as *const __m256i);
                    let l3 = _mm256_loadu_si256(w3.add(c * 16) as *const __m256i);
                    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, l0));
                    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av, l1));
                    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(av, l2));
                    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(av, l3));
                }
                let mut t0 = hsum_epi32_avx2(acc0);
                let mut t1 = hsum_epi32_avx2(acc1);
                let mut t2 = hsum_epi32_avx2(acc2);
                let mut t3 = hsum_epi32_avx2(acc3);
                for kk in chunks * 16..k {
                    let av = i32::from(*a.add(kk));
                    t0 += av * i32::from(*w0.add(kk));
                    t1 += av * i32::from(*w1.add(kk));
                    t2 += av * i32::from(*w2.add(kk));
                    t3 += av * i32::from(*w3.add(kk));
                }
                let sx = sxs[i];
                let orow = out.row_mut(i);
                orow[j] = t0 as f32 * (sx * m.scales[j]);
                orow[j + 1] = t1 as f32 * (sx * m.scales[j + 1]);
                orow[j + 2] = t2 as f32 * (sx * m.scales[j + 2]);
                orow[j + 3] = t3 as f32 * (sx * m.scales[j + 3]);
            }
            j += 4;
        }
        for jr in j..m.out_features {
            let wrow = m.weight_row(jr);
            let sj = m.scales[jr];
            for i in 0..n {
                let arow = &a16[i * k..(i + 1) * k];
                let acc = dot_mixed_avx2(arow, wrow);
                out.row_mut(i)[jr] = acc as f32 * (sxs[i] * sj);
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn dot_mixed_avx512(a16: &[i16], w: &[i8]) -> i32 {
        let k = a16.len();
        let chunks = k / 32;
        let mut acc = _mm512_setzero_si512();
        for c in 0..chunks {
            let wv =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(w.as_ptr().add(c * 32) as *const __m256i));
            let av = _mm512_loadu_si512(a16.as_ptr().add(c * 32) as *const __m512i);
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, wv));
        }
        let mut total = _mm512_reduce_add_epi32(acc);
        for kk in chunks * 32..k {
            total += i32::from(a16[kk]) * i32::from(w[kk]);
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32_avx2(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_extracti128_si256(v, 1), _mm256_castsi256_si128(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_mixed_avx2(a16: &[i16], w: &[i8]) -> i32 {
        let k = a16.len();
        let chunks = k / 16;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            let wv =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(w.as_ptr().add(c * 16) as *const __m128i));
            let av = _mm256_loadu_si256(a16.as_ptr().add(c * 16) as *const __m256i);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, wv));
        }
        let mut total = hsum_epi32_avx2(acc);
        for kk in chunks * 16..k {
            total += i32::from(a16[kk]) * i32::from(w[kk]);
        }
        total
    }
}

/// An `in × out` projection stored as int8 with per-output-row scales.
///
/// See the module docs for the layout and the exactness argument. The
/// [`Linear`] impl guarantees `apply_block` row `i` is bit-identical to
/// `apply` of that row, and [`Int8Matrix::apply_parallel`] is bit-identical
/// to both for any thread count.
#[derive(Clone, Debug, PartialEq)]
pub struct Int8Matrix {
    in_features: usize,
    out_features: usize,
    /// `out_features` contiguous rows of `in_features` bytes (out-major).
    data: Vec<i8>,
    /// Per-output-row weight scales, `len == out_features`.
    scales: Vec<f32>,
}

impl Int8Matrix {
    /// Calibration pass: pick per-output-row scales from the f32 weights and
    /// quantize. `w` is the logical `in × out` matrix (the same orientation
    /// `ops::vecmat` consumes).
    pub fn calibrate(w: &Matrix) -> Self {
        let in_features = w.rows();
        let out_features = w.cols();
        let mut scales = vec![1.0f32; out_features];
        for (j, scale) in scales.iter_mut().enumerate() {
            let mut max_abs = 0.0f32;
            for k in 0..in_features {
                max_abs = max_abs.max(w.get(k, j).abs());
            }
            if max_abs > 0.0 {
                *scale = max_abs / 127.0;
            }
        }
        let mut data = Vec::with_capacity(out_features * in_features);
        for (j, &scale) in scales.iter().enumerate() {
            let inv = 1.0 / scale;
            for k in 0..in_features {
                data.push(round_ties_even(w.get(k, j) * inv).clamp(-127.0, 127.0) as i8);
            }
        }
        Self {
            in_features,
            out_features,
            data,
            scales,
        }
    }

    pub fn in_features(&self) -> usize {
        self.in_features
    }

    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Per-output-row weight scales chosen by calibration.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Largest per-row scale — a summary statistic the calibration report in
    /// `quant_sweep` surfaces per projection.
    pub fn max_scale(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s))
    }

    /// Actual storage footprint: the i8 payload plus the f32 scales.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i8>() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Reconstruct the f32 `in × out` matrix (`W[k][j] = q[j][k] · s_j`).
    /// Elementwise error versus the calibrated source is at most `s_j / 2`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.in_features, self.out_features);
        for j in 0..self.out_features {
            let row = self.weight_row(j);
            let s = self.scales[j];
            for (k, &q) in row.iter().enumerate() {
                out.set(k, j, f32::from(q) * s);
            }
        }
        out
    }

    #[inline]
    fn weight_row(&self, j: usize) -> &[i8] {
        &self.data[j * self.in_features..(j + 1) * self.in_features]
    }

    /// The single-activation kernel shared by `apply` and `apply_parallel`:
    /// staged activation `(a16, sx)` against output rows `j ∈ [j0, j1)`,
    /// written to `out`. Dispatches once per call; every level computes the
    /// same integers.
    fn apply_staged_range(&self, a16: &[i16], sx: f32, j0: usize, j1: usize, out: &mut [f32]) {
        debug_assert_eq!(a16.len(), self.in_features);
        debug_assert_eq!(out.len(), j1 - j0);
        match simd_level() {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { x86::apply_range_avx512(self, a16, sx, j0, j1, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { x86::apply_range_avx2(self, a16, sx, j0, j1, out) },
            SimdLevel::Scalar => {
                for (slot, j) in out.iter_mut().zip(j0..j1) {
                    let acc = dot_mixed_scalar(a16, self.weight_row(j));
                    *slot = acc as f32 * (sx * self.scales[j]);
                }
            }
        }
    }

    /// Portable blocked sweep mirroring the SIMD versions exactly.
    fn apply_block_scalar(&self, a16: &[i16], sxs: &[f32], wbuf: &mut [i16], out: &mut Matrix) {
        let n = sxs.len();
        let k = self.in_features;
        let mut j = 0;
        while j + 4 <= self.out_features {
            self.stage_weight_rows(j, 4, wbuf);
            for i in 0..n {
                let arow = &a16[i * k..(i + 1) * k];
                let accs = dot4_staged_scalar(arow, wbuf, k);
                let orow = out.row_mut(i);
                for (jj, &acc) in accs.iter().enumerate() {
                    orow[j + jj] = acc as f32 * (sxs[i] * self.scales[j + jj]);
                }
            }
            j += 4;
        }
        for jr in j..self.out_features {
            let wrow = self.weight_row(jr);
            let sj = self.scales[jr];
            for i in 0..n {
                let arow = &a16[i * k..(i + 1) * k];
                let acc = dot_mixed_scalar(arow, wrow);
                out.row_mut(i)[jr] = acc as f32 * (sxs[i] * sj);
            }
        }
    }

    /// Stage weight rows `[j, j + rows)` as `i16` into `wbuf` (row-major,
    /// `rows × in_features`).
    fn stage_weight_rows(&self, j: usize, rows: usize, wbuf: &mut [i16]) {
        let k = self.in_features;
        for jj in 0..rows {
            let src = self.weight_row(j + jj);
            for (dst, &s) in wbuf[jj * k..(jj + 1) * k].iter_mut().zip(src) {
                *dst = i16::from(s);
            }
        }
    }

    /// `apply` with an explicit thread count, bit-identical to [`Linear::apply`]
    /// for any `threads`: each output is computed by exactly one thread with
    /// the same exact-integer reduction. Used for the wide lm_head (also
    /// reachable as [`Linear::apply_parallel`]).
    ///
    /// # Panics
    /// Panics if `x.len() != in_features`.
    pub fn apply_parallel(&self, x: &[f32], threads: usize) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.in_features,
            "activation length {} must equal in_features {}",
            x.len(),
            self.in_features
        );
        let threads = threads.clamp(1, self.out_features.max(1));
        let work = self.in_features * self.out_features;
        if threads < 2 || work < PARALLEL_MIN_WORK {
            return Linear::apply(self, x);
        }
        let (a16, sx) = quantize_activation_i16(x);
        let mut out = vec![0.0f32; self.out_features];
        let chunk = self.out_features.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in out.chunks_mut(chunk).enumerate() {
                let j0 = t * chunk;
                let a16 = &a16;
                scope.spawn(move || {
                    self.apply_staged_range(a16, sx, j0, j0 + slice.len(), slice);
                });
            }
        });
        out
    }
}

impl Linear for Int8Matrix {
    fn in_features(&self) -> usize {
        self.in_features
    }

    fn out_features(&self) -> usize {
        self.out_features
    }

    /// # Panics
    /// Panics if `x.len() != in_features`.
    fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.in_features,
            "activation length {} must equal in_features {}",
            x.len(),
            self.in_features
        );
        let (a16, sx) = quantize_activation_i16(x);
        let mut out = vec![0.0f32; self.out_features];
        self.apply_staged_range(&a16, sx, 0, self.out_features, &mut out);
        out
    }

    /// # Panics
    /// Panics if `xs.cols() != in_features`.
    fn apply_block(&self, xs: &Matrix) -> Matrix {
        assert_eq!(
            xs.cols(),
            self.in_features,
            "activation cols {} must equal in_features {}",
            xs.cols(),
            self.in_features
        );
        // Stage every activation row as i16 up front (dynamic per-token
        // scales), then walk outputs four weight rows at a time: each group
        // is staged as i16 once and re-used across all activation rows, so
        // the sign-extension cost is O(k·m + n·k) instead of O(n·k·m).
        let n = xs.rows();
        let k = self.in_features;
        let mut a16 = vec![0i16; n * k];
        let mut sxs = vec![0.0f32; n];
        for i in 0..n {
            sxs[i] = quantize_row_into(xs.row(i), &mut a16[i * k..(i + 1) * k]);
        }
        let mut out = Matrix::zeros(n, self.out_features);
        let mut wbuf = vec![0i16; 4 * k];
        match simd_level() {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe {
                x86::apply_block_avx512(self, &a16, &sxs, &mut wbuf, &mut out);
            },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe {
                x86::apply_block_avx2(self, &a16, &sxs, &mut wbuf, &mut out);
            },
            SimdLevel::Scalar => self.apply_block_scalar(&a16, &sxs, &mut wbuf, &mut out),
        }
        out
    }

    fn apply_parallel(&self, x: &[f32], threads: usize) -> Vec<f32> {
        Int8Matrix::apply_parallel(self, x, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::vecmat;

    fn pseudo_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
    }

    fn pseudo_vec(n: usize, seed: u64) -> Vec<f32> {
        let m = pseudo_matrix(1, n, seed);
        m.row(0).to_vec()
    }

    #[test]
    fn calibrate_dequantize_error_bounded_by_half_scale() {
        let w = pseudo_matrix(48, 32, 3);
        let q = Int8Matrix::calibrate(&w);
        let dq = q.dequantize();
        for j in 0..w.cols() {
            let bound = q.scales()[j] * 0.5 + 1e-6;
            for k in 0..w.rows() {
                let err = (w.get(k, j) - dq.get(k, j)).abs();
                assert!(err <= bound, "err {err} > bound {bound} at ({k},{j})");
            }
        }
    }

    #[test]
    fn apply_tracks_f32_vecmat() {
        let w = pseudo_matrix(64, 48, 11);
        let q = Int8Matrix::calibrate(&w);
        let x = pseudo_vec(64, 5);
        let exact = vecmat(&x, &w);
        let approx = Linear::apply(&q, &x);
        let spread = exact.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        for (a, b) in exact.iter().zip(&approx) {
            assert!(
                (a - b).abs() / spread < 0.02,
                "int8 apply diverged: {a} vs {b} (spread {spread})"
            );
        }
    }

    #[test]
    fn block_rows_bit_identical_to_apply() {
        // Sizes straddle the 16/32-lane chunk boundaries so both the SIMD
        // body and the scalar remainder are exercised.
        for (rows, cols, n) in [(40, 24, 9), (96, 37, 5), (33, 130, 7)] {
            let w = pseudo_matrix(rows, cols, 7);
            let q = Int8Matrix::calibrate(&w);
            let xs = pseudo_matrix(n, rows, 13);
            let blk = Linear::apply_block(&q, &xs);
            for i in 0..xs.rows() {
                assert_eq!(
                    blk.row(i),
                    Linear::apply(&q, xs.row(i)).as_slice(),
                    "row {i} of blocked int8 GEMM ({rows}x{cols}) must match the \
                     single-row kernel"
                );
            }
        }
    }

    #[test]
    fn simd_kernels_match_scalar_reference() {
        // The dispatch contract: whatever level `simd_level()` picked, the
        // produced integers equal the scalar reference — on every length,
        // including ones that are all remainder.
        for k in [1usize, 7, 15, 16, 17, 31, 32, 33, 64, 96, 100, 257] {
            let w = pseudo_matrix(k, 9, k as u64 + 1);
            let q = Int8Matrix::calibrate(&w);
            let x = pseudo_vec(k, k as u64 + 77);
            let (a16, sx) = quantize_activation_i16(&x);
            let mut via_dispatch = vec![0.0f32; 9];
            q.apply_staged_range(&a16, sx, 0, 9, &mut via_dispatch);
            let scalar: Vec<f32> = (0..9)
                .map(|j| dot_mixed_scalar(&a16, q.weight_row(j)) as f32 * (sx * q.scales[j]))
                .collect();
            assert_eq!(via_dispatch, scalar, "k={k}");
            // Blocked sweep (dispatched) vs the portable scalar sweep,
            // covering the staged 4-row body and the remainder columns.
            let xs = pseudo_matrix(5, k, k as u64 + 201);
            let blk = Linear::apply_block(&q, &xs);
            let mut a16 = vec![0i16; 5 * k];
            let mut sxs = vec![0.0f32; 5];
            for i in 0..5 {
                sxs[i] = quantize_row_into(xs.row(i), &mut a16[i * k..(i + 1) * k]);
            }
            let mut scalar_blk = Matrix::zeros(5, q.out_features);
            let mut wbuf = vec![0i16; 4 * k];
            q.apply_block_scalar(&a16, &sxs, &mut wbuf, &mut scalar_blk);
            assert_eq!(blk, scalar_blk, "k={k}");
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial_for_all_thread_counts() {
        let w = pseudo_matrix(96, 512, 17);
        let q = Int8Matrix::calibrate(&w);
        let x = pseudo_vec(96, 19);
        let serial = Linear::apply(&q, &x);
        for threads in [1, 2, 3, 5, 8] {
            assert_eq!(
                q.apply_parallel(&x, threads),
                serial,
                "thread count {threads} changed int8 lm_head bits"
            );
        }
    }

    #[test]
    fn zero_matrix_and_zero_activation_are_exact() {
        let w = Matrix::zeros(8, 6);
        let q = Int8Matrix::calibrate(&w);
        assert!(q.scales().iter().all(|&s| s == 1.0));
        assert_eq!(Linear::apply(&q, &[0.5; 8]), vec![0.0; 6]);
        let w2 = pseudo_matrix(8, 6, 23);
        let q2 = Int8Matrix::calibrate(&w2);
        assert_eq!(Linear::apply(&q2, &[0.0; 8]), vec![0.0; 6]);
    }

    #[test]
    fn memory_bytes_counts_payload_and_scales() {
        let w = pseudo_matrix(32, 16, 29);
        let q = Int8Matrix::calibrate(&w);
        assert_eq!(q.memory_bytes(), 32 * 16 + 16 * 4);
        let f32_bytes = 32 * 16 * 4;
        assert!(
            q.memory_bytes() * 3 < f32_bytes,
            "int8 must be well under f32"
        );
    }

    #[test]
    fn activation_quantization_is_exact_on_small_integers() {
        let x: Vec<f32> = vec![0.0, 1.0, -3.0, 127.0, -127.0];
        let (q, s) = quantize_activation(&x);
        for (orig, &qi) in x.iter().zip(&q) {
            assert_eq!(f32::from(qi) * s, *orig);
        }
    }

    #[test]
    fn i8_and_i16_quantization_agree() {
        let x = pseudo_vec(100, 3);
        let (q8, s8) = quantize_activation(&x);
        let (q16, s16) = quantize_activation_i16(&x);
        assert_eq!(s8, s16);
        assert!(q8.iter().zip(&q16).all(|(&a, &b)| i16::from(a) == b));
    }

    #[test]
    #[should_panic(expected = "in_features")]
    fn apply_rejects_shape_mismatch() {
        let q = Int8Matrix::calibrate(&pseudo_matrix(4, 3, 1));
        Linear::apply(&q, &[1.0, 2.0]);
    }

    proptest::proptest! {
        #[test]
        fn quantized_apply_relative_error_is_small(
            rows in 4usize..48, cols in 2usize..24, seed in 0u64..500
        ) {
            let w = pseudo_matrix(rows, cols, seed);
            let q = Int8Matrix::calibrate(&w);
            let x = pseudo_vec(rows, seed.wrapping_add(101));
            let exact = vecmat(&x, &w);
            let approx = Linear::apply(&q, &x);
            let spread = exact.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-3);
            for (a, b) in exact.iter().zip(&approx) {
                proptest::prop_assert!((a - b).abs() / spread < 0.05);
            }
        }

        #[test]
        fn block_matches_apply_on_arbitrary_shapes(
            rows in 1usize..70, cols in 1usize..70, n in 1usize..6, seed in 0u64..200
        ) {
            let w = pseudo_matrix(rows, cols, seed);
            let q = Int8Matrix::calibrate(&w);
            let xs = pseudo_matrix(n, rows, seed.wrapping_add(7));
            let blk = Linear::apply_block(&q, &xs);
            for i in 0..n {
                let single = Linear::apply(&q, xs.row(i));
                proptest::prop_assert_eq!(blk.row(i), single.as_slice());
            }
        }
    }
}
