//! # tensor
//!
//! Minimal dense linear-algebra substrate for the from-scratch transformer
//! inference engine (`slm-runtime`). Deliberately small: row-major `f32`
//! matrices, a handful of BLAS-like kernels (blocked matmul, matvec), and the
//! neural-network primitives a decoder-only transformer needs (stable
//! softmax, RMSNorm, LayerNorm, GELU/SiLU).
//!
//! Everything is CPU, single-threaded and allocation-conscious: the hot paths
//! take output buffers so the inference loop can reuse scratch memory.

pub mod init;
pub mod int8;
pub mod linear;
pub mod matrix;
pub mod nn;
pub mod ops;
pub mod view;

pub use int8::Int8Matrix;
pub use linear::Linear;
pub use matrix::Matrix;
pub use view::{StridedRows, StridedRowsMut};
