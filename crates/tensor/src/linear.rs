//! The [`Linear`] abstraction: one projection, any storage precision.
//!
//! The transformer applies eight weight matrices per layer stack (Q/K/V,
//! attention output, SwiGLU gate/up/down, LM head). The attention and FFN
//! code is written once against this trait, so swapping f32 weights for the
//! int8 representation ([`crate::int8::Int8Matrix`]) swaps *only* the GEMM
//! kernel — the softmax/RoPE/residual arithmetic around it is shared code,
//! which is what makes the quantized engine's parity argument small.

use crate::matrix::Matrix;
use crate::ops::{matmul, vecmat};

/// A linear map `R^in → R^out` applied as `x^T · W`, in vector-at-a-time and
/// block (multi-row GEMM) forms.
///
/// Contract: `apply_block(xs)` row `i` must be bit-identical to
/// `apply(xs.row(i))` — every implementation keeps the single-row and blocked
/// paths interchangeable, which the prefill parity suites assert.
pub trait Linear {
    /// Input dimension (rows of the logical `in × out` weight matrix).
    fn in_features(&self) -> usize;

    /// Output dimension.
    fn out_features(&self) -> usize;

    /// `y = x^T · W` for one activation vector.
    fn apply(&self, x: &[f32]) -> Vec<f32>;

    /// Row-wise `Y = X · W`; row `i` is bit-identical to `apply(xs.row(i))`.
    fn apply_block(&self, xs: &Matrix) -> Matrix;

    /// `apply` with a thread-count hint for very wide outputs (the LM head).
    /// Must be bit-identical to [`Linear::apply`] for any `threads`; both
    /// implementations split the *output* range so each element is still
    /// computed by exactly one thread with the serial reduction order.
    fn apply_parallel(&self, x: &[f32], threads: usize) -> Vec<f32> {
        let _ = threads;
        self.apply(x)
    }
}

impl Linear for Matrix {
    fn in_features(&self) -> usize {
        self.rows()
    }

    fn out_features(&self) -> usize {
        self.cols()
    }

    fn apply(&self, x: &[f32]) -> Vec<f32> {
        vecmat(x, self)
    }

    fn apply_block(&self, xs: &Matrix) -> Matrix {
        matmul(xs, self)
    }

    fn apply_parallel(&self, x: &[f32], threads: usize) -> Vec<f32> {
        crate::ops::vecmat_parallel(x, self, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_linear_matches_free_kernels() {
        let m = Matrix::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.3 - 1.2);
        let x: Vec<f32> = (0..6).map(|i| ((i * 5) % 7) as f32 * 0.25 - 0.8).collect();
        assert_eq!(Linear::apply(&m, &x), vecmat(&x, &m));
        let xs = Matrix::from_fn(3, 6, |r, c| ((r * 13 + c) % 9) as f32 * 0.2 - 0.7);
        assert_eq!(Linear::apply_block(&m, &xs), matmul(&xs, &m));
        assert_eq!(m.in_features(), 6);
        assert_eq!(m.out_features(), 4);
    }

    #[test]
    fn block_rows_match_single_rows() {
        let m = Matrix::from_fn(5, 9, |r, c| ((r * 17 + c * 5) % 13) as f32 * 0.11 - 0.6);
        let xs = Matrix::from_fn(4, 5, |r, c| ((r * 3 + c * 7) % 8) as f32 * 0.4 - 1.1);
        let blk = Linear::apply_block(&m, &xs);
        for i in 0..xs.rows() {
            assert_eq!(
                blk.row(i),
                Linear::apply(&m, xs.row(i)).as_slice(),
                "row {i}"
            );
        }
    }
}
