//! Row-major dense `f32` matrix.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Elementwise maximum absolute difference against another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(4);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(6).map(|v| format!("{v:8.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 6 { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_rejects_bad_len() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn from_fn_fills_by_position() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn identity_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 2), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(1, 2), m.get(2, 1));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 5.0;
        assert_eq!(m.get(1, 0), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(1, 1).row(1);
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        let b = Matrix::from_vec(1, 2, vec![3.0, 6.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    proptest::proptest! {
        #[test]
        fn transpose_preserves_frobenius(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let mut s = seed;
            let m = Matrix::from_fn(rows, cols, |_, _| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / u32::MAX as f32) - 0.5
            });
            let t = m.transposed();
            proptest::prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-5);
        }
    }
}
