//! Neural-network primitives: stable softmax, RMSNorm, LayerNorm, GELU, SiLU.

/// Numerically stable in-place softmax.
///
/// Subtracts the max before exponentiation so large logits cannot overflow.
/// An empty slice is a no-op.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    } else {
        // all -inf logits: fall back to uniform
        let u = 1.0 / x.len() as f32;
        x.fill(u);
    }
}

/// Softmax returning a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Log-softmax (stable), returning a new vector.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
    x.iter().map(|v| v - max - log_sum).collect()
}

/// RMSNorm: `x_i * g_i / sqrt(mean(x^2) + eps)` — the normalization used by
/// Llama/Qwen-family decoders.
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(x.len(), gain.len(), "rmsnorm gain length mismatch");
    assert_eq!(x.len(), out.len(), "rmsnorm output length mismatch");
    if x.is_empty() {
        return;
    }
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for ((o, &xi), &gi) in out.iter_mut().zip(x).zip(gain) {
        *o = xi * inv * gi;
    }
}

/// LayerNorm with gain and bias.
pub fn layernorm(x: &[f32], gain: &[f32], bias: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(x.len(), gain.len());
    assert_eq!(x.len(), bias.len());
    assert_eq!(x.len(), out.len());
    if x.is_empty() {
        return;
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for i in 0..x.len() {
        out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
    }
}

/// Tanh-approximation GELU (the GPT-2 formulation).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// SiLU (swish): `x * sigmoid(x)` — the activation in Llama/Qwen MLPs.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Apply an activation elementwise in place.
pub fn map_inplace(x: &mut [f32], f: impl Fn(f32) -> f32) {
    for v in x.iter_mut() {
        *v = f(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_close(p.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_known_values() {
        let p = softmax(&[0.0, 0.0]);
        assert_close(p[0], 0.5, 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-6);
        }
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let p = softmax(&[1e30, 1e30]);
        assert_close(p[0], 0.5, 1e-6);
        let q = softmax(&[f32::NEG_INFINITY, 0.0]);
        assert_close(q[1], 1.0, 1e-6);
    }

    #[test]
    fn softmax_all_neg_infinity_is_uniform() {
        let p = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert_close(p[0], 0.5, 1e-6);
    }

    #[test]
    fn softmax_empty_ok() {
        softmax_inplace(&mut []);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = [0.5, -1.0, 2.0];
        let p = softmax(&x);
        let lp = log_softmax(&x);
        for (pi, lpi) in p.iter().zip(&lp) {
            assert_close(pi.ln(), *lpi, 1e-5);
        }
    }

    #[test]
    fn rmsnorm_unit_output_scale() {
        let x = [3.0, 4.0];
        let gain = [1.0, 1.0];
        let mut out = [0.0; 2];
        rmsnorm(&x, &gain, 0.0, &mut out);
        // rms of [3,4] = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert_close(out[0], 3.0 / rms, 1e-6);
        assert_close(out[1], 4.0 / rms, 1e-6);
    }

    #[test]
    fn rmsnorm_applies_gain() {
        let x = [1.0, 1.0];
        let gain = [2.0, 0.5];
        let mut out = [0.0; 2];
        rmsnorm(&x, &gain, 0.0, &mut out);
        assert_close(out[0] / out[1], 4.0, 1e-6);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let gain = [1.0; 4];
        let bias = [0.0; 4];
        let mut out = [0.0; 4];
        layernorm(&x, &gain, &bias, 1e-6, &mut out);
        let mean: f32 = out.iter().sum::<f32>() / 4.0;
        let var: f32 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert_close(mean, 0.0, 1e-5);
        assert_close(var, 1.0, 1e-3);
    }

    #[test]
    fn gelu_reference_points() {
        assert_close(gelu(0.0), 0.0, 1e-7);
        assert_close(gelu(1.0), 0.841_192, 1e-3);
        assert_close(gelu(-1.0), -0.158_808, 1e-3);
        // large inputs approach identity / zero
        assert_close(gelu(10.0), 10.0, 1e-3);
        assert_close(gelu(-10.0), 0.0, 1e-3);
    }

    #[test]
    fn silu_reference_points() {
        assert_close(silu(0.0), 0.0, 1e-7);
        assert_close(silu(1.0), 0.731_058, 1e-5);
        assert_close(silu(-1.0), -0.268_941, 1e-5);
    }

    #[test]
    fn sigmoid_bounds() {
        assert_close(sigmoid(0.0), 0.5, 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 1e-3);
    }

    proptest::proptest! {
        #[test]
        fn softmax_is_distribution(xs in proptest::collection::vec(-50f32..50.0, 1..20)) {
            let p = softmax(&xs);
            let sum: f32 = p.iter().sum();
            proptest::prop_assert!((sum - 1.0).abs() < 1e-4);
            proptest::prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn softmax_preserves_order(xs in proptest::collection::vec(-10f32..10.0, 2..10)) {
            let p = softmax(&xs);
            for i in 0..xs.len() {
                for j in 0..xs.len() {
                    if xs[i] > xs[j] {
                        proptest::prop_assert!(p[i] >= p[j]);
                    }
                }
            }
        }

        #[test]
        fn rmsnorm_output_rms_is_one(xs in proptest::collection::vec(-10f32..10.0, 1..16)) {
            proptest::prop_assume!(xs.iter().any(|&v| v.abs() > 1e-3));
            let gain = vec![1.0; xs.len()];
            let mut out = vec![0.0; xs.len()];
            rmsnorm(&xs, &gain, 1e-9, &mut out);
            let rms = (out.iter().map(|v| v * v).sum::<f32>() / out.len() as f32).sqrt();
            proptest::prop_assert!((rms - 1.0).abs() < 1e-3, "rms={rms}");
        }
    }
}
