//! BLAS-like kernels: matmul, matvec, axpy.
//!
//! The matmul uses the classic i-k-j loop order so the inner loop streams
//! both `b`'s row and the output row sequentially (cache-friendly per the
//! Rust Performance Book's data-layout advice), with a `k`-blocking layer
//! for large matrices.

use crate::matrix::Matrix;

/// Block size for the k-dimension of the blocked matmul. 64 f32s = 256 bytes,
/// several rows fit comfortably in L1.
const K_BLOCK: usize = 64;

/// Rows of `A` processed per k-panel in [`matmul_into`]. Re-using one panel of
/// `B` rows across a small block of output rows is what makes the multi-token
/// prefill a real GEMM instead of repeated vector-matrix products: `B` (the
/// weight matrix) is streamed from memory once per `I_BLOCK` rows instead of
/// once per row.
const I_BLOCK: usize = 8;

/// Minimum number of multiply-accumulate terms (`rows * cols`) before
/// [`vecmat_parallel`] spawns threads. Below this, thread spawn + join costs
/// more than the whole product (measured ~15-30 µs spawn overhead per thread
/// vs ~10 µs for a 32k-element serial vecmat); the serial path is returned
/// instead, which is bit-identical anyway.
pub const VECMAT_PARALLEL_MIN_WORK: usize = 32 * 1024;

/// `C = A · B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` into a caller-provided output (must be zeroed or the caller
/// accepts accumulation into the existing values is NOT performed: the output
/// is overwritten).
///
/// Blocked over both `k` (panel of `B` rows stays in L1) and the rows of `A`
/// (each panel is re-used for `I_BLOCK` output rows). Each output element
/// still accumulates its `k` terms in strictly ascending order with zero
/// `a[i][k]` terms skipped — exactly the order [`vecmat`] uses — so
/// `matmul_into(A, B, C)` row `i` is bit-identical to `vecmat(A.row(i), B)`.
/// The multi-token transformer prefill relies on that equivalence for its
/// bitwise-parity contract with the token-at-a-time path.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "output shape mismatch"
    );
    let n = b.cols();
    let k_total = a.cols();
    c.as_mut_slice().fill(0.0);
    for i0 in (0..a.rows()).step_by(I_BLOCK) {
        let i1 = (i0 + I_BLOCK).min(a.rows());
        for k0 in (0..k_total).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(k_total);
            for i in i0..i1 {
                let a_row = a.row(i);
                for (dk, &aik) in a_row[k0..k1].iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = b.row(k0 + dk);
                    let c_row = c.row_mut(i);
                    for (cj, &bj) in c_row[..n].iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    }
}

/// `y = M · x` (matrix–vector product).
///
/// # Panics
/// Panics if `m.cols() != x.len()`.
pub fn matvec(m: &Matrix, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0; m.rows()];
    matvec_into(m, x, &mut y);
    y
}

/// `y = M · x` into a caller-provided buffer.
pub fn matvec_into(m: &Matrix, x: &[f32], y: &mut [f32]) {
    assert_eq!(m.cols(), x.len(), "matvec shape mismatch");
    assert_eq!(m.rows(), y.len(), "output length mismatch");
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(m.row(i), x);
    }
}

/// `x^T · M` (vector–matrix product): returns a vector of length `m.cols()`.
/// Streams rows of `m`, so it is the cache-friendly direction for row-major
/// weights applied to a single activation vector.
pub fn vecmat(x: &[f32], m: &Matrix) -> Vec<f32> {
    assert_eq!(x.len(), m.rows(), "vecmat shape mismatch");
    let mut y = vec![0.0; m.cols()];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = m.row(i);
        for (yj, &mij) in y.iter_mut().zip(row) {
            *yj += xi * mij;
        }
    }
    y
}

/// `x^T · M` with the output columns split across threads.
///
/// Each output element is computed by exactly one thread in the same
/// accumulation order as [`vecmat`], so results are bit-identical to the
/// serial version — determinism survives parallelism. Worth it only for
/// wide matrices (the LM head's `hidden × vocab`): products smaller than
/// [`VECMAT_PARALLEL_MIN_WORK`] terms fall back to the serial path, where
/// thread spawn cost would dominate the arithmetic.
pub fn vecmat_parallel(x: &[f32], m: &Matrix, threads: usize) -> Vec<f32> {
    assert_eq!(x.len(), m.rows(), "vecmat shape mismatch");
    let threads = threads.clamp(1, m.cols().max(1));
    if threads == 1 || m.cols() < 2 || m.rows() * m.cols() < VECMAT_PARALLEL_MIN_WORK {
        return vecmat(x, m);
    }
    let cols = m.cols();
    let chunk = cols.div_ceil(threads);
    let mut y = vec![0.0f32; cols];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            if lo >= cols {
                break;
            }
            let hi = (lo + chunk).min(cols);
            handles.push((
                lo,
                hi,
                scope.spawn(move || {
                    let mut part = vec![0.0f32; hi - lo];
                    for (r, &xr) in x.iter().enumerate() {
                        if xr == 0.0 {
                            continue;
                        }
                        let row = &m.row(r)[lo..hi];
                        for (p, &mij) in part.iter_mut().zip(row) {
                            *p += xr * mij;
                        }
                    }
                    part
                }),
            ));
        }
        for (lo, hi, h) in handles {
            y[lo..hi].copy_from_slice(&h.join().expect("vecmat thread panicked"));
        }
    });
    y
}

/// Dot product with 4-way manual unrolling.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let base = i * 4;
        s0 += a[base] * b[base];
        s1 += a[base + 1] * b[base + 1];
        s2 += a[base + 2] * b[base + 2];
        s3 += a[base + 3] * b[base + 3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise `a * b` into `out`.
pub fn hadamard_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// L2 norm of a vector.
pub fn l2_norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum()
        })
    }

    #[test]
    fn matmul_small_hand_example() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(matmul(&a, &Matrix::identity(3)), a);
        assert_eq!(matmul(&Matrix::identity(3), &a), a);
    }

    #[test]
    fn matmul_matches_naive_on_awkward_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 65, 4), (2, 130, 3)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-3, "shape ({m},{k},{n})");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = matvec(&m, &x);
        let xs = Matrix::from_vec(4, 1, x.clone());
        let expect = matmul(&m, &xs);
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - expect.get(i, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let x = vec![1.0, 2.0, -1.0, 0.25];
        let got = vecmat(&x, &m);
        let want = matvec(&m.transposed(), &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn vecmat_parallel_is_bit_identical_to_serial() {
        // 48 x 800 = 38_400 terms, above VECMAT_PARALLEL_MIN_WORK so the
        // threaded path actually runs.
        let m = Matrix::from_fn(48, 800, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.13 - 1.0);
        assert!(m.rows() * m.cols() >= VECMAT_PARALLEL_MIN_WORK);
        let x: Vec<f32> = (0..48).map(|i| ((i * 5) % 9) as f32 * 0.2 - 0.8).collect();
        let serial = vecmat(&x, &m);
        for threads in [1, 2, 3, 7, 64, 1000] {
            assert_eq!(
                vecmat_parallel(&x, &m, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn vecmat_parallel_small_products_fall_back_to_serial() {
        // Below the min-work threshold results must still be bit-identical;
        // the threshold only changes *where* the product runs.
        let m = Matrix::from_fn(48, 200, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.13 - 1.0);
        assert!(m.rows() * m.cols() < VECMAT_PARALLEL_MIN_WORK);
        let x: Vec<f32> = (0..48).map(|i| ((i * 5) % 9) as f32 * 0.2 - 0.8).collect();
        assert_eq!(vecmat_parallel(&x, &m, 8), vecmat(&x, &m));
    }

    #[test]
    fn vecmat_parallel_tiny_matrix() {
        let m = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        assert_eq!(vecmat_parallel(&[1.0, 2.0], &m, 8), vec![11.0]);
    }

    #[test]
    fn matmul_rows_are_bit_identical_to_vecmat() {
        // The prefill parity contract: row i of A·B must carry the exact
        // bits of vecmat(A.row(i), B), for shapes that straddle both the
        // I_BLOCK and K_BLOCK boundaries.
        for (rows, k, n) in [(1, 3, 5), (7, 64, 9), (9, 65, 33), (17, 130, 8)] {
            let a = Matrix::from_fn(rows, k, |r, c| {
                let v = ((r * 29 + c * 13) % 23) as f32 * 0.17 - 1.9;
                if (r + c) % 11 == 0 {
                    0.0 // exercise the zero-skip path on both sides
                } else {
                    v
                }
            });
            let b = Matrix::from_fn(k, n, |r, c| ((r * 19 + c * 5) % 13) as f32 * 0.21 - 1.2);
            let prod = matmul(&a, &b);
            for i in 0..rows {
                assert_eq!(
                    prod.row(i),
                    vecmat(a.row(i), &b).as_slice(),
                    "({rows},{k},{n}) row {i}"
                );
            }
        }
    }

    #[test]
    fn dot_handles_remainders() {
        // length 7 exercises the tail loop
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [1.0; 7];
        assert_eq!(dot(&a, &b), 28.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn hadamard() {
        let mut out = vec![0.0; 3];
        hadamard_into(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut out);
        assert_eq!(out, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn l2() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    proptest::proptest! {
        #[test]
        fn matmul_associativity_with_vector(
            m in 1usize..5, k in 1usize..8, seed in 0u64..100
        ) {
            let mut s = seed.wrapping_add(1);
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            };
            let a = Matrix::from_fn(m, k, |_, _| next());
            let x: Vec<f32> = (0..k).map(|_| next()).collect();
            // (A·x) computed via matvec equals matmul with column vector
            let y1 = matvec(&a, &x);
            let y2 = matmul(&a, &Matrix::from_vec(k, 1, x.clone()));
            for (i, v) in y1.iter().enumerate() {
                proptest::prop_assert!((v - y2.get(i, 0)).abs() < 1e-4);
            }
        }
    }
}
