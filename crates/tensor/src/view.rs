//! Block-strided row views over flat buffers.
//!
//! A paged KV pool stores one fixed-size block as a single flat buffer in
//! position-major order (`[slot][layer][K/V][dim]`), so the rows of one
//! attention plane — the K (or V) vectors of one layer across the block's
//! slots — are *strided*: consecutive rows sit `n_layers * 2 * kv_dim`
//! floats apart. [`StridedRows`] and [`StridedRowsMut`] give attention code
//! slice-per-row access to such a plane without copying or transposing,
//! with the same bounds discipline as [`crate::Matrix::row`].

/// An immutable view of `rows` equal-width rows embedded in a flat buffer
/// at a fixed stride (`stride >= cols`). `stride == cols` degenerates to a
/// dense row-major view.
#[derive(Debug, Clone, Copy)]
pub struct StridedRows<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> StridedRows<'a> {
    /// View `rows` rows of `cols` floats each, starting at `data[0]`, with
    /// consecutive rows `stride` floats apart.
    ///
    /// # Panics
    /// Panics when `stride < cols` or the last row overruns `data`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "stride {stride} below row width {cols}");
        if rows > 0 {
            let needed = (rows - 1) * stride + cols;
            assert!(
                data.len() >= needed,
                "buffer holds {} floats, view needs {needed}",
                data.len()
            );
        }
        Self {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width of each row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &'a [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.stride..r * self.stride + self.cols]
    }
}

/// The mutable counterpart of [`StridedRows`]: write access to one strided
/// plane of a flat buffer, one row at a time.
#[derive(Debug)]
pub struct StridedRowsMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> StridedRowsMut<'a> {
    /// Mutable view with the same geometry rules as [`StridedRows::new`].
    ///
    /// # Panics
    /// Panics when `stride < cols` or the last row overruns `data`.
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "stride {stride} below row width {cols}");
        if rows > 0 {
            let needed = (rows - 1) * stride + cols;
            assert!(
                data.len() >= needed,
                "buffer holds {} floats, view needs {needed}",
                data.len()
            );
        }
        Self {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width of each row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.stride..r * self.stride + self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_view_matches_plain_slicing() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = StridedRows::new(&data, 4, 3, 3);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(v.row(3), &[9.0, 10.0, 11.0]);
    }

    #[test]
    fn strided_view_skips_interleaved_planes() {
        // Two interleaved planes of width 2 (stride 4): rows of plane B
        // start at offset 2.
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let a = StridedRows::new(&data, 3, 2, 4);
        let b = StridedRows::new(&data[2..], 3, 2, 4);
        assert_eq!(a.row(1), &[4.0, 5.0]);
        assert_eq!(b.row(1), &[6.0, 7.0]);
        assert_eq!(b.row(2), &[10.0, 11.0]);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut data = vec![0.0f32; 10];
        {
            let mut v = StridedRowsMut::new(&mut data, 2, 2, 5);
            v.row_mut(0).copy_from_slice(&[1.0, 2.0]);
            v.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        }
        assert_eq!(data, vec![1.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_view_is_fine() {
        let data: [f32; 0] = [];
        let v = StridedRows::new(&data, 0, 4, 4);
        assert_eq!(v.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "below row width")]
    fn stride_under_cols_panics() {
        let data = [0.0f32; 8];
        StridedRows::new(&data, 2, 3, 2);
    }

    #[test]
    #[should_panic(expected = "view needs")]
    fn overrun_panics() {
        let data = [0.0f32; 5];
        StridedRows::new(&data, 2, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let data = [0.0f32; 6];
        StridedRows::new(&data, 2, 3, 3).row(2);
    }
}
