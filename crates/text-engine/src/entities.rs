//! Fact-bearing entity extraction.
//!
//! The HR-handbook dataset of the paper turns on small factual atoms: clock
//! times ("9 AM to 5 PM"), weekday ranges ("Sunday to Saturday"), counts
//! ("three shopkeepers"), durations ("14 days of annual leave"), money and
//! percentages. Hallucinations in the *wrong* and *partial* responses are
//! precisely perturbations of these atoms, so the behavioral verifiers
//! compare extracted entities between a response sentence and its context.

use crate::token::{tokenize, Token};

/// Canonical weekday, Monday = 0 … Sunday = 6.
pub type Weekday = u8;

/// Unit for duration entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DurationUnit {
    Minutes,
    Hours,
    Days,
    Weeks,
    Months,
    Years,
}

impl DurationUnit {
    /// Convert a value in this unit to minutes (months ≈ 30 days, years ≈ 365).
    pub fn to_minutes(self, value: f64) -> f64 {
        match self {
            DurationUnit::Minutes => value,
            DurationUnit::Hours => value * 60.0,
            DurationUnit::Days => value * 60.0 * 24.0,
            DurationUnit::Weeks => value * 60.0 * 24.0 * 7.0,
            DurationUnit::Months => value * 60.0 * 24.0 * 30.0,
            DurationUnit::Years => value * 60.0 * 24.0 * 365.0,
        }
    }
}

/// The typed payload of an extracted entity.
#[derive(Debug, Clone, PartialEq)]
pub enum EntityKind {
    /// Clock time as minutes past midnight.
    Time(u16),
    /// Inclusive clock-time range (start, end) in minutes past midnight.
    TimeRange(u16, u16),
    /// A single weekday.
    Weekday(Weekday),
    /// Inclusive weekday range (start, end), wrapping allowed ("Sat to Mon").
    WeekdayRange(Weekday, Weekday),
    /// A bare number (count, section number…).
    Number(f64),
    /// A duration with unit.
    Duration(f64, DurationUnit),
    /// A money amount (currency is normalized away; the datasets use one).
    Money(f64),
    /// A percentage value.
    Percent(f64),
    /// A calendar date within a year: (month 1-12, day 1-31).
    Date(u8, u8),
}

impl EntityKind {
    /// Do two entities of the same kind denote the same fact?
    pub fn matches(&self, other: &EntityKind) -> bool {
        const EPS: f64 = 1e-9;
        match (self, other) {
            (EntityKind::Time(a), EntityKind::Time(b)) => a == b,
            (EntityKind::TimeRange(a1, a2), EntityKind::TimeRange(b1, b2)) => a1 == b1 && a2 == b2,
            (EntityKind::Weekday(a), EntityKind::Weekday(b)) => a == b,
            (EntityKind::WeekdayRange(a1, a2), EntityKind::WeekdayRange(b1, b2)) => {
                expand_weekday_range(*a1, *a2) == expand_weekday_range(*b1, *b2)
            }
            (EntityKind::Number(a), EntityKind::Number(b)) => (a - b).abs() < EPS,
            (EntityKind::Duration(av, au), EntityKind::Duration(bv, bu)) => {
                (au.to_minutes(*av) - bu.to_minutes(*bv)).abs() < EPS
            }
            (EntityKind::Money(a), EntityKind::Money(b)) => (a - b).abs() < EPS,
            (EntityKind::Percent(a), EntityKind::Percent(b)) => (a - b).abs() < EPS,
            (EntityKind::Date(m1, d1), EntityKind::Date(m2, d2)) => m1 == m2 && d1 == d2,
            _ => false,
        }
    }

    /// Are the two entities comparable (same category of fact)?
    pub fn same_category(&self, other: &EntityKind) -> bool {
        use EntityKind::*;
        matches!(
            (self, other),
            (Time(_), Time(_))
                | (TimeRange(..), TimeRange(..))
                | (Weekday(_), Weekday(_))
                | (WeekdayRange(..), WeekdayRange(..))
                | (Number(_), Number(_))
                | (Duration(..), Duration(..))
                | (Money(_), Money(_))
                | (Percent(_), Percent(_))
                | (Date(..), Date(..))
        )
    }
}

/// An extracted entity with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    pub kind: EntityKind,
    /// Byte offset of the first token of the entity.
    pub start: usize,
    /// Byte offset one past the last token of the entity.
    pub end: usize,
}

/// Expand an inclusive weekday range into the set of days it covers,
/// wrapping across the week boundary when start > end.
pub fn expand_weekday_range(start: Weekday, end: Weekday) -> Vec<Weekday> {
    let mut days = Vec::new();
    let mut d = start % 7;
    loop {
        days.push(d);
        if d == end % 7 {
            break;
        }
        d = (d + 1) % 7;
    }
    days.sort_unstable();
    days
}

fn parse_weekday(word: &str) -> Option<Weekday> {
    let w = word.to_ascii_lowercase();
    let day = match w.as_str() {
        "monday" | "mon" | "mondays" => 0,
        "tuesday" | "tue" | "tues" | "tuesdays" => 1,
        "wednesday" | "wed" | "wednesdays" => 2,
        "thursday" | "thu" | "thur" | "thurs" | "thursdays" => 3,
        "friday" | "fri" | "fridays" => 4,
        "saturday" | "sat" | "saturdays" => 5,
        "sunday" | "sun" | "sundays" => 6,
        _ => return None,
    };
    Some(day)
}

/// Month name → 1-12.
fn parse_month(word: &str) -> Option<u8> {
    let m = match word.to_ascii_lowercase().as_str() {
        "january" | "jan" => 1,
        "february" | "feb" => 2,
        "march" => 3,
        "april" | "apr" => 4,
        "may" => 5,
        "june" | "jun" => 6,
        "july" | "jul" => 7,
        "august" | "aug" => 8,
        "september" | "sep" | "sept" => 9,
        "october" | "oct" => 10,
        "november" | "nov" => 11,
        "december" | "dec" => 12,
        _ => return None,
    };
    Some(m)
}

/// Ordinal day token ("25th", "1st", "2nd", "3rd") → day number.
fn parse_ordinal_day(text: &str) -> Option<u8> {
    let digits = text
        .strip_suffix("st")
        .or_else(|| text.strip_suffix("nd"))
        .or_else(|| text.strip_suffix("rd"))
        .or_else(|| text.strip_suffix("th"))?;
    let d: u8 = digits.parse().ok()?;
    (1..=31).contains(&d).then_some(d)
}

fn parse_number_word(word: &str) -> Option<f64> {
    let n = match word.to_ascii_lowercase().as_str() {
        "zero" => 0.0,
        "one" => 1.0,
        "two" => 2.0,
        "three" => 3.0,
        "four" => 4.0,
        "five" => 5.0,
        "six" => 6.0,
        "seven" => 7.0,
        "eight" => 8.0,
        "nine" => 9.0,
        "ten" => 10.0,
        "eleven" => 11.0,
        "twelve" => 12.0,
        "fifteen" => 15.0,
        "twenty" => 20.0,
        "thirty" => 30.0,
        _ => return None,
    };
    Some(n)
}

fn parse_numeric(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|c| *c != ',').collect();
    cleaned.parse::<f64>().ok()
}

/// Magnitude multiplier words ("500 thousand", "2 million", "500 k").
fn parse_magnitude(word: &str) -> Option<f64> {
    match word.to_ascii_lowercase().as_str() {
        "hundred" => Some(100.0),
        "thousand" | "k" => Some(1_000.0),
        "million" => Some(1_000_000.0),
        "billion" => Some(1_000_000_000.0),
        _ => None,
    }
}

fn parse_duration_unit(word: &str) -> Option<DurationUnit> {
    let u = match word.to_ascii_lowercase().as_str() {
        "minute" | "minutes" | "min" | "mins" => DurationUnit::Minutes,
        "hour" | "hours" | "hr" | "hrs" => DurationUnit::Hours,
        "day" | "days" => DurationUnit::Days,
        "week" | "weeks" => DurationUnit::Weeks,
        "month" | "months" => DurationUnit::Months,
        "year" | "years" => DurationUnit::Years,
        _ => return None,
    };
    Some(u)
}

/// Is `word` an AM marker ("am", "a.m")? The tokenizer strips the final dot.
fn is_am(word: &str) -> bool {
    matches!(word.to_ascii_lowercase().as_str(), "am" | "a.m" | "a.m.")
}

fn is_pm(word: &str) -> bool {
    matches!(word.to_ascii_lowercase().as_str(), "pm" | "p.m" | "p.m.")
}

fn is_range_connector(word: &str) -> bool {
    matches!(
        word.to_ascii_lowercase().as_str(),
        "to" | "through" | "until" | "till" | "-" | "–"
    )
}

/// Parse a token like "9", "9.30" or "17:30" into minutes past midnight,
/// honouring an optional AM/PM marker that follows.
fn time_minutes(tok: &str, meridiem: Option<bool /* pm */>) -> Option<u16> {
    let (h, m): (u16, u16) = if let Some((hh, mm)) = tok.split_once(':') {
        (hh.parse().ok()?, mm.parse().ok()?)
    } else if let Some((hh, mm)) = tok.split_once('.') {
        (hh.parse().ok()?, mm.parse().ok()?)
    } else {
        (tok.parse().ok()?, 0)
    };
    if h > 23 || m > 59 {
        return None;
    }
    let h24 = match meridiem {
        Some(true) if h < 12 => h + 12, // PM
        Some(false) if h == 12 => 0,    // 12 AM
        _ => h,
    };
    Some(h24 * 60 + m)
}

struct Cursor<'a> {
    toks: Vec<Token<'a>>,
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, offset: usize) -> Option<&Token<'a>> {
        self.toks.get(self.i + offset)
    }
}

/// Extract all entities from `text`, left to right, longest match first.
///
/// ```
/// use text_engine::entities::{extract_entities, EntityKind};
/// let ents = extract_entities("The store operates from 9 AM to 5 PM, Sunday to Saturday.");
/// assert!(ents.iter().any(|e| matches!(e.kind, EntityKind::TimeRange(540, 1020))));
/// assert!(ents.iter().any(|e| matches!(e.kind, EntityKind::WeekdayRange(6, 5))));
/// ```
pub fn extract_entities(text: &str) -> Vec<Entity> {
    let mut cur = Cursor {
        toks: tokenize(text),
        i: 0,
    };
    let mut out = Vec::new();
    while cur.i < cur.toks.len() {
        if let Some((ent, advance)) = match_at(&cur) {
            out.push(ent);
            cur.i += advance;
        } else {
            cur.i += 1;
        }
    }
    out
}

/// Try every pattern at the cursor; return the entity and how many tokens it consumed.
fn match_at(cur: &Cursor<'_>) -> Option<(Entity, usize)> {
    let t0 = cur.peek(0)?;

    // Collective day words: "weekends" = Sat–Sun, "weekdays" = Mon–Fri.
    match t0.text.to_ascii_lowercase().as_str() {
        "weekend" | "weekends" => {
            return Some((
                Entity {
                    kind: EntityKind::WeekdayRange(5, 6),
                    start: t0.start,
                    end: t0.end,
                },
                1,
            ));
        }
        "weekday" | "weekdays" => {
            return Some((
                Entity {
                    kind: EntityKind::WeekdayRange(0, 4),
                    start: t0.start,
                    end: t0.end,
                },
                1,
            ));
        }
        _ => {}
    }

    // Month-led dates: "June 25", "June 25th". Lowercase "may" is almost
    // always the modal verb, so the month reading requires capitalization.
    let month_of = |text: &str| {
        if text.eq_ignore_ascii_case("may") && !text.starts_with('M') {
            None
        } else {
            parse_month(text)
        }
    };
    if let Some(month) = month_of(t0.text) {
        if let Some(t1) = cur.peek(1) {
            let day = t1
                .text
                .parse::<u8>()
                .ok()
                .filter(|d| (1..=31).contains(d))
                .or_else(|| parse_ordinal_day(t1.text));
            if let Some(day) = day {
                return Some((
                    Entity {
                        kind: EntityKind::Date(month, day),
                        start: t0.start,
                        end: t1.end,
                    },
                    2,
                ));
            }
        }
    }

    // Day-led dates: "25th of June", "25 June".
    if let Some(day) = parse_ordinal_day(t0.text) {
        let (month_tok, consumed) = match (cur.peek(1), cur.peek(2)) {
            (Some(of), Some(m)) if of.text.eq_ignore_ascii_case("of") => (Some(m), 3),
            (Some(m), _) => (Some(m), 2),
            _ => (None, 0),
        };
        if let Some(m) = month_tok {
            if let Some(month) = month_of(m.text) {
                return Some((
                    Entity {
                        kind: EntityKind::Date(month, day),
                        start: t0.start,
                        end: m.end,
                    },
                    consumed,
                ));
            }
        }
    }

    // Weekday or weekday range.
    if let Some(d1) = parse_weekday(t0.text) {
        if let (Some(conn), Some(t2)) = (cur.peek(1), cur.peek(2)) {
            if is_range_connector(conn.text) {
                if let Some(d2) = parse_weekday(t2.text) {
                    return Some((
                        Entity {
                            kind: EntityKind::WeekdayRange(d1, d2),
                            start: t0.start,
                            end: t2.end,
                        },
                        3,
                    ));
                }
            }
        }
        return Some((
            Entity {
                kind: EntityKind::Weekday(d1),
                start: t0.start,
                end: t0.end,
            },
            1,
        ));
    }

    // Money: "$ 1200", "HK $ 12,000".
    if t0.text == "$" {
        if let Some(t1) = cur.peek(1) {
            if let Some(v) = parse_numeric(t1.text) {
                return Some((
                    Entity {
                        kind: EntityKind::Money(v),
                        start: t0.start,
                        end: t1.end,
                    },
                    2,
                ));
            }
        }
    }

    // Numeric-led patterns. Colon forms ("17:30") are times, not numbers.
    let value = parse_numeric(t0.text).or_else(|| parse_number_word(t0.text));
    let colon_time = t0.text.contains(':') && numericish(t0.text).is_some();
    if value.is_none() && !colon_time {
        return None;
    }

    // Time with meridiem, possibly a range: "9 AM to 5 PM", "9 to 5 PM", "17:30".
    if let Some((time_ent, consumed)) = match_time(cur, t0) {
        return Some((time_ent, consumed));
    }

    let value = value?;

    // Percent: "15 %", "15 percent".
    if let Some(t1) = cur.peek(1) {
        let p = t1.text.to_ascii_lowercase();
        if p == "%" || p == "percent" {
            return Some((
                Entity {
                    kind: EntityKind::Percent(value),
                    start: t0.start,
                    end: t1.end,
                },
                2,
            ));
        }
    }

    // Numeric-led date: "25 June", "25th of June" (the tokenizer splits
    // "25th" into "25" + "th", so the ordinal suffix is its own token).
    if (1.0..=31.0).contains(&value) && value.fract() == 0.0 {
        let mut i = 1;
        if cur.peek(i).is_some_and(|t| {
            matches!(
                t.text.to_ascii_lowercase().as_str(),
                "st" | "nd" | "rd" | "th"
            )
        }) {
            i += 1;
        }
        if cur
            .peek(i)
            .is_some_and(|t| t.text.eq_ignore_ascii_case("of"))
        {
            i += 1;
        }
        if let Some(m) = cur.peek(i) {
            if let Some(month) = parse_month(m.text) {
                // lowercase "may" reads as the modal verb, not the month
                if !m.text.eq_ignore_ascii_case("may") || m.text.starts_with('M') {
                    return Some((
                        Entity {
                            kind: EntityKind::Date(month, value as u8),
                            start: t0.start,
                            end: m.end,
                        },
                        i + 1,
                    ));
                }
            }
        }
    }

    // Duration: "14 days", "three months".
    if let Some(t1) = cur.peek(1) {
        if let Some(unit) = parse_duration_unit(t1.text) {
            return Some((
                Entity {
                    kind: EntityKind::Duration(value, unit),
                    start: t0.start,
                    end: t1.end,
                },
                2,
            ));
        }
        // Magnitude words: "500 thousand", "2 million", "500k".
        if let Some(mult) = parse_magnitude(t1.text) {
            return Some((
                Entity {
                    kind: EntityKind::Number(value * mult),
                    start: t0.start,
                    end: t1.end,
                },
                2,
            ));
        }
    }

    // Bare number.
    Some((
        Entity {
            kind: EntityKind::Number(value),
            start: t0.start,
            end: t0.end,
        },
        1,
    ))
}

/// Match time and time-range patterns starting at a numeric token.
fn match_time(cur: &Cursor<'_>, t0: &Token<'_>) -> Option<(Entity, usize)> {
    // 24-hour colon form never needs a meridiem.
    let colon0 = t0.text.contains(':');

    let t1 = cur.peek(1);
    let meridiem0 = t1.and_then(|t| meridiem_of(t.text));

    // Case A: "<time> <am/pm> to <time> <am/pm>" (second meridiem optional).
    if let Some(m0) = meridiem0 {
        let start_min = time_minutes(t0.text, Some(m0))?;
        if let (Some(conn), Some(t3)) = (cur.peek(2), cur.peek(3)) {
            if is_range_connector(conn.text) {
                if let Some(end_val) = numericish(t3.text) {
                    let m1 = cur.peek(4).and_then(|t| meridiem_of(t.text));
                    let end_min = time_minutes(&end_val, m1.or(Some(m0)))?;
                    let (end_tok, consumed) = if m1.is_some() {
                        (cur.peek(4)?, 5)
                    } else {
                        (t3, 4)
                    };
                    return Some((
                        Entity {
                            kind: EntityKind::TimeRange(start_min, end_min),
                            start: t0.start,
                            end: end_tok.end,
                        },
                        consumed,
                    ));
                }
            }
        }
        let end_tok = t1?;
        return Some((
            Entity {
                kind: EntityKind::Time(start_min),
                start: t0.start,
                end: end_tok.end,
            },
            2,
        ));
    }

    // Case B: "9 to 5 PM" — meridiem only on the end time.
    if let (Some(conn), Some(t2)) = (cur.peek(1), cur.peek(2)) {
        if is_range_connector(conn.text) {
            if let Some(end_val) = numericish(t2.text) {
                if let Some(m) = cur.peek(3).and_then(|t| meridiem_of(t.text)) {
                    // Infer start meridiem: 9 to 5 PM means 9 AM unless start > end.
                    let end_min = time_minutes(&end_val, Some(m))?;
                    let naive = time_minutes(t0.text, None)?;
                    let start_min = if naive < end_min {
                        naive
                    } else {
                        time_minutes(t0.text, Some(!m))?
                    };
                    return Some((
                        Entity {
                            kind: EntityKind::TimeRange(start_min, end_min),
                            start: t0.start,
                            end: cur.peek(3)?.end,
                        },
                        4,
                    ));
                }
                // "17:30 to 21:00" — colon forms both sides.
                if colon0 && end_val.contains(':') {
                    let start_min = time_minutes(t0.text, None)?;
                    let end_min = time_minutes(&end_val, None)?;
                    return Some((
                        Entity {
                            kind: EntityKind::TimeRange(start_min, end_min),
                            start: t0.start,
                            end: t2.end,
                        },
                        3,
                    ));
                }
            }
        }
    }

    // Case C: lone colon time "17:30".
    if colon0 {
        let min = time_minutes(t0.text, None)?;
        return Some((
            Entity {
                kind: EntityKind::Time(min),
                start: t0.start,
                end: t0.end,
            },
            1,
        ));
    }

    None
}

fn meridiem_of(word: &str) -> Option<bool> {
    if is_pm(word) {
        Some(true)
    } else if is_am(word) {
        Some(false)
    } else {
        None
    }
}

/// Accept numeric-looking tokens (digits, colon or dot forms) for time parsing.
fn numericish(text: &str) -> Option<String> {
    if text
        .chars()
        .all(|c| c.is_ascii_digit() || c == ':' || c == '.')
        && text.chars().any(|c| c.is_ascii_digit())
    {
        Some(text.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<EntityKind> {
        extract_entities(text).into_iter().map(|e| e.kind).collect()
    }

    #[test]
    fn paper_context_sentence() {
        let ents = kinds("The store operates from 9 AM to 5 PM, from Sunday to Saturday.");
        assert!(ents.contains(&EntityKind::TimeRange(9 * 60, 17 * 60)));
        assert!(ents.contains(&EntityKind::WeekdayRange(6, 5)));
    }

    #[test]
    fn wrong_response_differs() {
        let good = kinds("The working hours are 9 AM to 5 PM.");
        let bad = kinds("The working hours are 9 AM to 9 PM.");
        assert_ne!(good, bad);
        assert!(matches!(bad[0], EntityKind::TimeRange(540, 1260)));
    }

    #[test]
    fn single_time_with_meridiem() {
        assert_eq!(kinds("at 5 PM"), [EntityKind::Time(17 * 60)]);
        assert_eq!(kinds("by 9 am"), [EntityKind::Time(9 * 60)]);
    }

    #[test]
    fn dotted_meridiem() {
        // tokenizer yields "a.m" with trailing dot split off
        assert_eq!(kinds("at 9 a.m. sharp")[0], EntityKind::Time(9 * 60));
    }

    #[test]
    fn twelve_edge_cases() {
        assert_eq!(kinds("12 AM")[0], EntityKind::Time(0));
        assert_eq!(kinds("12 PM")[0], EntityKind::Time(12 * 60));
    }

    #[test]
    fn colon_times() {
        assert_eq!(kinds("17:30")[0], EntityKind::Time(17 * 60 + 30));
        assert_eq!(kinds("09:00 to 17:30")[0], EntityKind::TimeRange(540, 1050));
    }

    #[test]
    fn half_hour_dot_form() {
        assert_eq!(kinds("9.30 am")[0], EntityKind::Time(9 * 60 + 30));
    }

    #[test]
    fn inferred_start_meridiem() {
        assert_eq!(kinds("9 to 5 PM")[0], EntityKind::TimeRange(540, 1020));
        // start would exceed end as AM → flip to PM… 10 PM to 2 AM style
        assert_eq!(
            kinds("10 to 2 AM")[0],
            EntityKind::TimeRange(22 * 60, 2 * 60)
        );
    }

    #[test]
    fn weekday_singleton_and_plural() {
        assert_eq!(kinds("on Monday")[0], EntityKind::Weekday(0));
        assert_eq!(kinds("on Sundays")[0], EntityKind::Weekday(6));
    }

    #[test]
    fn weekday_range_wraps() {
        assert_eq!(expand_weekday_range(5, 0), vec![0, 5, 6]); // Sat..Mon
        assert_eq!(expand_weekday_range(0, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(expand_weekday_range(3, 3), vec![3]);
    }

    #[test]
    fn weekday_range_equivalence() {
        // Sunday..Saturday covers all 7 days, same as Monday..Sunday.
        let a = EntityKind::WeekdayRange(6, 5);
        let b = EntityKind::WeekdayRange(0, 6);
        assert!(a.matches(&b));
        let c = EntityKind::WeekdayRange(0, 4); // Mon..Fri
        assert!(!a.matches(&c));
    }

    #[test]
    fn durations() {
        assert_eq!(
            kinds("14 days of leave")[0],
            EntityKind::Duration(14.0, DurationUnit::Days)
        );
        assert_eq!(
            kinds("three months")[0],
            EntityKind::Duration(3.0, DurationUnit::Months)
        );
        assert_eq!(
            kinds("1.5 hours")[0],
            EntityKind::Duration(1.5, DurationUnit::Hours)
        );
    }

    #[test]
    fn duration_unit_conversion_equates() {
        let a = EntityKind::Duration(2.0, DurationUnit::Weeks);
        let b = EntityKind::Duration(14.0, DurationUnit::Days);
        assert!(a.matches(&b));
    }

    #[test]
    fn weekend_and_weekday_words() {
        assert_eq!(
            kinds("closed on weekends")[0],
            EntityKind::WeekdayRange(5, 6)
        );
        assert_eq!(kinds("open on weekdays")[0], EntityKind::WeekdayRange(0, 4));
        // "weekdays" is equivalent to the explicit Monday-to-Friday range
        assert!(EntityKind::WeekdayRange(0, 4).matches(&kinds("Monday to Friday")[0]));
    }

    #[test]
    fn number_words() {
        assert_eq!(kinds("three shopkeepers")[0], EntityKind::Number(3.0));
    }

    #[test]
    fn money_and_percent() {
        assert_eq!(kinds("a bonus of $1,200")[0], EntityKind::Money(1200.0));
        assert_eq!(kinds("15% discount")[0], EntityKind::Percent(15.0));
        assert_eq!(kinds("15 percent discount")[0], EntityKind::Percent(15.0));
    }

    #[test]
    fn bare_numbers() {
        assert_eq!(kinds("section 7")[0], EntityKind::Number(7.0));
    }

    #[test]
    fn magnitude_words_multiply() {
        assert_eq!(
            kinds("over 500 thousand residents")[0],
            EntityKind::Number(500_000.0)
        );
        assert_eq!(kinds("2 million users")[0], EntityKind::Number(2_000_000.0));
        // tokenizer splits "500k" into "500" + "k"
        assert_eq!(
            kinds("a population of 500k")[0],
            EntityKind::Number(500_000.0)
        );
        // a small population does NOT match the large one
        assert!(!kinds("500 residents")[0].matches(&EntityKind::Number(500_000.0)));
    }

    #[test]
    fn dates_month_led_and_day_led() {
        assert_eq!(kinds("review on June 25")[0], EntityKind::Date(6, 25));
        assert_eq!(kinds("due by the 25th of June")[0], EntityKind::Date(6, 25));
        assert_eq!(kinds("paid on 25 June")[0], EntityKind::Date(6, 25));
        assert_eq!(kinds("March 3rd deadline")[0], EntityKind::Date(3, 3));
    }

    #[test]
    fn date_mismatch_detected() {
        let a = &kinds("June 25")[0];
        assert!(a.matches(&EntityKind::Date(6, 25)));
        assert!(!a.matches(&EntityKind::Date(6, 26)));
        assert!(!a.matches(&EntityKind::Date(7, 25)));
        assert!(a.same_category(&EntityKind::Date(1, 1)));
    }

    #[test]
    fn ordinal_without_month_is_not_a_date() {
        // "the 25th floor" — ordinal with no month context stays un-extracted
        // as a date (no false Date entity)
        let ents = kinds("meet on the 25th floor");
        assert!(
            ents.iter().all(|e| !matches!(e, EntityKind::Date(..))),
            "{ents:?}"
        );
    }

    #[test]
    fn month_abbreviations() {
        assert_eq!(kinds("starting Sep 1")[0], EntityKind::Date(9, 1));
    }

    #[test]
    fn category_comparison() {
        assert!(EntityKind::Time(0).same_category(&EntityKind::Time(60)));
        assert!(!EntityKind::Time(0).same_category(&EntityKind::Number(0.0)));
    }

    #[test]
    fn no_entities_in_plain_prose() {
        assert!(kinds("the policy applies to everyone").is_empty());
    }

    #[test]
    fn spans_cover_source() {
        let src = "open 9 AM to 5 PM on Monday";
        for e in extract_entities(src) {
            assert!(e.start < e.end && e.end <= src.len());
        }
    }

    proptest::proptest! {
        #[test]
        fn extraction_never_panics(s in "[a-zA-Z0-9 :.%$,!?-]{0,100}") {
            let _ = extract_entities(&s);
        }

        #[test]
        fn expand_range_always_nonempty(a in 0u8..7, b in 0u8..7) {
            let days = expand_weekday_range(a, b);
            proptest::prop_assert!(!days.is_empty());
            proptest::prop_assert!(days.len() <= 7);
            proptest::prop_assert!(days.contains(&a) && days.contains(&b));
        }
    }
}
