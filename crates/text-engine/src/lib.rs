//! # text-engine
//!
//! Text-processing substrate for the hallucination-detection workspace.
//!
//! The paper ("Hallucination Detection with Small Language Models", ICDE 2025)
//! relies on spaCy for sentence segmentation and on the tokenization pipelines
//! embedded in its small language models. This crate provides from-scratch,
//! dependency-free equivalents:
//!
//! * [`normalize`] — text canonicalization (case folding, whitespace collapse,
//!   light unicode folding).
//! * [`token`] — span-preserving word tokenization.
//! * [`sentence`] — the paper's **Splitter** component: a rule-based sentence
//!   segmenter that handles abbreviations, initials, decimals, ellipses and
//!   quoted sentences.
//! * [`stem`] — a complete Porter stemmer.
//! * [`stopwords`] — an English stopword list.
//! * [`ngram`] — word and character n-grams.
//! * [`entities`] — extraction of the fact-bearing tokens the HR-handbook
//!   dataset turns on: clock times, weekdays and weekday ranges, numbers,
//!   durations, money and percentages.
//! * [`similarity`] — set and bag similarity measures (Jaccard, Dice, overlap,
//!   cosine over count vectors).
//! * [`tfidf`] — a corpus-level TF-IDF vectorizer used by the vector-database
//!   embedders.

pub mod entities;
pub mod ngram;
pub mod normalize;
pub mod sentence;
pub mod similarity;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod token;

pub use entities::{extract_entities, Entity, EntityKind};
pub use normalize::normalize;
pub use sentence::{split_sentences, SentenceSplitter};
pub use similarity::{cosine_counts, dice, jaccard, overlap_coefficient};
pub use stem::porter_stem;
pub use token::{tokenize, tokenize_words, Token};
