//! Word and character n-grams.
//!
//! Character n-grams feed the hashing embedder in `vectordb` (robust to
//! typos and inflection); word n-grams feed phrase-level similarity in the
//! behavioral verifiers.

use std::collections::HashMap;

/// All word n-grams of order `n`, joined with a single space.
///
/// ```
/// use text_engine::ngram::word_ngrams;
/// let toks = ["a", "b", "c"];
/// assert_eq!(word_ngrams(&toks, 2), vec!["a b", "b c"]);
/// ```
pub fn word_ngrams<S: AsRef<str>>(tokens: &[S], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens
        .windows(n)
        .map(|w| {
            let mut s = String::new();
            for (i, t) in w.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(t.as_ref());
            }
            s
        })
        .collect()
}

/// Character n-grams of order `n` over `text` (including spaces).
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Character n-grams with `#` boundary padding, the FastText convention:
/// `"cat"` with n=3 yields `#ca`, `cat`, `at#`.
pub fn padded_char_ngrams(word: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('#')
        .chain(word.chars())
        .chain(std::iter::once('#'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Count map over any iterator of hashable items.
pub fn count_map<I, T>(items: I) -> HashMap<T, usize>
where
    I: IntoIterator<Item = T>,
    T: std::hash::Hash + Eq,
{
    let mut map = HashMap::new();
    for item in items {
        *map.entry(item).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_bigrams() {
        assert_eq!(word_ngrams(&["x", "y", "z"], 2), ["x y", "y z"]);
    }

    #[test]
    fn word_unigrams_are_identity() {
        assert_eq!(word_ngrams(&["x", "y"], 1), ["x", "y"]);
    }

    #[test]
    fn n_larger_than_input_is_empty() {
        assert!(word_ngrams(&["x"], 2).is_empty());
        assert!(char_ngrams("ab", 3).is_empty());
    }

    #[test]
    fn n_zero_is_empty() {
        assert!(word_ngrams(&["x"], 0).is_empty());
        assert!(char_ngrams("x", 0).is_empty());
        assert!(padded_char_ngrams("x", 0).is_empty());
    }

    #[test]
    fn char_trigrams() {
        assert_eq!(char_ngrams("abcd", 3), ["abc", "bcd"]);
    }

    #[test]
    fn char_ngrams_handle_unicode() {
        assert_eq!(char_ngrams("héllo", 2), ["hé", "él", "ll", "lo"]);
    }

    #[test]
    fn padded_trigrams() {
        assert_eq!(padded_char_ngrams("cat", 3), ["#ca", "cat", "at#"]);
    }

    #[test]
    fn padded_short_word() {
        // "a" padded = "#a#", exactly one trigram
        assert_eq!(padded_char_ngrams("a", 3), ["#a#"]);
        // empty word: padding shorter than n → single padded gram
        assert_eq!(padded_char_ngrams("", 3), ["##"]);
    }

    #[test]
    fn count_map_counts() {
        let m = count_map(["a", "b", "a"]);
        assert_eq!(m["a"], 2);
        assert_eq!(m["b"], 1);
    }

    proptest::proptest! {
        #[test]
        fn ngram_count_formula(tokens in proptest::collection::vec("[a-z]{1,5}", 0..20), n in 1usize..4) {
            let grams = word_ngrams(&tokens, n);
            let expected = tokens.len().saturating_sub(n - 1).min(if tokens.len() < n {0} else {tokens.len() - n + 1});
            proptest::prop_assert_eq!(grams.len(), if tokens.len() >= n { expected } else { 0 });
        }

        #[test]
        fn char_ngram_count_formula(s in "[a-z ]{0,30}", n in 1usize..5) {
            let grams = char_ngrams(&s, n);
            let len = s.chars().count();
            let expected = if len >= n { len - n + 1 } else { 0 };
            proptest::prop_assert_eq!(grams.len(), expected);
        }
    }
}
