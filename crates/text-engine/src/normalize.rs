//! Text canonicalization.
//!
//! All comparisons inside the verification framework run on normalized text so
//! that superficial differences (case, smart quotes, repeated whitespace) do
//! not perturb hallucination scores.

/// Fold a single character to its canonical ASCII-ish form.
///
/// Handles the unicode punctuation that shows up in LLM output: smart quotes,
/// en/em dashes, ellipsis, non-breaking spaces, and a small set of accented
/// Latin letters.
pub fn fold_char(c: char) -> Option<char> {
    let folded = match c {
        '\u{2018}' | '\u{2019}' | '\u{201A}' | '\u{2032}' => '\'',
        '\u{201C}' | '\u{201D}' | '\u{201E}' | '\u{2033}' => '"',
        '\u{2010}'..='\u{2015}' | '\u{2212}' => '-',
        '\u{00A0}' | '\u{2000}'..='\u{200B}' | '\u{202F}' | '\u{3000}' => ' ',
        '\u{2026}' => return None, // expanded to "..." by the caller
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'ç' => 'c',
        'ñ' => 'n',
        other => other,
    };
    Some(folded)
}

/// Canonicalize `text`: unicode-fold, lowercase, collapse runs of whitespace
/// to single spaces, and trim.
///
/// ```
/// use text_engine::normalize::normalize;
/// assert_eq!(normalize("  The  Store\topens\nat 9\u{202F}AM. "), "the store opens at 9 am.");
/// ```
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true; // leading whitespace is dropped
    for raw in text.chars() {
        if raw == '\u{2026}' {
            out.push_str("...");
            last_space = false;
            continue;
        }
        let Some(folded) = fold_char(raw) else {
            continue;
        };
        let c = if folded.is_whitespace() { ' ' } else { folded };
        if c == ' ' {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Strip all punctuation, keeping alphanumerics and spaces. Used by bag-of-words
/// embedders where punctuation carries no signal.
pub fn strip_punctuation(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() {
            out.push(c);
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// True when the string contains at least one alphanumeric character.
pub fn has_content(text: &str) -> bool {
    text.chars().any(char::is_alphanumeric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses() {
        assert_eq!(normalize("Hello   WORLD"), "hello world");
    }

    #[test]
    fn trims_edges() {
        assert_eq!(normalize("  x  "), "x");
        assert_eq!(normalize("\t\n"), "");
    }

    #[test]
    fn folds_smart_quotes() {
        assert_eq!(normalize("\u{201C}it\u{2019}s\u{201D}"), "\"it's\"");
    }

    #[test]
    fn folds_dashes_and_nbsp() {
        assert_eq!(normalize("9\u{00A0}AM\u{2013}5\u{00A0}PM"), "9 am-5 pm");
    }

    #[test]
    fn expands_ellipsis() {
        assert_eq!(normalize("wait\u{2026} what"), "wait... what");
    }

    #[test]
    fn folds_accents() {
        assert_eq!(normalize("Café Naïve"), "cafe naive");
    }

    #[test]
    fn strip_punct_keeps_words() {
        assert_eq!(strip_punctuation("9 AM, to 5 PM!"), "9 AM to 5 PM");
    }

    #[test]
    fn strip_punct_collapses_runs() {
        assert_eq!(strip_punctuation("a -- b"), "a b");
    }

    #[test]
    fn has_content_detects_empties() {
        assert!(has_content("a."));
        assert!(!has_content("?! ..."));
        assert!(!has_content(""));
    }

    #[test]
    fn normalize_is_idempotent() {
        let once = normalize("  The Store\u{2019}s HOURS\u{2014}9 AM  ");
        assert_eq!(normalize(&once), once);
    }
}
