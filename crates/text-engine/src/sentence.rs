//! Sentence segmentation — the paper's **Splitter** component (§IV-A).
//!
//! The paper uses spaCy to divide an LLM response `r_i` into sub-responses
//! `r_{i,j}`, one per sentence, so that a response mixing correct and
//! hallucinated facts can be checked sentence by sentence. This module is the
//! spaCy substitute: a rule-based segmenter tuned for the kind of prose LLMs
//! produce — abbreviations, initials, decimals, clock times, ellipses,
//! sentence-final quotes and parentheses, and newline-separated list items.

use std::collections::HashSet;
use std::sync::OnceLock;

/// A sentence with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence<'a> {
    /// The sentence text, trimmed of surrounding whitespace.
    pub text: &'a str,
    /// Byte offset of the first byte of the trimmed sentence.
    pub start: usize,
    /// Byte offset one past the last byte of the trimmed sentence.
    pub end: usize,
}

/// Abbreviations whose trailing period does not end a sentence.
fn abbreviations() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        [
            "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "a.m",
            "p.m", "inc", "ltd", "co", "corp", "dept", "est", "approx", "hr", "min", "sec", "fig",
            "eq", "ref", "vol", "ch", "para", "mon", "tue", "wed", "thu", "fri", "sat", "sun",
            "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec",
        ]
        .into_iter()
        .collect()
    })
}

/// Configurable sentence splitter.
///
/// The default configuration matches the behaviour the framework's
/// experiments were calibrated against; the knobs exist so downstream users
/// can adapt the splitter to other domains.
#[derive(Debug, Clone)]
pub struct SentenceSplitter {
    /// Treat a newline as a hard sentence boundary (list items, bullet answers).
    pub newline_is_boundary: bool,
    /// Minimum number of alphanumeric characters for a span to count as a
    /// sentence; shorter spans are merged into the previous sentence.
    pub min_content_chars: usize,
}

impl Default for SentenceSplitter {
    fn default() -> Self {
        Self {
            newline_is_boundary: true,
            min_content_chars: 2,
        }
    }
}

impl SentenceSplitter {
    /// Create a splitter with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split `text` into sentences with source spans.
    pub fn split<'a>(&self, text: &'a str) -> Vec<Sentence<'a>> {
        let chars: Vec<(usize, char)> = text.char_indices().collect();
        let mut boundaries: Vec<usize> = Vec::new(); // byte offsets AFTER which a sentence ends
        let mut i = 0;
        while i < chars.len() {
            let (_, c) = chars[i];
            match c {
                '.' => {
                    // Ellipsis: consume the run of dots, then decide.
                    let mut j = i;
                    while j + 1 < chars.len() && chars[j + 1].1 == '.' {
                        j += 1;
                    }
                    let is_ellipsis = j > i;
                    if !is_ellipsis && (self.is_abbreviation(&chars, i) || is_mid_number(&chars, i))
                    {
                        i += 1;
                        continue;
                    }
                    let close = consume_closers(&chars, j + 1);
                    if self.ends_sentence(&chars, close) {
                        boundaries.push(end_byte(text, &chars, close));
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                '!' | '?' => {
                    let mut j = i;
                    while j + 1 < chars.len() && matches!(chars[j + 1].1, '!' | '?') {
                        j += 1;
                    }
                    let close = consume_closers(&chars, j + 1);
                    if self.ends_sentence(&chars, close) {
                        boundaries.push(end_byte(text, &chars, close));
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                '\n' if self.newline_is_boundary => {
                    boundaries.push(chars[i].0);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        boundaries.push(text.len());
        self.collect_sentences(text, &boundaries)
    }

    fn collect_sentences<'a>(&self, text: &'a str, boundaries: &[usize]) -> Vec<Sentence<'a>> {
        let mut out: Vec<Sentence<'a>> = Vec::new();
        let mut start = 0;
        for &b in boundaries {
            if b < start {
                continue;
            }
            let raw = &text[start..b];
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                let lead = raw.len() - raw.trim_start().len();
                let s = start + lead;
                let e = s + trimmed.len();
                let content = trimmed.chars().filter(|c| c.is_alphanumeric()).count();
                if content < self.min_content_chars {
                    // Merge fragments like a stray ")" into the previous sentence.
                    if let Some(prev) = out.last_mut() {
                        prev.end = e;
                        prev.text = text[prev.start..e].trim_end();
                        prev.end = prev.start + prev.text.len();
                    } else {
                        out.push(Sentence {
                            text: trimmed,
                            start: s,
                            end: e,
                        });
                    }
                } else {
                    out.push(Sentence {
                        text: trimmed,
                        start: s,
                        end: e,
                    });
                }
            }
            start = b;
        }
        out
    }

    /// Does position `i` (after a terminator and its closers) start a new
    /// sentence? True at end of text, or when whitespace is followed by an
    /// uppercase letter, a digit, or an opening quote/paren.
    fn ends_sentence(&self, chars: &[(usize, char)], i: usize) -> bool {
        let mut k = i;
        let mut saw_space = false;
        while k < chars.len() && chars[k].1.is_whitespace() {
            saw_space = true;
            k += 1;
        }
        if k >= chars.len() {
            return true;
        }
        if !saw_space {
            return false;
        }
        let next = chars[k].1;
        next.is_uppercase() || next.is_ascii_digit() || matches!(next, '"' | '\'' | '(' | '[')
    }

    /// Is the period at `chars[i]` the trailing dot of a known abbreviation or
    /// a single-letter initial?
    fn is_abbreviation(&self, chars: &[(usize, char)], i: usize) -> bool {
        // Collect the word (letters and interior dots) preceding the period.
        let mut k = i;
        let mut word = Vec::new();
        while k > 0 {
            let c = chars[k - 1].1;
            if c.is_alphabetic() || c == '.' {
                word.push(c.to_ascii_lowercase());
                k -= 1;
            } else {
                break;
            }
        }
        if word.is_empty() {
            return false;
        }
        word.reverse();
        let w: String = word.into_iter().collect();
        // Single-letter initial: "J. Smith".
        if w.len() == 1 && chars[i.saturating_sub(1)].1.is_uppercase() {
            return true;
        }
        // "No." is only an abbreviation before a number ("No. 5"), otherwise
        // it is the English word "no" ending a sentence.
        if w == "no" {
            let mut k = i + 1;
            while k < chars.len() && chars[k].1.is_whitespace() {
                k += 1;
            }
            return k < chars.len() && chars[k].1.is_ascii_digit();
        }
        abbreviations().contains(w.trim_start_matches('.'))
    }
}

/// Is the period at index `i` inside a number (e.g. "2.5")?
fn is_mid_number(chars: &[(usize, char)], i: usize) -> bool {
    i > 0
        && i + 1 < chars.len()
        && chars[i - 1].1.is_ascii_digit()
        && chars[i + 1].1.is_ascii_digit()
}

/// Skip closing quotes/parens after a terminator, returning the new index.
fn consume_closers(chars: &[(usize, char)], mut i: usize) -> usize {
    while i < chars.len() && matches!(chars[i].1, '"' | '\'' | ')' | ']' | '\u{201D}' | '\u{2019}')
    {
        i += 1;
    }
    i
}

fn end_byte(text: &str, chars: &[(usize, char)], i: usize) -> usize {
    if i < chars.len() {
        chars[i].0
    } else {
        text.len()
    }
}

/// Split with the default [`SentenceSplitter`].
///
/// ```
/// use text_engine::split_sentences;
/// let s = split_sentences("The store opens at 9 AM. It closes at 5 PM.");
/// assert_eq!(s.len(), 2);
/// assert_eq!(s[0], "The store opens at 9 AM.");
/// ```
pub fn split_sentences(text: &str) -> Vec<String> {
    SentenceSplitter::new()
        .split(text)
        .into_iter()
        .map(|s| s.text.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(text: &str) -> Vec<String> {
        split_sentences(text)
    }

    #[test]
    fn basic_two_sentences() {
        assert_eq!(split("One fact. Two facts."), ["One fact.", "Two facts."]);
    }

    #[test]
    fn question_and_exclamation() {
        assert_eq!(split("Really? Yes! Fine."), ["Really?", "Yes!", "Fine."]);
    }

    #[test]
    fn abbreviation_does_not_split() {
        assert_eq!(
            split("Dr. Smith approved it. HR confirmed."),
            ["Dr. Smith approved it.", "HR confirmed."]
        );
    }

    #[test]
    fn am_pm_do_not_split() {
        assert_eq!(
            split("Hours are 9 a.m. to 5 p.m. on weekdays. Weekends are off."),
            [
                "Hours are 9 a.m. to 5 p.m. on weekdays.",
                "Weekends are off."
            ]
        );
    }

    #[test]
    fn decimal_does_not_split() {
        assert_eq!(
            split("You accrue 1.5 days per month. Nice."),
            ["You accrue 1.5 days per month.", "Nice."]
        );
    }

    #[test]
    fn initial_does_not_split() {
        assert_eq!(
            split("Contact J. Chan for details. Thanks."),
            ["Contact J. Chan for details.", "Thanks."]
        );
    }

    #[test]
    fn ellipsis_splits_when_followed_by_capital() {
        assert_eq!(split("Well... Maybe not."), ["Well...", "Maybe not."]);
    }

    #[test]
    fn quote_after_period_belongs_to_sentence() {
        assert_eq!(
            split("He said \"no.\" She left."),
            ["He said \"no.\"", "She left."]
        );
    }

    #[test]
    fn newline_is_boundary() {
        assert_eq!(
            split("First item\nSecond item"),
            ["First item", "Second item"]
        );
    }

    #[test]
    fn newline_boundary_can_be_disabled() {
        let sp = SentenceSplitter {
            newline_is_boundary: false,
            ..Default::default()
        };
        assert_eq!(sp.split("a line\nstill same sentence.").len(), 1);
    }

    #[test]
    fn lowercase_after_period_does_not_split() {
        // mid-sentence period in odd formatting, e.g. "approx. five days"
        assert_eq!(
            split("It takes approx. five days."),
            ["It takes approx. five days."]
        );
    }

    #[test]
    fn sentence_starting_with_digit_splits() {
        assert_eq!(
            split("Leave is generous. 14 days are granted."),
            ["Leave is generous.", "14 days are granted."]
        );
    }

    #[test]
    fn no_terminator_yields_one_sentence() {
        assert_eq!(split("no terminator here"), ["no terminator here"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(split("").is_empty());
        assert!(split("   \n  ").is_empty());
    }

    #[test]
    fn fragment_merges_into_previous() {
        // A lone ")" after a boundary should not become its own sentence.
        let got = split("See the policy (section 2.) It applies.");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn spans_cover_source() {
        let src = "Alpha beta. Gamma delta!";
        for s in SentenceSplitter::new().split(src) {
            assert_eq!(&src[s.start..s.end], s.text);
        }
    }

    #[test]
    fn paper_example_three_sentences() {
        let r = "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday. \
                 At least three shopkeepers run a shop.";
        assert_eq!(split(r).len(), 3);
    }

    proptest::proptest! {
        #[test]
        fn spans_are_ordered_and_valid(s in "[ -~\\n]{0,120}") {
            let sents = SentenceSplitter::new().split(&s);
            let mut prev = 0usize;
            for sent in &sents {
                proptest::prop_assert!(sent.start >= prev);
                proptest::prop_assert!(sent.end <= s.len());
                proptest::prop_assert_eq!(&s[sent.start..sent.end], sent.text);
                prev = sent.end;
            }
        }

        #[test]
        fn every_alphanumeric_char_is_kept(s in "[a-zA-Z0-9 .!?]{0,120}") {
            let total: usize = s.chars().filter(|c| c.is_alphanumeric()).count();
            let kept: usize = SentenceSplitter::new()
                .split(&s)
                .iter()
                .map(|x| x.text.chars().filter(|c| c.is_alphanumeric()).count())
                .sum();
            proptest::prop_assert_eq!(total, kept);
        }
    }
}
