//! Set and bag similarity measures.
//!
//! The behavioral verifiers score a response sentence against context with a
//! weighted blend of these measures over stemmed content words, word bigrams
//! and extracted entities.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Jaccard similarity |A ∩ B| / |A ∪ B| over two sets. Empty-vs-empty is 1.
pub fn jaccard<T: Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Dice coefficient 2|A ∩ B| / (|A| + |B|). Empty-vs-empty is 1.
pub fn dice<T: Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    2.0 * inter / (a.len() + b.len()) as f64
}

/// Overlap coefficient |A ∩ B| / min(|A|, |B|).
///
/// This is the workhorse of context containment: a short response sentence
/// fully supported by a long context scores 1 even though Jaccard is small.
pub fn overlap_coefficient<T: Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    let inter = a.intersection(b).count() as f64;
    inter / a.len().min(b.len()) as f64
}

/// Cosine similarity over two count maps (bag-of-words vectors).
pub fn cosine_counts<T: Hash + Eq>(a: &HashMap<T, usize>, b: &HashMap<T, usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    for (k, &va) in a {
        if let Some(&vb) = b.get(k) {
            dot += (va * vb) as f64;
        }
    }
    let na: f64 = a.values().map(|&v| (v * v) as f64).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|&v| (v * v) as f64).sum::<f64>().sqrt();
    dot / (na * nb)
}

/// Weighted containment: what fraction of the (weighted) items of `a` appear
/// in `b`? Weights let callers emphasize rare/content words.
pub fn weighted_containment<T: Hash + Eq>(
    a: &HashSet<T>,
    b: &HashSet<T>,
    weight: impl Fn(&T) -> f64,
) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    let mut covered = 0.0;
    for item in a {
        let w = weight(item).max(0.0);
        total += w;
        if b.contains(item) {
            covered += w;
        }
    }
    if total == 0.0 {
        1.0
    } else {
        covered / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&["a", "b"]), &set(&["b", "c"])), 1.0 / 3.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["a"])), 1.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
        assert_eq!(jaccard::<String>(&set(&[]), &set(&[])), 1.0);
    }

    #[test]
    fn dice_basics() {
        assert_eq!(dice(&set(&["a", "b"]), &set(&["b", "c"])), 0.5);
        assert_eq!(dice::<String>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(dice(&set(&["a"]), &set(&[])), 0.0);
    }

    #[test]
    fn overlap_favors_containment() {
        let short = set(&["hours", "9"]);
        let long = set(&["store", "hours", "9", "5", "open"]);
        assert_eq!(overlap_coefficient(&short, &long), 1.0);
        assert!(jaccard(&short, &long) < 1.0);
    }

    #[test]
    fn overlap_empty_asymmetry() {
        assert_eq!(overlap_coefficient::<String>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(overlap_coefficient(&set(&[]), &set(&["a"])), 0.0);
    }

    #[test]
    fn cosine_counts_matches_hand_calc() {
        let a: HashMap<_, _> = [("x", 1usize), ("y", 1)].into();
        let b: HashMap<_, _> = [("x", 1usize)].into();
        let got = cosine_counts(&a, &b);
        assert!((got - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cosine_identical_is_one() {
        let a: HashMap<_, _> = [("x", 2usize), ("y", 3)].into();
        assert!((cosine_counts(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_containment_weighs() {
        let a = set(&["rare", "common"]);
        let b = set(&["common"]);
        let w = |t: &String| if t == "rare" { 3.0 } else { 1.0 };
        assert!((weighted_containment(&a, &b, w) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_containment_all_zero_weights() {
        let a = set(&["x"]);
        let b = set(&[]);
        assert_eq!(weighted_containment(&a, &b, |_| 0.0), 1.0);
    }

    proptest::proptest! {
        #[test]
        fn all_measures_in_unit_interval(
            av in proptest::collection::hash_set("[a-c]{1,2}", 0..6),
            bv in proptest::collection::hash_set("[a-c]{1,2}", 0..6),
        ) {
            for v in [jaccard(&av, &bv), dice(&av, &bv), overlap_coefficient(&av, &bv)] {
                proptest::prop_assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }

        #[test]
        fn symmetry(
            av in proptest::collection::hash_set("[a-c]{1,2}", 0..6),
            bv in proptest::collection::hash_set("[a-c]{1,2}", 0..6),
        ) {
            proptest::prop_assert_eq!(jaccard(&av, &bv), jaccard(&bv, &av));
            proptest::prop_assert_eq!(dice(&av, &bv), dice(&bv, &av));
            proptest::prop_assert_eq!(overlap_coefficient(&av, &bv), overlap_coefficient(&bv, &av));
        }

        #[test]
        fn identity_scores_one(av in proptest::collection::hash_set("[a-c]{1,2}", 1..6)) {
            proptest::prop_assert_eq!(jaccard(&av, &av), 1.0);
            proptest::prop_assert_eq!(dice(&av, &av), 1.0);
            proptest::prop_assert_eq!(overlap_coefficient(&av, &av), 1.0);
        }
    }
}
