//! Porter stemmer.
//!
//! The verifiers compare response sentences against context on stemmed tokens
//! so that inflectional variation ("operates" vs "operating", "days" vs
//! "day") does not read as disagreement. This is a complete implementation of
//! Porter's 1980 algorithm (steps 1a–5b) over ASCII lowercase words.

/// Stem a single lowercase word. Non-ASCII or very short words are returned
/// unchanged.
///
/// ```
/// use text_engine::porter_stem;
/// assert_eq!(porter_stem("operating"), "oper");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("days"), "dai");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("stemmer operates on ASCII")
}

/// Is `w[i]` a consonant under Porter's definition?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m: the number of VC sequences in `w[..len]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // vowels
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // consonants
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end with a double consonant?
fn double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant–vowel–consonant, where the final consonant
/// is not w, x, or y?
fn cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If `w` ends with `suffix` and the remaining stem has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            w.truncate(stem_len);
            w.extend_from_slice(replacement.as_bytes());
        }
        true // suffix matched (even if not replaced) — stop trying others
    } else {
        false
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let last = w.len() - 1;
        w[last] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suf in SUFFIXES {
        if ends_with(w, suf) {
            let stem_len = w.len() - suf.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // (m>1 and (*S or *T)) ION ->
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 1 && stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') {
            w.truncate(stem_len);
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    let len = w.len();
    if measure(w, len) > 1 && double_consonant(w, len) && w[len - 1] == b'l' {
        w.truncate(len - 1);
    }
}

/// Stem every word in a lowercase token list.
pub fn stem_all<I, S>(words: I) -> Vec<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    words
        .into_iter()
        .map(|word| porter_stem(word.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        // Reference outputs from Porter's published vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input:?})");
        }
    }

    #[test]
    fn hr_domain_words_collide_correctly() {
        assert_eq!(porter_stem("operates"), porter_stem("operating"));
        assert_eq!(porter_stem("days"), porter_stem("day"));
        assert_eq!(porter_stem("employees"), porter_stem("employee"));
        assert_eq!(porter_stem("approval"), porter_stem("approve"));
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(porter_stem("am"), "am");
        assert_eq!(porter_stem("to"), "to");
        assert_eq!(porter_stem("a"), "a");
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("9am"), "9am");
        assert_eq!(porter_stem("Store"), "Store"); // uppercase bypasses
    }

    #[test]
    fn measure_examples() {
        // m(tr)=0, m(troubles... ) per Porter's paper
        assert_eq!(measure(b"tr", 2), 0);
        assert_eq!(measure(b"ee", 2), 0);
        assert_eq!(measure(b"tree", 4), 0);
        assert_eq!(measure(b"trouble", 7), 1);
        assert_eq!(measure(b"oats", 4), 1);
        assert_eq!(measure(b"trees", 5), 1);
        assert_eq!(measure(b"troubles", 8), 2);
        assert_eq!(measure(b"private", 7), 2);
    }

    #[test]
    fn stem_all_maps() {
        assert_eq!(stem_all(["running", "shops"]), ["run", "shop"]);
    }

    proptest::proptest! {
        #[test]
        fn never_panics_and_never_grows_much(word in "[a-z]{1,20}") {
            let s = porter_stem(&word);
            proptest::prop_assert!(s.len() <= word.len() + 1);
            proptest::prop_assert!(!s.is_empty());
        }

        #[test]
        fn idempotent_on_common_shapes(word in "[a-z]{3,12}(s|ed|ing|ness|tion)") {
            let once = porter_stem(&word);
            let twice = porter_stem(&once);
            // Porter is not strictly idempotent in general, but on the shapes we
            // feed it (single inflectional suffix) a second pass must not panic
            // and must not grow the word.
            proptest::prop_assert!(twice.len() <= once.len() + 1);
        }
    }
}
