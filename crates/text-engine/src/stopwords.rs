//! English stopword list.
//!
//! Verifiers and embedders weigh content words; function words carry almost
//! no signal about whether a response agrees with its context, so they are
//! filtered (or down-weighted) before similarity computation.

use std::collections::HashSet;
use std::sync::OnceLock;

const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// The shared stopword set.
pub fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// True if `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    stopword_set().contains(word)
}

/// Remove stopwords from a lowercase token list.
pub fn remove_stopwords<S: AsRef<str>>(words: &[S]) -> Vec<String> {
    words
        .iter()
        .map(|w| w.as_ref())
        .filter(|w| !is_stopword(w))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "is", "at", "from", "to", "and"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["store", "hours", "monday", "salary", "9"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn negations_are_kept() {
        // "not"/"no" ARE classic stopwords but the entity extractor handles
        // negation separately; here we just document the list's behaviour.
        assert!(is_stopword("not"));
        assert!(is_stopword("no"));
    }

    #[test]
    fn removal_preserves_order() {
        let words = ["the", "store", "is", "open"];
        assert_eq!(remove_stopwords(&words), ["store", "open"]);
    }

    #[test]
    fn no_duplicates_in_list() {
        let set: HashSet<_> = STOPWORDS.iter().collect();
        assert_eq!(set.len(), STOPWORDS.len());
    }

    #[test]
    fn list_is_lowercase() {
        assert!(STOPWORDS
            .iter()
            .all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }
}
