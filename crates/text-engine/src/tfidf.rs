//! Corpus-level TF-IDF weighting.
//!
//! Used in two places: the vector-database embedders (documents → sparse
//! weighted vectors) and the behavioral verifiers (content-word weights when
//! measuring how much of a response sentence the context supports).

use std::collections::HashMap;

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::token::tokenize_words;

/// A fitted TF-IDF model: document frequencies over a corpus.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, usize>,
    num_docs: usize,
    /// Apply Porter stemming to terms before counting.
    pub stem: bool,
    /// Drop stopwords before counting.
    pub drop_stopwords: bool,
}

impl TfIdf {
    /// An empty model with stemming and stopword removal enabled.
    pub fn new() -> Self {
        Self {
            doc_freq: HashMap::new(),
            num_docs: 0,
            stem: true,
            drop_stopwords: true,
        }
    }

    /// Normalize a raw text into the term list this model counts.
    pub fn terms(&self, text: &str) -> Vec<String> {
        tokenize_words(text)
            .into_iter()
            .filter(|w| !self.drop_stopwords || !is_stopword(w))
            .map(|w| if self.stem { porter_stem(&w) } else { w })
            .collect()
    }

    /// Add one document to the corpus statistics.
    pub fn add_document(&mut self, text: &str) {
        self.num_docs += 1;
        let mut seen: HashMap<String, ()> = HashMap::new();
        for term in self.terms(text) {
            seen.entry(term).or_insert(());
        }
        for (term, ()) in seen {
            *self.doc_freq.entry(term).or_insert(0) += 1;
        }
    }

    /// Fit from an iterator of documents.
    pub fn fit<I, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut model = Self::new();
        for d in docs {
            model.add_document(d.as_ref());
        }
        model
    }

    /// Number of documents the model has seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Smoothed inverse document frequency of a (already normalized) term:
    /// `ln((1 + N) / (1 + df)) + 1`, the scikit-learn convention. Unseen
    /// terms receive the maximum weight.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        (((1 + self.num_docs) as f64) / ((1 + df) as f64)).ln() + 1.0
    }

    /// Sparse TF-IDF vector of a text: term → tf · idf, L2-normalized.
    pub fn vectorize(&self, text: &str) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for term in self.terms(text) {
            *tf.entry(term).or_insert(0.0) += 1.0;
        }
        let mut norm = 0.0;
        for (term, v) in tf.iter_mut() {
            *v *= self.idf(term);
            norm += *v * *v;
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            for v in tf.values_mut() {
                *v /= norm;
            }
        }
        tf
    }

    /// Cosine similarity of two texts under this model.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.vectorize(a);
        let vb = self.vectorize(b);
        let mut dot = 0.0;
        for (term, wa) in &va {
            if let Some(wb) = vb.get(term) {
                dot += wa * wb;
            }
        }
        dot.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> TfIdf {
        TfIdf::fit([
            "The store operates from 9 AM to 5 PM",
            "Annual leave is 14 days per year",
            "The probation period lasts three months",
            "Uniforms must be worn in the store",
        ])
    }

    #[test]
    fn rare_terms_outweigh_common() {
        let m = sample_model();
        // "store" appears in 2 docs, "probation" in 1 → probation is rarer.
        assert!(m.idf(&porter_stem("probation")) > m.idf(&porter_stem("store")));
    }

    #[test]
    fn unseen_terms_get_max_idf() {
        let m = sample_model();
        let max_idf = (((1 + m.num_docs()) as f64) / 1.0).ln() + 1.0;
        assert!((m.idf("zzzunseen") - max_idf).abs() < 1e-12);
    }

    #[test]
    fn vector_is_unit_norm() {
        let m = sample_model();
        let v = m.vectorize("the store operates daily");
        let norm: f64 = v.values().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_text_vectorizes_empty() {
        let m = sample_model();
        assert!(m.vectorize("").is_empty());
        assert!(m.vectorize("the of and").is_empty()); // all stopwords
    }

    #[test]
    fn self_similarity_is_one() {
        let m = sample_model();
        let s = m.similarity("annual leave is 14 days", "annual leave is 14 days");
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn related_beats_unrelated() {
        let m = sample_model();
        let related = m.similarity("working hours of the store", "store operates 9 AM to 5 PM");
        let unrelated = m.similarity("working hours of the store", "probation lasts three months");
        assert!(related > unrelated, "{related} vs {unrelated}");
    }

    #[test]
    fn stemming_unifies_inflections() {
        let m = sample_model();
        let s = m.similarity("the store operated", "the store operates");
        assert!(s > 0.99, "{s}");
    }

    #[test]
    fn incremental_add_matches_fit() {
        let docs = ["a b c", "b c d", "c d e"];
        let fitted = TfIdf::fit(docs);
        let mut inc = TfIdf::new();
        for d in docs {
            inc.add_document(d);
        }
        assert_eq!(fitted.num_docs(), inc.num_docs());
        assert_eq!(fitted.idf("c"), inc.idf("c"));
    }

    proptest::proptest! {
        #[test]
        fn similarity_bounded(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            let m = sample_model();
            let s = m.similarity(&a, &b);
            proptest::prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn similarity_symmetric(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            let m = sample_model();
            proptest::prop_assert!((m.similarity(&a, &b) - m.similarity(&b, &a)).abs() < 1e-12);
        }
    }
}
