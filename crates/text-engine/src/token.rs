//! Span-preserving word tokenization.
//!
//! The tokenizer keeps byte offsets into the original text so downstream
//! components (the sentence splitter, the entity extractor, error-span
//! labeling in the dataset) can map tokens back to their source.

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text as it appears in the source.
    pub text: &'a str,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl<'a> Token<'a> {
    /// True when every character is alphabetic.
    pub fn is_word(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(char::is_alphabetic)
    }

    /// True when every character is an ASCII digit.
    pub fn is_number(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_digit())
    }

    /// True when the token is a single punctuation character.
    pub fn is_punct(&self) -> bool {
        let mut chars = self.text.chars();
        matches!((chars.next(), chars.next()), (Some(c), None) if !c.is_alphanumeric() && !c.is_whitespace())
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Alpha,
    Digit,
    Punct,
    Space,
}

fn classify(c: char) -> CharClass {
    if c.is_alphabetic() {
        CharClass::Alpha
    } else if c.is_ascii_digit() {
        CharClass::Digit
    } else if c.is_whitespace() {
        CharClass::Space
    } else {
        CharClass::Punct
    }
}

/// Tokenize `text` into words, numbers and punctuation marks, preserving spans.
///
/// Contractions keep their apostrophe joined to the preceding word when it is
/// followed by more letters (`it's` → one token), decimals keep their point
/// (`2.5` → one token), and times keep their colon (`17:30` → one token).
/// All other punctuation becomes single-character tokens.
///
/// ```
/// use text_engine::token::tokenize;
/// let toks: Vec<_> = tokenize("It's 9.30, OK?").iter().map(|t| t.text).collect();
/// assert_eq!(toks, ["It's", "9.30", ",", "OK", "?"]);
/// ```
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let (start, c) = bytes[i];
        match classify(c) {
            CharClass::Space => {
                i += 1;
            }
            CharClass::Alpha => {
                let mut j = i + 1;
                let mut run = 1; // letters since the last interior dot
                let mut dotted = false;
                while j < bytes.len() {
                    let (_, cj) = bytes[j];
                    if classify(cj) == CharClass::Alpha {
                        j += 1;
                        run += 1;
                    } else if cj == '\'' && j + 1 < bytes.len() && bytes[j + 1].1.is_alphabetic() {
                        // contraction: it's, o'clock
                        j += 2;
                        run = 2;
                    } else if cj == '.'
                        && run == 1
                        && j + 1 < bytes.len()
                        && bytes[j + 1].1.is_alphabetic()
                    {
                        // dotted abbreviation: a.m, p.m, e.g, i.e, U.S
                        j += 2;
                        run = 1;
                        dotted = true;
                    } else {
                        break;
                    }
                }
                // Absorb the trailing dot of a dotted abbreviation ("a.m.").
                if dotted && run == 1 && j < bytes.len() && bytes[j].1 == '.' {
                    j += 1;
                }
                let end = end_offset(text, &bytes, j);
                tokens.push(Token {
                    text: &text[start..end],
                    start,
                    end,
                });
                i = j;
            }
            CharClass::Digit => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let (_, cj) = bytes[j];
                    if cj.is_ascii_digit() {
                        j += 1;
                    } else if (cj == '.' || cj == ':' || cj == ',')
                        && j + 1 < bytes.len()
                        && bytes[j + 1].1.is_ascii_digit()
                    {
                        // decimal point, clock colon, thousands separator
                        j += 2;
                    } else {
                        break;
                    }
                }
                let end = end_offset(text, &bytes, j);
                tokens.push(Token {
                    text: &text[start..end],
                    start,
                    end,
                });
                i = j;
            }
            CharClass::Punct => {
                let end = end_offset(text, &bytes, i + 1);
                tokens.push(Token {
                    text: &text[start..end],
                    start,
                    end,
                });
                i += 1;
            }
        }
    }
    tokens
}

fn end_offset(text: &str, bytes: &[(usize, char)], idx: usize) -> usize {
    if idx < bytes.len() {
        bytes[idx].0
    } else {
        text.len()
    }
}

/// Tokenize and keep only word/number tokens, lowercased and owned.
///
/// This is the bag-of-words view used by similarity measures and embedders.
pub fn tokenize_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !t.is_punct())
        .map(|t| t.text.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<&str> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_words_and_punct() {
        assert_eq!(texts("Hello, world!"), ["Hello", ",", "world", "!"]);
    }

    #[test]
    fn keeps_contractions() {
        assert_eq!(texts("don't it's o'clock"), ["don't", "it's", "o'clock"]);
    }

    #[test]
    fn trailing_apostrophe_is_separate() {
        assert_eq!(texts("employees' rights"), ["employees", "'", "rights"]);
    }

    #[test]
    fn keeps_decimals_and_times() {
        assert_eq!(texts("2.5 days at 17:30"), ["2.5", "days", "at", "17:30"]);
    }

    #[test]
    fn keeps_thousands_separator() {
        assert_eq!(texts("HK$12,000"), ["HK", "$", "12,000"]);
    }

    #[test]
    fn trailing_dot_detached() {
        assert_eq!(texts("at 5."), ["at", "5", "."]);
    }

    #[test]
    fn spans_index_into_source() {
        let src = "ab  cd";
        let toks = tokenize(src);
        assert_eq!(&src[toks[0].start..toks[0].end], "ab");
        assert_eq!(&src[toks[1].start..toks[1].end], "cd");
    }

    #[test]
    fn dotted_abbreviations_stay_joined() {
        assert_eq!(texts("9 a.m. sharp"), ["9", "a.m.", "sharp"]);
        assert_eq!(texts("e.g. this"), ["e.g.", "this"]);
        assert_eq!(texts("the U.S. policy"), ["the", "U.S.", "policy"]);
    }

    #[test]
    fn multi_letter_runs_do_not_absorb_dots() {
        assert_eq!(texts("end. Start"), ["end", ".", "Start"]);
    }

    #[test]
    fn unicode_words() {
        assert_eq!(texts("café 9 AM"), ["café", "9", "AM"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn classifiers() {
        let toks = tokenize("word 42 !");
        assert!(toks[0].is_word() && !toks[0].is_number());
        assert!(toks[1].is_number() && !toks[1].is_word());
        assert!(toks[2].is_punct());
    }

    #[test]
    fn words_view_lowercases() {
        assert_eq!(
            tokenize_words("The STORE, opens"),
            ["the", "store", "opens"]
        );
    }

    proptest::proptest! {
        #[test]
        fn spans_are_monotonic_and_in_bounds(s in "\\PC{0,80}") {
            let toks = tokenize(&s);
            let mut prev_end = 0;
            for t in &toks {
                proptest::prop_assert!(t.start >= prev_end);
                proptest::prop_assert!(t.end <= s.len());
                proptest::prop_assert!(t.start < t.end);
                proptest::prop_assert_eq!(&s[t.start..t.end], t.text);
                prev_end = t.end;
            }
        }

        #[test]
        fn no_whitespace_inside_tokens(s in "\\PC{0,80}") {
            for t in tokenize(&s) {
                proptest::prop_assert!(!t.text.chars().any(char::is_whitespace));
            }
        }
    }
}
