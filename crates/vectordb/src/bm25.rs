//! BM25 lexical index.
//!
//! Dense retrieval misses exact-term matches ("probation", "$300") when the
//! embedding hashes them away; lexical retrieval misses paraphrases. This is
//! the classic Okapi BM25 inverted index, used standalone or fused with a
//! vector index by [`crate::hybrid`].

use std::collections::HashMap;

use text_engine::stem::porter_stem;
use text_engine::stopwords::is_stopword;
use text_engine::token::tokenize_words;

/// BM25 parameters. The defaults (`k1 = 1.2`, `b = 0.75`) are the standard
/// Robertson settings.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

#[derive(Debug, Clone)]
struct DocEntry {
    /// term → term frequency in this document.
    term_freq: HashMap<String, usize>,
    /// Total term count of the document.
    len: usize,
}

/// An in-memory BM25 inverted index keyed by `u64` ids.
#[derive(Debug, Clone)]
pub struct Bm25Index {
    params: Bm25Params,
    docs: HashMap<u64, DocEntry>,
    /// term → number of documents containing it.
    doc_freq: HashMap<String, usize>,
    total_len: usize,
}

fn terms_of(text: &str) -> Vec<String> {
    tokenize_words(text)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .map(|w| porter_stem(&w))
        .collect()
}

impl Bm25Index {
    /// An empty index with the given parameters.
    pub fn new(params: Bm25Params) -> Self {
        Self {
            params,
            docs: HashMap::new(),
            doc_freq: HashMap::new(),
            total_len: 0,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Index (or re-index) a document.
    pub fn insert(&mut self, id: u64, text: &str) {
        self.remove(id);
        let terms = terms_of(text);
        let mut term_freq: HashMap<String, usize> = HashMap::new();
        for t in &terms {
            *term_freq.entry(t.clone()).or_insert(0) += 1;
        }
        for term in term_freq.keys() {
            *self.doc_freq.entry(term.clone()).or_insert(0) += 1;
        }
        self.total_len += terms.len();
        self.docs.insert(
            id,
            DocEntry {
                term_freq,
                len: terms.len(),
            },
        );
    }

    /// Remove a document. Returns whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(entry) = self.docs.remove(&id) else {
            return false;
        };
        self.total_len -= entry.len;
        for term in entry.term_freq.keys() {
            if let Some(df) = self.doc_freq.get_mut(term) {
                *df -= 1;
                if *df == 0 {
                    self.doc_freq.remove(term);
                }
            }
        }
        true
    }

    fn avg_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.docs.len() as f64
        }
    }

    /// Robertson-Sparck-Jones IDF with the +1 floor that keeps scores positive.
    fn idf(&self, term: &str) -> f64 {
        let n = self.docs.len() as f64;
        let df = self.doc_freq.get(term).copied().unwrap_or(0) as f64;
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// BM25 score of one document for a query (0 for unindexed ids).
    pub fn score(&self, id: u64, query: &str) -> f64 {
        let Some(entry) = self.docs.get(&id) else {
            return 0.0;
        };
        let avg = self.avg_len().max(1e-9);
        let mut total = 0.0;
        for term in terms_of(query) {
            let tf = entry.term_freq.get(&term).copied().unwrap_or(0) as f64;
            if tf == 0.0 {
                continue;
            }
            let norm =
                self.params.k1 * (1.0 - self.params.b + self.params.b * entry.len as f64 / avg);
            total += self.idf(&term) * tf * (self.params.k1 + 1.0) / (tf + norm);
        }
        total
    }

    /// Top-k documents for a query, sorted by descending score (ties by id).
    /// Documents scoring 0 are omitted.
    pub fn search(&self, query: &str, k: usize) -> Vec<(u64, f64)> {
        let mut hits: Vec<(u64, f64)> = self
            .docs
            .keys()
            .map(|&id| (id, self.score(id, query)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(k);
        hits
    }
}

impl Default for Bm25Index {
    fn default() -> Self {
        Self::new(Bm25Params::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Bm25Index {
        let mut idx = Bm25Index::default();
        idx.insert(
            0,
            "The store operates from 9 AM to 5 PM from Sunday to Saturday",
        );
        idx.insert(1, "Annual leave entitlement is 14 days per calendar year");
        idx.insert(
            2,
            "The probation period lasts three months for new employees",
        );
        idx.insert(3, "Uniforms must be worn at all times inside the store");
        idx
    }

    #[test]
    fn exact_term_match_wins() {
        let idx = corpus();
        let hits = idx.search("probation period", 4);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn rare_terms_outweigh_common() {
        let idx = corpus();
        // "store" is in two docs; "uniforms" in one — a query with both
        // should rank the uniform doc first.
        let hits = idx.search("store uniforms", 4);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn zero_score_docs_omitted() {
        let idx = corpus();
        let hits = idx.search("cryptocurrency blockchain", 4);
        assert!(hits.is_empty());
    }

    #[test]
    fn stemming_bridges_inflection() {
        let idx = corpus();
        let hits = idx.search("operating hours of stores", 4);
        assert_eq!(hits[0].0, 0, "{hits:?}");
    }

    #[test]
    fn remove_and_reinsert() {
        let mut idx = corpus();
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert!(idx.search("probation", 4).is_empty());
        idx.insert(2, "probation policy details");
        assert_eq!(idx.search("probation", 4)[0].0, 2);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn reinsert_replaces_stats() {
        let mut idx = corpus();
        idx.insert(0, "completely different content now");
        assert!(idx.search("operates 9 AM", 4).iter().all(|h| h.0 != 0));
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_terms() {
        let mut idx = Bm25Index::default();
        for i in 0..5 {
            idx.insert(i, "common term everywhere");
        }
        assert!(idx.idf(&porter_stem("common")) > 0.0);
    }

    #[test]
    fn tf_saturates() {
        let mut idx = Bm25Index::default();
        idx.insert(0, "leave leave leave leave leave leave leave leave");
        idx.insert(1, "leave policy");
        // doc 0 has 8x tf but scores must not be 8x doc 1's
        let s0 = idx.score(0, "leave");
        let s1 = idx.score(1, "leave");
        assert!(s0 < 4.0 * s1, "s0={s0} s1={s1}");
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = Bm25Index::default();
        assert!(idx.is_empty());
        assert!(idx.search("anything", 3).is_empty());
        let idx2 = corpus();
        assert!(idx2.search("", 3).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn scores_are_finite_and_nonnegative(
            docs in proptest::collection::vec("[a-z ]{0,40}", 1..8),
            query in "[a-z ]{0,20}",
        ) {
            let mut idx = Bm25Index::default();
            for (i, d) in docs.iter().enumerate() {
                idx.insert(i as u64, d);
            }
            for (_, s) in idx.search(&query, 10) {
                proptest::prop_assert!(s.is_finite() && s > 0.0);
            }
        }
    }
}
