//! The user-facing collection API: documents in, ranked hits out.
//!
//! A [`Collection`] owns an embedder, a vector index and a document store,
//! wrapped in a `parking_lot::RwLock` so concurrent readers (the parallel
//! verification path in `hallu-core`) can query while a writer upserts.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::embed::Embedder;
use crate::error::VectorDbError;
use crate::index::VectorIndex;
use crate::store::{DocId, DocStore, Document};

/// One query hit.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Document id.
    pub id: DocId,
    /// Similarity under the index's metric (higher = closer).
    pub score: f32,
    /// The document payload.
    pub document: Document,
}

struct Inner<I> {
    index: I,
    store: DocStore,
}

/// An embedded vector-search collection, generic over the index type.
pub struct Collection<I> {
    embedder: Box<dyn Embedder>,
    inner: RwLock<Inner<I>>,
}

impl<I: VectorIndex> Collection<I> {
    /// Build a collection from an embedder and an (empty) index.
    ///
    /// # Panics
    /// Panics if the index and embedder disagree on dimensionality.
    pub fn new(embedder: Box<dyn Embedder>, index: I) -> Self {
        assert_eq!(
            embedder.dim(),
            index.dim(),
            "embedder dim {} != index dim {}",
            embedder.dim(),
            index.dim()
        );
        Self {
            embedder,
            inner: RwLock::new(Inner {
                index,
                store: DocStore::new(),
            }),
        }
    }

    /// Insert a document, embedding its text. Returns the assigned id.
    ///
    /// # Errors
    /// Propagates index insertion failures.
    pub fn add(&self, doc: Document) -> Result<DocId, VectorDbError> {
        let vector = self.embedder.embed(&doc.text);
        let mut inner = self.inner.write();
        let id = inner.store.insert(doc);
        inner.index.insert(id, vector)?;
        Ok(id)
    }

    /// Replace the document at `id` (upsert).
    pub fn put(&self, id: DocId, doc: Document) -> Result<(), VectorDbError> {
        let vector = self.embedder.embed(&doc.text);
        let mut inner = self.inner.write();
        inner.store.put(id, doc);
        inner.index.insert(id, vector)
    }

    /// Remove a document. Returns whether it existed.
    pub fn remove(&self, id: DocId) -> bool {
        let mut inner = self.inner.write();
        let in_store = inner.store.remove(id).is_some();
        let in_index = inner.index.remove(id);
        in_store || in_index
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<Document> {
        self.inner.read().store.get(id).cloned()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Top-k most similar documents to `text`.
    pub fn query(&self, text: &str, k: usize) -> Result<Vec<QueryResult>, VectorDbError> {
        self.query_filtered(text, k, |_| true)
    }

    /// Top-k with a metadata predicate. Over-fetches internally (3k) so the
    /// filter doesn't starve the result set.
    pub fn query_filtered(
        &self,
        text: &str,
        k: usize,
        predicate: impl Fn(&BTreeMap<String, String>) -> bool,
    ) -> Result<Vec<QueryResult>, VectorDbError> {
        let query_vec = self.embedder.embed(text);
        let inner = self.inner.read();
        let overfetch = k.saturating_mul(3).max(k);
        let hits = inner.index.search(&query_vec, overfetch)?;
        let mut out = Vec::with_capacity(k);
        for (id, score) in hits {
            let Some(doc) = inner.store.get(id) else {
                continue;
            };
            if predicate(&doc.metadata) {
                out.push(QueryResult {
                    id,
                    score,
                    document: doc.clone(),
                });
                if out.len() == k {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Run a closure with mutable access to the index (e.g. `IvfIndex::build`).
    pub fn with_index_mut<R>(&self, f: impl FnOnce(&mut I) -> R) -> R {
        f(&mut self.inner.write().index)
    }

    /// Run a closure with read access to index and store (persistence).
    pub(crate) fn with_parts<R>(&self, f: impl FnOnce(&I, &DocStore) -> R) -> R {
        let inner = self.inner.read();
        f(&inner.index, &inner.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::HashingEmbedder;
    use crate::flat::FlatIndex;
    use crate::hnsw::HnswIndex;
    use crate::metric::Metric;

    fn collection() -> Collection<FlatIndex> {
        Collection::new(
            Box::new(HashingEmbedder::new(128, 7)),
            FlatIndex::new(128, Metric::Cosine),
        )
    }

    fn seed_docs(c: &Collection<FlatIndex>) -> Vec<DocId> {
        [
            (
                "The store operates from 9 AM to 5 PM from Sunday to Saturday",
                "hours",
            ),
            (
                "Annual leave entitlement is 14 days per calendar year",
                "leave",
            ),
            (
                "The probation period for new employees lasts three months",
                "probation",
            ),
            (
                "Uniforms must be worn at all times inside the store",
                "uniform",
            ),
        ]
        .into_iter()
        .map(|(text, topic)| {
            c.add(Document::new(text).with_meta("topic", topic))
                .unwrap()
        })
        .collect()
    }

    #[test]
    fn add_and_query_returns_relevant_doc() {
        let c = collection();
        let ids = seed_docs(&c);
        let hits = c
            .query("from what time does the store operate on Sunday?", 1)
            .unwrap();
        assert_eq!(hits[0].id, ids[0]);
        assert_eq!(hits[0].document.metadata["topic"], "hours");
    }

    #[test]
    fn query_respects_k() {
        let c = collection();
        seed_docs(&c);
        assert_eq!(c.query("store", 2).unwrap().len(), 2);
    }

    #[test]
    fn filtered_query_excludes_non_matching() {
        let c = collection();
        seed_docs(&c);
        let hits = c
            .query_filtered("store", 4, |m| {
                m.get("topic").is_some_and(|t| t == "uniform")
            })
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].document.metadata["topic"], "uniform");
    }

    #[test]
    fn remove_then_query_misses_it() {
        let c = collection();
        let ids = seed_docs(&c);
        assert!(c.remove(ids[0]));
        assert!(!c.remove(ids[0]));
        let hits = c.query("working hours of the store", 4).unwrap();
        assert!(hits.iter().all(|h| h.id != ids[0]));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn put_overwrites() {
        let c = collection();
        let ids = seed_docs(&c);
        c.put(
            ids[0],
            Document::new("Overtime pay is 1.5 times the hourly rate"),
        )
        .unwrap();
        let doc = c.get(ids[0]).unwrap();
        assert!(doc.text.contains("Overtime"));
        let hits = c.query("overtime pay rate", 1).unwrap();
        assert_eq!(hits[0].id, ids[0]);
    }

    #[test]
    fn works_with_hnsw_index() {
        let c = Collection::new(
            Box::new(HashingEmbedder::new(64, 3)),
            HnswIndex::new(64, Metric::Cosine, 8, 32, 3),
        );
        for i in 0..30 {
            c.add(Document::new(format!(
                "policy document number {i} about topic {}",
                i % 5
            )))
            .unwrap();
        }
        let hits = c.query("policy document number 7", 3).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn dim_mismatch_panics_at_construction() {
        let _ = Collection::new(
            Box::new(HashingEmbedder::new(64, 1)),
            FlatIndex::new(128, Metric::Cosine),
        );
    }

    #[test]
    fn concurrent_readers_with_writer() {
        use std::sync::Arc;
        let c = Arc::new(collection());
        seed_docs(&c);
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    if t == 0 && i % 10 == 0 {
                        c.add(Document::new(format!("extra doc {i}"))).unwrap();
                    }
                    let hits = c.query("store hours", 2).unwrap();
                    assert!(!hits.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() >= 4);
    }
}
