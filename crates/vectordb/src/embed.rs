//! Text embedders.
//!
//! Offline we have no pretrained sentence encoder, so embeddings come from
//! feature hashing: character n-grams (robust to inflection and typos) and
//! word stems hashed into a fixed-dimensional space, optionally weighted by
//! corpus TF-IDF. This preserves the property the RAG pipeline needs —
//! lexically/semantically related texts land near each other — while being
//! fully deterministic.

use text_engine::ngram::padded_char_ngrams;
use text_engine::normalize::normalize;
use text_engine::stem::porter_stem;
use text_engine::stopwords::is_stopword;
use text_engine::tfidf::TfIdf;
use text_engine::token::tokenize_words;

/// Anything that turns text into a fixed-dimension dense vector.
pub trait Embedder: Send + Sync {
    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Embed one text. The output length always equals [`Embedder::dim`].
    fn embed(&self, text: &str) -> Vec<f32>;
}

/// FNV-1a, the same stable hash used across the workspace.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Signed feature hashing ("hashing trick"): index = h % dim, sign from one
/// extra hash bit; this keeps collisions unbiased.
fn hash_into(feature: &str, weight: f32, seed: u64, out: &mut [f32]) {
    let h = fnv1a(feature.as_bytes(), seed);
    let idx = (h % out.len() as u64) as usize;
    let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
    out[idx] += sign * weight;
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Hashing embedder over word stems and character trigrams. Needs no
/// fitting, so it can embed before any corpus exists.
#[derive(Debug, Clone)]
pub struct HashingEmbedder {
    dim: usize,
    seed: u64,
    /// Relative weight of character n-grams vs word stems.
    char_weight: f32,
}

impl HashingEmbedder {
    /// Create an embedder with the given output dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            seed,
            char_weight: 0.4,
        }
    }

    fn word_features(text: &str) -> Vec<String> {
        tokenize_words(text)
            .into_iter()
            .filter(|w| !is_stopword(w))
            .map(|w| porter_stem(&w))
            .collect()
    }
}

impl Embedder for HashingEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let normalized = normalize(text);
        for stem in Self::word_features(&normalized) {
            hash_into(&format!("w:{stem}"), 1.0, self.seed, &mut out);
            for gram in padded_char_ngrams(&stem, 3) {
                hash_into(&format!("c:{gram}"), self.char_weight, self.seed, &mut out);
            }
        }
        l2_normalize(&mut out);
        out
    }
}

/// TF-IDF-weighted hashing embedder: like [`HashingEmbedder`] but each stem's
/// contribution is scaled by its corpus IDF, so distinctive handbook terms
/// ("probation", "uniform") dominate retrieval.
#[derive(Debug, Clone)]
pub struct TfIdfEmbedder {
    dim: usize,
    seed: u64,
    model: TfIdf,
}

impl TfIdfEmbedder {
    /// Fit on a corpus.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn fit<S: AsRef<str>>(corpus: &[S], dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            seed,
            model: TfIdf::fit(corpus),
        }
    }
}

impl Embedder for TfIdfEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for (term, weight) in self.model.vectorize(text) {
            hash_into(&format!("w:{term}"), weight as f32, self.seed, &mut out);
            for gram in padded_char_ngrams(&term, 3) {
                hash_into(
                    &format!("c:{gram}"),
                    0.3 * weight as f32,
                    self.seed,
                    &mut out,
                );
            }
        }
        l2_normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    fn corpus() -> Vec<&'static str> {
        vec![
            "The store operates from 9 AM to 5 PM from Sunday to Saturday",
            "Annual leave entitlement is 14 days per calendar year",
            "The probation period for new employees lasts three months",
            "Uniforms must be worn at all times inside the store",
            "Media requests must be forwarded to the communications team",
        ]
    }

    #[test]
    fn output_dim_and_norm() {
        let e = HashingEmbedder::new(128, 7);
        let v = e.embed("the store opens at 9 AM");
        assert_eq!(v.len(), 128);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let e = HashingEmbedder::new(64, 7);
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let e = HashingEmbedder::new(64, 7);
        assert_eq!(e.embed("working hours"), e.embed("working hours"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashingEmbedder::new(64, 1).embed("working hours");
        let b = HashingEmbedder::new(64, 2).embed("working hours");
        assert_ne!(a, b);
    }

    #[test]
    fn related_texts_are_closer_than_unrelated() {
        let e = HashingEmbedder::new(256, 7);
        let q = e.embed("what are the working hours of the store?");
        let related = e.embed("the store operates from 9 AM to 5 PM");
        let unrelated = e.embed("the probation period lasts three months");
        let m = Metric::Cosine;
        assert!(
            m.similarity(&q, &related) > m.similarity(&q, &unrelated),
            "related {} vs unrelated {}",
            m.similarity(&q, &related),
            m.similarity(&q, &unrelated)
        );
    }

    #[test]
    fn inflection_robustness() {
        let e = HashingEmbedder::new(256, 7);
        let a = e.embed("the store operates daily");
        let b = e.embed("the stores operating daily");
        assert!(Metric::Cosine.similarity(&a, &b) > 0.8);
    }

    #[test]
    fn tfidf_embedder_prefers_distinctive_terms() {
        let e = TfIdfEmbedder::fit(&corpus(), 256, 7);
        let q = e.embed("how long is probation?");
        let probation = e.embed("the probation period for new employees lasts three months");
        let store = e.embed("the store operates from 9 AM to 5 PM");
        let m = Metric::Cosine;
        assert!(m.similarity(&q, &probation) > m.similarity(&q, &store));
    }

    #[test]
    fn tfidf_embedder_dim_and_determinism() {
        let e = TfIdfEmbedder::fit(&corpus(), 64, 3);
        assert_eq!(e.dim(), 64);
        assert_eq!(e.embed("annual leave"), e.embed("annual leave"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        HashingEmbedder::new(0, 1);
    }

    #[test]
    fn trait_object_usable() {
        let e: Box<dyn Embedder> = Box::new(HashingEmbedder::new(32, 1));
        assert_eq!(e.embed("x").len(), 32);
    }

    proptest::proptest! {
        #[test]
        fn embeddings_always_unit_or_zero(text in "[a-zA-Z0-9 ]{0,60}") {
            let e = HashingEmbedder::new(64, 11);
            let v = e.embed(&text);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            proptest::prop_assert!(norm.abs() < 1e-5 || (norm - 1.0).abs() < 1e-4);
        }
    }
}
