//! Error type for vector-database operations.

use std::fmt;

/// Errors surfaced by collections and indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorDbError {
    /// A vector's dimensionality does not match the index.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// The referenced document does not exist.
    NotFound(u64),
    /// The index is empty and cannot answer queries that require data.
    Empty,
    /// Persistence failed (I/O or serialization).
    Persistence(String),
    /// Invalid parameter (k = 0, no clusters, …).
    InvalidParameter(String),
}

impl fmt::Display for VectorDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorDbError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: index holds {expected}-d vectors, got {got}-d"
                )
            }
            VectorDbError::NotFound(id) => write!(f, "document {id} not found"),
            VectorDbError::Empty => write!(f, "index is empty"),
            VectorDbError::Persistence(msg) => write!(f, "persistence error: {msg}"),
            VectorDbError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for VectorDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VectorDbError::DimensionMismatch {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("4-d"));
        assert!(VectorDbError::NotFound(7).to_string().contains('7'));
        assert!(VectorDbError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&VectorDbError::Empty);
    }
}
