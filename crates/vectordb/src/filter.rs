//! Structured metadata filters.
//!
//! [`Collection::query_filtered`](crate::collection::Collection::query_filtered)
//! takes any predicate closure; this module provides a composable,
//! serializable filter expression language on top (equality, prefix,
//! numeric comparison, boolean combinators) so filters can live in request
//! payloads and configuration.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A filter expression over a document's string metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Field exists (any value).
    Has(String),
    /// Field equals value exactly.
    Eq(String, String),
    /// Field differs from value (missing fields match).
    Ne(String, String),
    /// Field starts with the prefix.
    Prefix(String, String),
    /// Field parses as f64 and is strictly greater than the bound.
    Gt(String, f64),
    /// Field parses as f64 and is strictly less than the bound.
    Lt(String, f64),
    /// All sub-filters match (empty = always true).
    And(Vec<Filter>),
    /// Any sub-filter matches (empty = always false).
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Evaluate against a metadata map.
    pub fn matches(&self, metadata: &BTreeMap<String, String>) -> bool {
        match self {
            Filter::Has(key) => metadata.contains_key(key),
            Filter::Eq(key, value) => metadata.get(key).is_some_and(|v| v == value),
            Filter::Ne(key, value) => metadata.get(key).is_none_or(|v| v != value),
            Filter::Prefix(key, prefix) => metadata.get(key).is_some_and(|v| v.starts_with(prefix)),
            Filter::Gt(key, bound) => metadata
                .get(key)
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > *bound),
            Filter::Lt(key, bound) => metadata
                .get(key)
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v < *bound),
            Filter::And(subs) => subs.iter().all(|f| f.matches(metadata)),
            Filter::Or(subs) => subs.iter().any(|f| f.matches(metadata)),
            Filter::Not(sub) => !sub.matches(metadata),
        }
    }

    /// Convenience: `a AND b`.
    pub fn and(self, other: Filter) -> Filter {
        match self {
            Filter::And(mut subs) => {
                subs.push(other);
                Filter::And(subs)
            }
            _ => Filter::And(vec![self, other]),
        }
    }

    /// Convenience: `a OR b`.
    pub fn or(self, other: Filter) -> Filter {
        match self {
            Filter::Or(mut subs) => {
                subs.push(other);
                Filter::Or(subs)
            }
            _ => Filter::Or(vec![self, other]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn eq_and_ne() {
        let m = meta(&[("topic", "leave")]);
        assert!(Filter::Eq("topic".into(), "leave".into()).matches(&m));
        assert!(!Filter::Eq("topic".into(), "hours".into()).matches(&m));
        assert!(Filter::Ne("topic".into(), "hours".into()).matches(&m));
        // missing field: Eq fails, Ne matches
        assert!(!Filter::Eq("missing".into(), "x".into()).matches(&m));
        assert!(Filter::Ne("missing".into(), "x".into()).matches(&m));
    }

    #[test]
    fn has_and_prefix() {
        let m = meta(&[("section", "policy/uniform")]);
        assert!(Filter::Has("section".into()).matches(&m));
        assert!(!Filter::Has("topic".into()).matches(&m));
        assert!(Filter::Prefix("section".into(), "policy/".into()).matches(&m));
        assert!(!Filter::Prefix("section".into(), "employment/".into()).matches(&m));
    }

    #[test]
    fn numeric_comparisons() {
        let m = meta(&[("chunk", "3"), ("score", "0.75"), ("name", "abc")]);
        assert!(Filter::Gt("chunk".into(), 2.0).matches(&m));
        assert!(!Filter::Gt("chunk".into(), 3.0).matches(&m));
        assert!(Filter::Lt("score".into(), 1.0).matches(&m));
        // non-numeric and missing fields never satisfy numeric filters
        assert!(!Filter::Gt("name".into(), 0.0).matches(&m));
        assert!(!Filter::Lt("missing".into(), 10.0).matches(&m));
    }

    #[test]
    fn combinators() {
        let m = meta(&[("topic", "leave"), ("chunk", "0")]);
        let f = Filter::Eq("topic".into(), "leave".into()).and(Filter::Lt("chunk".into(), 1.0));
        assert!(f.matches(&m));
        let g = Filter::Eq("topic".into(), "hours".into())
            .or(Filter::Eq("topic".into(), "leave".into()));
        assert!(g.matches(&m));
        assert!(!Filter::Not(Box::new(g)).matches(&m));
    }

    #[test]
    fn empty_combinators() {
        let m = meta(&[]);
        assert!(Filter::And(vec![]).matches(&m));
        assert!(!Filter::Or(vec![]).matches(&m));
    }

    #[test]
    fn and_or_builders_flatten() {
        let f = Filter::Has("a".into())
            .and(Filter::Has("b".into()))
            .and(Filter::Has("c".into()));
        match f {
            Filter::And(subs) => assert_eq!(subs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn serde_roundtrip() {
        let f = Filter::Eq("topic".into(), "leave".into()).and(Filter::Gt("chunk".into(), 1.0));
        let json = serde_json::to_string(&f).unwrap();
        let back: Filter = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn works_with_collection_query() {
        use crate::collection::Collection;
        use crate::embed::HashingEmbedder;
        use crate::flat::FlatIndex;
        use crate::metric::Metric;
        use crate::store::Document;

        let c = Collection::new(
            Box::new(HashingEmbedder::new(64, 1)),
            FlatIndex::new(64, Metric::Cosine),
        );
        c.add(
            Document::new("leave policy part one")
                .with_meta("topic", "leave")
                .with_meta("chunk", "0"),
        )
        .unwrap();
        c.add(
            Document::new("leave policy part two")
                .with_meta("topic", "leave")
                .with_meta("chunk", "1"),
        )
        .unwrap();
        c.add(
            Document::new("uniform policy")
                .with_meta("topic", "uniform")
                .with_meta("chunk", "0"),
        )
        .unwrap();

        let filter =
            Filter::Eq("topic".into(), "leave".into()).and(Filter::Lt("chunk".into(), 1.0));
        let hits = c
            .query_filtered("policy", 5, |m| filter.matches(m))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].document.text.contains("part one"));
    }
}
