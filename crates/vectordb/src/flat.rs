//! Exact brute-force index — the correctness reference for IVF and HNSW.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use crate::error::VectorDbError;
use crate::index::{check_query, VectorIndex};
use crate::metric::Metric;

/// A candidate in the top-k heap (min-heap by similarity).
#[derive(PartialEq)]
struct Candidate {
    sim: f32,
    id: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* on top.
        other
            .sim
            .partial_cmp(&self.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact scan index. O(n·d) per query, zero build cost, exact results.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    vectors: Vec<Vec<f32>>,
    position: HashMap<u64, usize>,
}

impl FlatIndex {
    /// An empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self {
            dim,
            metric,
            ids: Vec::new(),
            vectors: Vec::new(),
            position: HashMap::new(),
        }
    }

    /// The metric this index ranks by.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The stored vector for `id`, if present.
    pub fn vector(&self, id: u64) -> Option<&[f32]> {
        self.position.get(&id).map(|&p| self.vectors[p].as_slice())
    }

    /// Iterate over all (id, vector) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.ids
            .iter()
            .zip(&self.vectors)
            .map(|(&id, v)| (id, v.as_slice()))
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        match self.position.get(&id) {
            Some(&pos) => self.vectors[pos] = vector,
            None => {
                self.position.insert(id, self.ids.len());
                self.ids.push(id);
                self.vectors.push(vector);
            }
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(pos) = self.position.remove(&id) else {
            return false;
        };
        // swap-remove, fixing the moved element's position entry
        self.ids.swap_remove(pos);
        self.vectors.swap_remove(pos);
        if pos < self.ids.len() {
            self.position.insert(self.ids[pos], pos);
        }
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, VectorDbError> {
        check_query(self.dim, query, k)?;
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        for (id, v) in self.iter() {
            let sim = self.metric.similarity(query, v);
            heap.push(Candidate { sim, id });
            if heap.len() > k {
                heap.pop(); // evict current worst
            }
        }
        let mut out: Vec<(u64, f32)> = heap.into_iter().map(|c| (c.id, c.sim)).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn insert_search_roundtrip() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        for i in 0..4u64 {
            idx.insert(i, unit(4, i as usize)).unwrap();
        }
        let hits = idx.search(&unit(4, 2), 1).unwrap();
        assert_eq!(hits[0].0, 2);
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn results_sorted_descending() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        idx.insert(1, vec![1.0, 0.0]).unwrap();
        idx.insert(2, vec![2.0, 0.0]).unwrap();
        idx.insert(3, vec![3.0, 0.0]).unwrap();
        let hits = idx.search(&[0.0, 0.0], 3).unwrap();
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), [1, 2, 3]);
        assert!(hits[0].1 >= hits[1].1 && hits[1].1 >= hits[2].1);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.insert(1, vec![1.0, 0.0]).unwrap();
        assert_eq!(idx.search(&[1.0, 0.0], 10).unwrap().len(), 1);
    }

    #[test]
    fn empty_index_returns_empty() {
        let idx = FlatIndex::new(2, Metric::Cosine);
        assert!(idx.search(&[1.0, 0.0], 3).unwrap().is_empty());
    }

    #[test]
    fn upsert_replaces() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.insert(1, vec![1.0, 0.0]).unwrap();
        idx.insert(1, vec![0.0, 1.0]).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.vector(1).unwrap(), &[0.0, 1.0]);
    }

    #[test]
    fn remove_swaps_correctly() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        for i in 0..5u64 {
            idx.insert(i, vec![i as f32, 1.0]).unwrap();
        }
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert_eq!(idx.len(), 4);
        // remaining vectors still retrievable
        for i in [0u64, 2, 3, 4] {
            assert!(idx.vector(i).is_some(), "id {i} lost after swap_remove");
        }
        // search never returns the removed id
        let hits = idx.search(&[1.0, 1.0], 5).unwrap();
        assert!(hits.iter().all(|h| h.0 != 1));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        assert_eq!(
            idx.insert(1, vec![1.0]),
            Err(VectorDbError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
        assert!(matches!(
            idx.search(&[1.0], 1),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn k_zero_is_invalid() {
        let idx = FlatIndex::new(2, Metric::Cosine);
        assert!(matches!(
            idx.search(&[1.0, 0.0], 0),
            Err(VectorDbError::InvalidParameter(_))
        ));
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut idx = FlatIndex::new(2, Metric::Dot);
        idx.insert(9, vec![1.0, 0.0]).unwrap();
        idx.insert(3, vec![1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0], 2).unwrap();
        assert_eq!(hits[0].0, 3);
        assert_eq!(hits[1].0, 9);
    }

    proptest::proptest! {
        #[test]
        fn top1_matches_linear_scan(
            vectors in proptest::collection::vec(proptest::collection::vec(-1f32..1.0, 3), 1..30),
            query in proptest::collection::vec(-1f32..1.0, 3),
        ) {
            let mut idx = FlatIndex::new(3, Metric::Euclidean);
            for (i, v) in vectors.iter().enumerate() {
                idx.insert(i as u64, v.clone()).unwrap();
            }
            let best = idx.search(&query, 1).unwrap()[0];
            let expected = vectors
                .iter()
                .map(|v| Metric::Euclidean.similarity(&query, v))
                .fold(f32::NEG_INFINITY, f32::max);
            proptest::prop_assert!((best.1 - expected).abs() < 1e-5);
        }

        #[test]
        fn len_tracks_inserts_and_removes(ops in proptest::collection::vec((0u64..10, proptest::bool::ANY), 0..40)) {
            let mut idx = FlatIndex::new(1, Metric::Dot);
            let mut live = std::collections::HashSet::new();
            for (id, is_insert) in ops {
                if is_insert {
                    idx.insert(id, vec![id as f32]).unwrap();
                    live.insert(id);
                } else {
                    let was = idx.remove(id);
                    proptest::prop_assert_eq!(was, live.remove(&id));
                }
            }
            proptest::prop_assert_eq!(idx.len(), live.len());
        }
    }
}
