//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! The standard Malkov–Yashunin construction: each vector gets a random
//! level from a geometric distribution; higher levels form coarser
//! navigation graphs; queries greedily descend from the top level and run a
//! best-first beam (`ef`) at level 0. Deletions are tombstones: the node
//! stays as a graph waypoint but is filtered from results — the usual
//! production compromise (FAISS/nmslib do the same).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::error::VectorDbError;
use crate::index::{check_query, VectorIndex};
use crate::metric::Metric;

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    vector: Vec<f32>,
    deleted: bool,
    /// Adjacency per level: `neighbors[level] = Vec<internal index>`.
    neighbors: Vec<Vec<usize>>,
}

/// Max-heap entry ordered by similarity.
#[derive(PartialEq)]
struct Scored {
    sim: f32,
    idx: usize,
}
impl Eq for Scored {}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// HNSW index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    /// Max neighbors per node above level 0.
    m: usize,
    /// Max neighbors at level 0 (2·m by convention).
    m0: usize,
    /// Beam width during construction.
    ef_construction: usize,
    /// Beam width during search. Raise for higher recall.
    pub ef_search: usize,
    seed: u64,
    insert_counter: u64,
    nodes: Vec<Node>,
    id_to_idx: HashMap<u64, usize>,
    entry: Option<usize>,
    max_level: usize,
}

impl HnswIndex {
    /// New empty index. `m` controls graph degree (16 is the usual default).
    ///
    /// # Panics
    /// Panics if `m < 2` or `ef_construction == 0`.
    pub fn new(dim: usize, metric: Metric, m: usize, ef_construction: usize, seed: u64) -> Self {
        assert!(m >= 2, "m must be at least 2");
        assert!(ef_construction > 0, "ef_construction must be positive");
        Self {
            dim,
            metric,
            m,
            m0: 2 * m,
            ef_construction,
            ef_search: ef_construction,
            seed,
            insert_counter: 0,
            nodes: Vec::new(),
            id_to_idx: HashMap::new(),
            entry: None,
            max_level: 0,
        }
    }

    /// Number of tombstoned nodes still in the graph.
    pub fn tombstones(&self) -> usize {
        self.nodes.iter().filter(|n| n.deleted).count()
    }

    fn sim(&self, idx: usize, query: &[f32]) -> f32 {
        self.metric.similarity(query, &self.nodes[idx].vector)
    }

    /// Deterministic geometric level: floor(−ln(u) · 1/ln(m)).
    fn random_level(&mut self) -> usize {
        self.insert_counter += 1;
        let mut x = self.seed ^ self.insert_counter.wrapping_mul(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        let u = ((x >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        let ml = 1.0 / (self.m as f64).ln();
        ((-u.ln()) * ml).floor() as usize
    }

    /// Greedy descent at one level: move to the best neighbor until no
    /// neighbor improves on the current node.
    fn greedy_at_level(&self, query: &[f32], mut cur: usize, level: usize) -> usize {
        let mut cur_sim = self.sim(cur, query);
        loop {
            let mut improved = false;
            if level < self.nodes[cur].neighbors.len() {
                for &n in &self.nodes[cur].neighbors[level] {
                    let s = self.sim(n, query);
                    if s > cur_sim {
                        cur_sim = s;
                        cur = n;
                        improved = true;
                    }
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first beam search at one level; returns up to `ef` candidates
    /// sorted descending by similarity. Tombstoned nodes are traversed and
    /// returned (the caller filters).
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[usize],
        ef: usize,
        level: usize,
    ) -> Vec<Scored> {
        let mut visited: HashSet<usize> = HashSet::new();
        let mut frontier: BinaryHeap<Scored> = BinaryHeap::new(); // best-first
        let mut results: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new(); // worst on top
        for &e in entries {
            if visited.insert(e) {
                let s = self.sim(e, query);
                frontier.push(Scored { sim: s, idx: e });
                results.push(std::cmp::Reverse(Scored { sim: s, idx: e }));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
        while let Some(best) = frontier.pop() {
            let worst_kept = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
            if best.sim < worst_kept && results.len() >= ef {
                break;
            }
            if level < self.nodes[best.idx].neighbors.len() {
                for &n in &self.nodes[best.idx].neighbors[level] {
                    if visited.insert(n) {
                        let s = self.sim(n, query);
                        let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
                        if results.len() < ef || s > worst {
                            frontier.push(Scored { sim: s, idx: n });
                            results.push(std::cmp::Reverse(Scored { sim: s, idx: n }));
                            if results.len() > ef {
                                results.pop();
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.sim.partial_cmp(&a.sim).unwrap_or(Ordering::Equal));
        out
    }

    /// Link `node_idx` into `level`, pruning neighbor lists to capacity.
    fn connect(&mut self, node_idx: usize, level: usize, candidates: &[Scored]) {
        let cap = if level == 0 { self.m0 } else { self.m };
        let selected: Vec<usize> = candidates
            .iter()
            .filter(|c| c.idx != node_idx)
            .take(self.m)
            .map(|c| c.idx)
            .collect();
        self.nodes[node_idx].neighbors[level] = selected.clone();
        for n in selected {
            let list = &mut self.nodes[n].neighbors[level];
            if !list.contains(&node_idx) {
                list.push(node_idx);
            }
            if list.len() > cap {
                // prune to the `cap` most similar neighbors of n
                let base = self.nodes[n].vector.clone();
                let mut scored: Vec<(usize, f32)> = self.nodes[n].neighbors[level]
                    .iter()
                    .map(|&x| (x, self.metric.similarity(&base, &self.nodes[x].vector)))
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
                scored.truncate(cap);
                self.nodes[n].neighbors[level] = scored.into_iter().map(|(x, _)| x).collect();
            }
        }
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.id_to_idx.len()
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        // Upsert = tombstone the old node, insert a fresh one.
        if let Some(&old) = self.id_to_idx.get(&id) {
            self.nodes[old].deleted = true;
        }
        let level = self.random_level();
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            id,
            vector,
            deleted: false,
            neighbors: vec![Vec::new(); level + 1],
        });
        self.id_to_idx.insert(id, node_idx);

        let Some(mut cur) = self.entry else {
            self.entry = Some(node_idx);
            self.max_level = level;
            return Ok(());
        };

        let query = self.nodes[node_idx].vector.clone();
        // Descend through levels above the new node's level.
        for lev in ((level + 1)..=self.max_level).rev() {
            cur = self.greedy_at_level(&query, cur, lev);
        }
        // Connect on each shared level.
        let mut entries = vec![cur];
        for lev in (0..=level.min(self.max_level)).rev() {
            let candidates = self.search_layer(&query, &entries, self.ef_construction, lev);
            self.connect(node_idx, lev, &candidates);
            entries = candidates.iter().map(|c| c.idx).collect();
            if entries.is_empty() {
                entries = vec![cur];
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(node_idx);
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(idx) = self.id_to_idx.remove(&id) else {
            return false;
        };
        self.nodes[idx].deleted = true;
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, VectorDbError> {
        check_query(self.dim, query, k)?;
        let Some(mut cur) = self.entry else {
            return Ok(Vec::new());
        };
        for lev in (1..=self.max_level).rev() {
            cur = self.greedy_at_level(query, cur, lev);
        }
        // Widen the beam when tombstones could crowd out live results.
        let ef = self.ef_search.max(k + self.tombstones().min(64));
        let found = self.search_layer(query, &[cur], ef, 0);
        let mut out: Vec<(u64, f32)> = found
            .into_iter()
            .filter(|c| !self.nodes[c.idx].deleted)
            .map(|c| (self.nodes[c.idx].id, c.sim))
            .collect();
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_add(1);
        (0..dim)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn filled(n: u64, dim: usize) -> (HnswIndex, FlatIndex) {
        let mut hnsw = HnswIndex::new(dim, Metric::Cosine, 8, 64, 7);
        let mut flat = FlatIndex::new(dim, Metric::Cosine);
        for id in 0..n {
            let v = pseudo_vec(id * 7919, dim);
            hnsw.insert(id, v.clone()).unwrap();
            flat.insert(id, v).unwrap();
        }
        (hnsw, flat)
    }

    #[test]
    fn single_element() {
        let mut idx = HnswIndex::new(3, Metric::Cosine, 4, 16, 1);
        idx.insert(42, vec![1.0, 0.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.0, 0.0], 5).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 42);
    }

    #[test]
    fn empty_search_is_empty() {
        let idx = HnswIndex::new(3, Metric::Cosine, 4, 16, 1);
        assert!(idx.search(&[1.0, 0.0, 0.0], 3).unwrap().is_empty());
    }

    #[test]
    fn exact_match_is_top_hit() {
        let (hnsw, _) = filled(200, 8);
        let target = pseudo_vec(50 * 7919, 8);
        let hits = hnsw.search(&target, 1).unwrap();
        assert_eq!(hits[0].0, 50);
    }

    #[test]
    fn recall_at_10_vs_flat_is_high() {
        let (hnsw, flat) = filled(500, 8);
        let mut total_overlap = 0usize;
        let n_queries = 20;
        for q in 0..n_queries {
            let query = pseudo_vec(q * 104729 + 13, 8);
            let h: HashSet<u64> = hnsw
                .search(&query, 10)
                .unwrap()
                .into_iter()
                .map(|x| x.0)
                .collect();
            let f: HashSet<u64> = flat
                .search(&query, 10)
                .unwrap()
                .into_iter()
                .map(|x| x.0)
                .collect();
            total_overlap += h.intersection(&f).count();
        }
        let recall = total_overlap as f64 / (10 * n_queries) as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn removed_ids_never_returned() {
        let (mut hnsw, _) = filled(100, 4);
        for id in 0..50u64 {
            assert!(hnsw.remove(id));
        }
        assert_eq!(hnsw.len(), 50);
        assert_eq!(hnsw.tombstones(), 50);
        let hits = hnsw.search(&pseudo_vec(3, 4), 20).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.0 >= 50), "{hits:?}");
    }

    #[test]
    fn remove_missing_is_false() {
        let mut idx = HnswIndex::new(2, Metric::Cosine, 4, 8, 1);
        assert!(!idx.remove(1));
    }

    #[test]
    fn upsert_returns_new_vector() {
        let mut idx = HnswIndex::new(2, Metric::Cosine, 4, 16, 1);
        idx.insert(1, vec![1.0, 0.0]).unwrap();
        idx.insert(2, vec![0.7, 0.7]).unwrap();
        idx.insert(1, vec![0.0, 1.0]).unwrap();
        assert_eq!(idx.len(), 2);
        let hits = idx.search(&[0.0, 1.0], 1).unwrap();
        assert_eq!(hits[0].0, 1);
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_construction() {
        let (a, _) = filled(120, 4);
        let (b, _) = filled(120, 4);
        let q = pseudo_vec(999, 4);
        assert_eq!(a.search(&q, 5).unwrap(), b.search(&q, 5).unwrap());
    }

    #[test]
    fn results_sorted_descending() {
        let (hnsw, _) = filled(200, 4);
        let hits = hnsw.search(&pseudo_vec(55, 4), 10).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn dimension_checks() {
        let mut idx = HnswIndex::new(3, Metric::Cosine, 4, 8, 1);
        assert!(matches!(
            idx.insert(1, vec![1.0]),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.search(&[1.0], 1),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn level_distribution_is_geometric_ish() {
        let mut idx = HnswIndex::new(2, Metric::Cosine, 8, 8, 3);
        let mut top = 0;
        for _ in 0..2000 {
            if idx.random_level() == 0 {
                top += 1;
            }
        }
        // With m=8, P(level 0) = 1 − 1/8 ≈ 0.875.
        let frac = top as f64 / 2000.0;
        assert!((frac - 0.875).abs() < 0.05, "frac={frac}");
    }
}
