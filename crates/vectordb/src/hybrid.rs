//! Hybrid retrieval: dense vector search fused with BM25.
//!
//! Reciprocal Rank Fusion (RRF) combines the two result lists without score
//! normalization headaches: each document's fused score is
//! `Σ 1/(k + rank)` over the lists it appears in. RRF is the standard fusion
//! for production RAG because it is scale-free and robust.

use crate::bm25::Bm25Index;
use crate::error::VectorDbError;
use crate::index::VectorIndex;

/// RRF constant `k`. 60 is the value from the original RRF paper and the
/// common default in search engines.
pub const RRF_K: f64 = 60.0;

/// Fuse two ranked id lists with Reciprocal Rank Fusion.
///
/// Inputs are best-first; output is best-first fused (ties by id).
pub fn reciprocal_rank_fusion(dense: &[u64], lexical: &[u64], k: f64) -> Vec<(u64, f64)> {
    let mut scores: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for list in [dense, lexical] {
        for (rank, &id) in list.iter().enumerate() {
            *scores.entry(id).or_insert(0.0) += 1.0 / (k + rank as f64 + 1.0);
        }
    }
    let mut fused: Vec<(u64, f64)> = scores.into_iter().collect();
    fused.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    fused
}

/// A hybrid searcher over a dense index and a BM25 index that share ids.
///
/// Both indexes must be kept in sync by the caller (insert/remove to both);
/// [`HybridSearcher::insert`] does that when given the text and its vector.
pub struct HybridSearcher<I> {
    dense: I,
    lexical: Bm25Index,
    /// Over-fetch factor applied to each leg before fusion.
    pub overfetch: usize,
}

impl<I: VectorIndex> HybridSearcher<I> {
    /// Build from an empty dense index.
    pub fn new(dense: I) -> Self {
        Self {
            dense,
            lexical: Bm25Index::default(),
            overfetch: 3,
        }
    }

    /// Number of documents (dense side; the two sides stay in sync).
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Insert a document into both legs.
    ///
    /// # Errors
    /// Propagates dense-index failures (the lexical insert cannot fail).
    pub fn insert(&mut self, id: u64, text: &str, vector: Vec<f32>) -> Result<(), VectorDbError> {
        self.dense.insert(id, vector)?;
        self.lexical.insert(id, text);
        Ok(())
    }

    /// Remove from both legs. Returns whether either side had the id.
    pub fn remove(&mut self, id: u64) -> bool {
        let d = self.dense.remove(id);
        let l = self.lexical.remove(id);
        d || l
    }

    /// Hybrid top-k: RRF over the dense and lexical top-(k·overfetch) lists.
    ///
    /// # Errors
    /// Propagates dense-index failures.
    pub fn search(
        &self,
        query_text: &str,
        query_vector: &[f32],
        k: usize,
    ) -> Result<Vec<(u64, f64)>, VectorDbError> {
        let fetch = k.saturating_mul(self.overfetch).max(k);
        let dense: Vec<u64> = self
            .dense
            .search(query_vector, fetch)?
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let lexical: Vec<u64> = self
            .lexical
            .search(query_text, fetch)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let mut fused = reciprocal_rank_fusion(&dense, &lexical, RRF_K);
        fused.truncate(k);
        Ok(fused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{Embedder, HashingEmbedder};
    use crate::flat::FlatIndex;
    use crate::metric::Metric;

    const DOCS: &[&str] = &[
        "The store operates from 9 AM to 5 PM from Sunday to Saturday",
        "Annual leave entitlement is 14 days per calendar year",
        "The probation period lasts three months for new employees",
        "Uniforms must be worn at all times inside the store",
        "Expense claims must be submitted within 30 days with receipts",
    ];

    fn searcher() -> (HybridSearcher<FlatIndex>, HashingEmbedder) {
        let embedder = HashingEmbedder::new(128, 7);
        let mut s = HybridSearcher::new(FlatIndex::new(128, Metric::Cosine));
        for (i, d) in DOCS.iter().enumerate() {
            s.insert(i as u64, d, embedder.embed(d)).unwrap();
        }
        (s, embedder)
    }

    #[test]
    fn rrf_prefers_docs_in_both_lists() {
        let fused = reciprocal_rank_fusion(&[1, 2, 3], &[3, 4, 5], RRF_K);
        // 3 appears in both lists → highest fused score
        assert_eq!(fused[0].0, 3);
    }

    #[test]
    fn rrf_rank_order_respected_within_one_list() {
        let fused = reciprocal_rank_fusion(&[1, 2, 3], &[], RRF_K);
        let ids: Vec<u64> = fused.iter().map(|f| f.0).collect();
        assert_eq!(ids, [1, 2, 3]);
    }

    #[test]
    fn rrf_empty_lists() {
        assert!(reciprocal_rank_fusion(&[], &[], RRF_K).is_empty());
    }

    #[test]
    fn hybrid_finds_relevant_doc() {
        let (s, embedder) = searcher();
        let q = "how long is the probation period?";
        let hits = s.search(q, &embedder.embed(q), 2).unwrap();
        assert_eq!(hits[0].0, 2, "{hits:?}");
    }

    #[test]
    fn lexical_leg_rescues_exact_terms() {
        // A query that is almost all exact terms from doc 4
        let (s, embedder) = searcher();
        let q = "expense claims receipts 30 days";
        let hits = s.search(q, &embedder.embed(q), 1).unwrap();
        assert_eq!(hits[0].0, 4);
    }

    #[test]
    fn remove_affects_both_legs() {
        let (mut s, embedder) = searcher();
        assert!(s.remove(2));
        assert!(!s.remove(2));
        let q = "probation period months";
        let hits = s.search(q, &embedder.embed(q), 5).unwrap();
        assert!(hits.iter().all(|h| h.0 != 2));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn k_respected() {
        let (s, embedder) = searcher();
        let q = "store";
        assert_eq!(s.search(q, &embedder.embed(q), 2).unwrap().len(), 2);
    }

    #[test]
    fn fused_scores_descend() {
        let (s, embedder) = searcher();
        let q = "store hours sunday";
        let hits = s.search(q, &embedder.embed(q), 5).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
