//! The index abstraction shared by flat, IVF and HNSW indexes.

use crate::error::VectorDbError;

/// A top-k nearest-neighbour index over `f32` vectors keyed by `u64` ids.
///
/// All implementations rank by a [`crate::metric::Metric`] *similarity*
/// (higher = closer) and return results sorted descending.
pub trait VectorIndex: Send + Sync {
    /// Dimensionality of stored vectors.
    fn dim(&self) -> usize;

    /// Number of live (non-deleted) vectors.
    fn len(&self) -> usize;

    /// True when no live vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert (or replace) the vector for `id`.
    ///
    /// # Errors
    /// Returns [`VectorDbError::DimensionMismatch`] for wrong-length vectors.
    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VectorDbError>;

    /// Remove `id`. Returns whether it was present.
    fn remove(&mut self, id: u64) -> bool;

    /// The `k` most similar ids with their similarity, sorted descending.
    ///
    /// Returns fewer than `k` results when the index holds fewer vectors.
    ///
    /// # Errors
    /// Returns [`VectorDbError::DimensionMismatch`] for wrong-length queries
    /// and [`VectorDbError::InvalidParameter`] for `k == 0`.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, VectorDbError>;
}

/// Validate common search arguments.
pub(crate) fn check_query(dim: usize, query: &[f32], k: usize) -> Result<(), VectorDbError> {
    if query.len() != dim {
        return Err(VectorDbError::DimensionMismatch {
            expected: dim,
            got: query.len(),
        });
    }
    if k == 0 {
        return Err(VectorDbError::InvalidParameter(
            "k must be at least 1".into(),
        ));
    }
    Ok(())
}
