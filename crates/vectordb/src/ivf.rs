//! Inverted-file (IVF) index: k-means coarse quantizer + per-cluster lists.
//!
//! Queries probe only the `nprobe` closest clusters, trading a little recall
//! for a large constant-factor speedup over the flat scan once the corpus is
//! big. The quantizer is trained lazily with seeded Lloyd's iterations so
//! results are deterministic.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::VectorDbError;
use crate::index::{check_query, VectorIndex};
use crate::metric::Metric;

/// IVF index parameters and state.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    /// Number of clusters the quantizer trains.
    nlist: usize,
    /// Number of clusters probed at query time.
    pub nprobe: usize,
    seed: u64,
    vectors: HashMap<u64, Vec<f32>>,
    centroids: Vec<Vec<f32>>,
    /// cluster → member ids. Rebuilt by [`IvfIndex::build`].
    lists: Vec<Vec<u64>>,
    /// Ids inserted since the last build (searched exhaustively).
    pending: Vec<u64>,
}

impl IvfIndex {
    /// New empty index; `nlist` clusters, probing `nprobe` of them.
    ///
    /// # Panics
    /// Panics if `nlist == 0` or `nprobe == 0`.
    pub fn new(dim: usize, metric: Metric, nlist: usize, nprobe: usize, seed: u64) -> Self {
        assert!(nlist > 0, "nlist must be positive");
        assert!(nprobe > 0, "nprobe must be positive");
        Self {
            dim,
            metric,
            nlist,
            nprobe,
            seed,
            vectors: HashMap::new(),
            centroids: Vec::new(),
            lists: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Has the quantizer been trained?
    pub fn is_built(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Number of ids not yet assigned to a cluster.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Train the quantizer with Lloyd's k-means (`iters` iterations) and
    /// assign every vector to its nearest centroid.
    ///
    /// With fewer vectors than `nlist`, the effective cluster count shrinks
    /// to the vector count.
    pub fn build(&mut self, iters: usize) {
        let ids: Vec<u64> = {
            let mut v: Vec<u64> = self.vectors.keys().copied().collect();
            v.sort_unstable(); // deterministic order regardless of HashMap
            v
        };
        if ids.is_empty() {
            self.centroids.clear();
            self.lists.clear();
            self.pending.clear();
            return;
        }
        let k = self.nlist.min(ids.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut chosen = ids.clone();
        chosen.shuffle(&mut rng);
        self.centroids = chosen[..k]
            .iter()
            .map(|id| self.vectors[id].clone())
            .collect();

        for _ in 0..iters {
            // Assign.
            let mut sums = vec![vec![0.0f32; self.dim]; k];
            let mut counts = vec![0usize; k];
            for id in &ids {
                let v = &self.vectors[id];
                let c = self.nearest_centroid(v);
                for (s, x) in sums[c].iter_mut().zip(v) {
                    *s += x;
                }
                counts[c] += 1;
            }
            // Update (empty clusters keep their centroid).
            for c in 0..k {
                if counts[c] > 0 {
                    for s in sums[c].iter_mut() {
                        *s /= counts[c] as f32;
                    }
                    self.centroids[c] = std::mem::take(&mut sums[c]);
                }
            }
        }

        // Final assignment into lists.
        self.lists = vec![Vec::new(); k];
        for id in ids {
            let c = self.nearest_centroid(&self.vectors[&id]);
            self.lists[c].push(id);
        }
        self.pending.clear();
    }

    fn nearest_centroid(&self, v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_sim = f32::NEG_INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let sim = self.metric.similarity(v, centroid);
            if sim > best_sim {
                best_sim = sim;
                best = c;
            }
        }
        best
    }

    fn scan(&self, ids: &[u64], query: &[f32], out: &mut Vec<(u64, f32)>) {
        for id in ids {
            if let Some(v) = self.vectors.get(id) {
                out.push((*id, self.metric.similarity(query, v)));
            }
        }
    }
}

impl VectorIndex for IvfIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        let existed = self.vectors.insert(id, vector).is_some();
        if !existed {
            if self.is_built() {
                // Assign immediately to the nearest list; still exact for
                // that list, no retrain needed.
                let c = self.nearest_centroid(&self.vectors[&id]);
                self.lists[c].push(id);
            } else {
                self.pending.push(id);
            }
        } else if self.is_built() {
            // Replaced vector may belong to a different cluster; reassign.
            for list in self.lists.iter_mut() {
                list.retain(|&x| x != id);
            }
            let c = self.nearest_centroid(&self.vectors[&id]);
            self.lists[c].push(id);
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> bool {
        if self.vectors.remove(&id).is_none() {
            return false;
        }
        for list in self.lists.iter_mut() {
            list.retain(|&x| x != id);
        }
        self.pending.retain(|&x| x != id);
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, VectorDbError> {
        check_query(self.dim, query, k)?;
        let mut candidates: Vec<(u64, f32)> = Vec::new();
        if self.is_built() {
            // Rank centroids, probe the best nprobe lists.
            let mut order: Vec<(usize, f32)> = self
                .centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (c, self.metric.similarity(query, centroid)))
                .collect();
            order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(c, _) in order.iter().take(self.nprobe) {
                self.scan(&self.lists[c], query, &mut candidates);
            }
            self.scan(&self.pending, query, &mut candidates);
        } else {
            // Untrained: exact scan.
            let mut ids: Vec<u64> = self.vectors.keys().copied().collect();
            ids.sort_unstable();
            self.scan(&ids, query, &mut candidates);
        }
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        candidates.truncate(k);
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs of points on the unit circle.
    fn blob_index(n_per_blob: usize) -> IvfIndex {
        let mut idx = IvfIndex::new(2, Metric::Cosine, 2, 1, 42);
        for i in 0..n_per_blob {
            let t = 0.1 * (i as f32 / n_per_blob as f32);
            idx.insert(i as u64, vec![(t).cos(), (t).sin()]).unwrap(); // near (1,0)
            idx.insert(
                (n_per_blob + i) as u64,
                vec![
                    (std::f32::consts::PI / 2.0 + t).cos(),
                    (std::f32::consts::PI / 2.0 + t).sin(),
                ],
            )
            .unwrap(); // near (0,1)
        }
        idx
    }

    #[test]
    fn untrained_search_is_exact() {
        let idx = blob_index(10);
        assert!(!idx.is_built());
        let hits = idx.search(&[1.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].0, 0); // exact nearest
    }

    #[test]
    fn build_clusters_blobs_correctly() {
        let mut idx = blob_index(20);
        idx.build(10);
        assert!(idx.is_built());
        assert_eq!(idx.pending_len(), 0);
        // probing 1 of 2 clusters still finds the right blob
        let hits = idx.search(&[1.0, 0.0], 5).unwrap();
        assert!(hits.iter().all(|h| h.0 < 20), "{hits:?}");
    }

    #[test]
    fn post_build_inserts_are_searchable() {
        let mut idx = blob_index(10);
        idx.build(5);
        // Distinct from every existing vector: slightly below the x-axis.
        idx.insert(999, vec![0.995, -0.1]).unwrap();
        let hits = idx.search(&[0.995, -0.1], 1).unwrap();
        assert_eq!(hits[0].0, 999);
    }

    #[test]
    fn pending_inserts_before_build_are_searchable() {
        let mut idx = IvfIndex::new(2, Metric::Cosine, 4, 2, 1);
        idx.insert(1, vec![0.0, 1.0]).unwrap();
        let hits = idx.search(&[0.0, 1.0], 1).unwrap();
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn remove_purges_everywhere() {
        let mut idx = blob_index(5);
        idx.build(5);
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        let hits = idx.search(&[1.0, 0.0], 10).unwrap();
        assert!(hits.iter().all(|h| h.0 != 0));
    }

    #[test]
    fn upsert_reassigns_cluster() {
        let mut idx = blob_index(10);
        idx.build(5);
        // move vector 0 from blob A to blob B
        idx.insert(0, vec![0.0, 1.0]).unwrap();
        let hits = idx.search(&[0.0, 1.0], 1).unwrap();
        assert_eq!(hits[0].0, 0);
        // it must not be findable in blob A's probe anymore… and must not be
        // duplicated in any list
        let total: usize = idx.lists.iter().map(Vec::len).sum();
        assert_eq!(total + idx.pending_len(), idx.len());
    }

    #[test]
    fn fewer_vectors_than_nlist_is_fine() {
        let mut idx = IvfIndex::new(2, Metric::Cosine, 16, 4, 3);
        idx.insert(1, vec![1.0, 0.0]).unwrap();
        idx.insert(2, vec![0.0, 1.0]).unwrap();
        idx.build(5);
        assert_eq!(idx.search(&[1.0, 0.0], 1).unwrap()[0].0, 1);
    }

    #[test]
    fn build_empty_is_noop() {
        let mut idx = IvfIndex::new(2, Metric::Cosine, 4, 1, 3);
        idx.build(5);
        assert!(!idx.is_built());
        assert!(idx.search(&[1.0, 0.0], 1).unwrap().is_empty());
    }

    #[test]
    fn deterministic_across_builds() {
        let mut a = blob_index(15);
        let mut b = blob_index(15);
        a.build(8);
        b.build(8);
        assert_eq!(
            a.search(&[0.5, 0.5], 5).unwrap(),
            b.search(&[0.5, 0.5], 5).unwrap()
        );
    }

    #[test]
    fn dimension_checks() {
        let mut idx = IvfIndex::new(3, Metric::Cosine, 2, 1, 0);
        assert!(matches!(
            idx.insert(1, vec![1.0]),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.search(&[1.0], 1),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn full_probe_recall_matches_flat() {
        use crate::flat::FlatIndex;
        // nprobe == nlist → IVF must agree with the exact flat index.
        let mut ivf = IvfIndex::new(4, Metric::Euclidean, 4, 4, 9);
        let mut flat = FlatIndex::new(4, Metric::Euclidean);
        let mut s = 12345u64;
        for id in 0..60u64 {
            let v: Vec<f32> = (0..4)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 40) as f32 / (1u32 << 24) as f32) - 0.5
                })
                .collect();
            ivf.insert(id, v.clone()).unwrap();
            flat.insert(id, v).unwrap();
        }
        ivf.build(10);
        let q = [0.1, -0.2, 0.3, 0.0];
        assert_eq!(ivf.search(&q, 8).unwrap(), flat.search(&q, 8).unwrap());
    }
}
