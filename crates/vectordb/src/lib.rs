//! # vectordb
//!
//! An embedded vector database — the RAG substrate of the paper (§III-B).
//!
//! The paper retrieves the context `c_i` for each question from a
//! "vectorised database" before generation and verification. This crate
//! provides that store, built from scratch:
//!
//! * [`embed`] — text embedders: a hashing character-n-gram embedder (no
//!   fitting required) and a TF-IDF-weighted variant fitted on the corpus.
//! * [`metric`] — cosine / dot / Euclidean similarity.
//! * [`flat`] — exact brute-force index (the correctness reference).
//! * [`ivf`] — inverted-file index with seeded k-means coarse quantizer.
//! * [`hnsw`] — hierarchical navigable small-world graph index.
//! * [`store`] — document store with metadata.
//! * [`collection`] — the user-facing API: upsert / delete / query with
//!   metadata filters, generic over the index.
//! * [`persist`] — JSON snapshot save/load.

pub mod bm25;
pub mod collection;
pub mod embed;
pub mod error;
pub mod filter;
pub mod flat;
pub mod hnsw;
pub mod hybrid;
pub mod index;
pub mod ivf;
pub mod metric;
pub mod persist;
pub mod sq8;
pub mod store;

pub use bm25::{Bm25Index, Bm25Params};
pub use collection::{Collection, QueryResult};
pub use embed::{Embedder, HashingEmbedder, TfIdfEmbedder};
pub use error::VectorDbError;
pub use filter::Filter;
pub use flat::FlatIndex;
pub use hnsw::HnswIndex;
pub use hybrid::HybridSearcher;
pub use index::VectorIndex;
pub use ivf::IvfIndex;
pub use metric::Metric;
pub use sq8::Sq8FlatIndex;
pub use store::{DocId, Document};
