//! Similarity metrics.
//!
//! The inner products all route through the single unrolled
//! [`tensor::ops::dot`] kernel — the same code the transformer engine runs —
//! so there is exactly one dot-product implementation in the workspace to
//! optimize and to trust.

use serde::{Deserialize, Serialize};
use tensor::ops::dot;

/// The metric an index ranks by. All metrics are exposed as *similarities*
/// (higher = closer) so indexes can share one ordering convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Cosine similarity (angle-based; magnitude-invariant).
    #[default]
    Cosine,
    /// Raw dot product.
    Dot,
    /// Negated Euclidean distance (so that higher is still closer).
    Euclidean,
}

impl Metric {
    /// Similarity between two equal-length vectors (higher = closer).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "metric on vectors of different lengths");
        match self {
            Metric::Cosine => {
                let d = dot(a, b);
                let na = dot(a, a).sqrt();
                let nb = dot(b, b).sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    d / (na * nb)
                }
            }
            Metric::Dot => dot(a, b),
            Metric::Euclidean => {
                let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                -d2.sqrt()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((Metric::Cosine.similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(Metric::Cosine.similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((Metric::Cosine.similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(Metric::Cosine.similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3, 0.7, -0.2];
        let b = [1.1, 0.4, 0.9];
        let scaled: Vec<f32> = a.iter().map(|v| v * 5.0).collect();
        let s1 = Metric::Cosine.similarity(&a, &b);
        let s2 = Metric::Cosine.similarity(&scaled, &b);
        assert!((s1 - s2).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Metric::Dot.similarity(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn euclidean_closer_is_higher() {
        let q = [0.0, 0.0];
        let near = [1.0, 0.0];
        let far = [3.0, 4.0];
        assert!(Metric::Euclidean.similarity(&q, &near) > Metric::Euclidean.similarity(&q, &far));
        assert_eq!(Metric::Euclidean.similarity(&q, &far), -5.0);
    }

    #[test]
    fn euclidean_self_is_zero() {
        let v = [1.0, -2.0, 0.5];
        assert_eq!(Metric::Euclidean.similarity(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn length_mismatch_panics() {
        Metric::Cosine.similarity(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_metric_is_the_tensor_kernel_bitwise() {
        // The dedupe contract: Metric::Dot IS tensor::ops::dot — same bits,
        // including lengths that exercise the kernel's unroll tail.
        for len in [1usize, 3, 4, 7, 16, 33] {
            let a: Vec<f32> = (0..len)
                .map(|i| ((i * 13) % 11) as f32 * 0.31 - 1.2)
                .collect();
            let b: Vec<f32> = (0..len)
                .map(|i| ((i * 7) % 9) as f32 * 0.17 - 0.6)
                .collect();
            assert_eq!(
                Metric::Dot.similarity(&a, &b).to_bits(),
                dot(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn cosine_agrees_with_text_engine_bag_cosine() {
        // Cross-crate equivalence: text-engine's HashMap bag-of-words cosine
        // and this crate's dense cosine (via tensor::ops::dot) compute the
        // same quantity when the bags are densified over a shared vocabulary.
        use std::collections::HashMap;
        use text_engine::similarity::cosine_counts;

        type Bag = &'static [(&'static str, usize)];
        let cases: &[(Bag, Bag)] = &[
            (&[("a", 1), ("b", 2)], &[("a", 3), ("c", 1)]),
            (
                &[("x", 2), ("y", 3), ("z", 1)],
                &[("x", 2), ("y", 3), ("z", 1)],
            ),
            (&[("only", 4)], &[("other", 5)]),
        ];
        for (la, lb) in cases {
            let a: HashMap<&str, usize> = la.iter().copied().collect();
            let b: HashMap<&str, usize> = lb.iter().copied().collect();
            let mut vocab: Vec<&str> = a.keys().chain(b.keys()).copied().collect();
            vocab.sort_unstable();
            vocab.dedup();
            let densify = |m: &HashMap<&str, usize>| -> Vec<f32> {
                vocab
                    .iter()
                    .map(|w| m.get(w).copied().unwrap_or(0) as f32)
                    .collect()
            };
            let sparse = cosine_counts(&a, &b);
            let dense = f64::from(Metric::Cosine.similarity(&densify(&a), &densify(&b)));
            assert!(
                (sparse - dense).abs() < 1e-6,
                "sparse {sparse} vs dense {dense}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn cosine_bounded(
            a in proptest::collection::vec(-5f32..5.0, 3),
            b in proptest::collection::vec(-5f32..5.0, 3),
        ) {
            let s = Metric::Cosine.similarity(&a, &b);
            proptest::prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&s));
        }

        #[test]
        fn all_metrics_symmetric(
            a in proptest::collection::vec(-5f32..5.0, 4),
            b in proptest::collection::vec(-5f32..5.0, 4),
        ) {
            for m in [Metric::Cosine, Metric::Dot, Metric::Euclidean] {
                proptest::prop_assert!((m.similarity(&a, &b) - m.similarity(&b, &a)).abs() < 1e-5);
            }
        }
    }
}
