//! JSON snapshot persistence.
//!
//! A snapshot stores documents and their vectors; on load the vectors are
//! re-inserted into a fresh index (index-internal structures like HNSW
//! graphs are rebuilt deterministically, which also compacts tombstones).

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::collection::Collection;
use crate::error::VectorDbError;
use crate::flat::FlatIndex;
use crate::index::VectorIndex;
use crate::store::{DocId, Document};

/// On-disk snapshot format.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Vector dimensionality.
    pub dim: usize,
    /// (id, vector, document) triples.
    pub entries: Vec<(DocId, Vec<f32>, Document)>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Capture a snapshot of a flat-index collection (flat indexes expose their
/// vectors; graph indexes are rebuilt from snapshots of the flat reference).
pub fn snapshot_flat(collection: &Collection<FlatIndex>) -> Snapshot {
    collection.with_parts(|index, store| {
        let mut entries = Vec::with_capacity(index.len());
        for (id, doc) in store.iter() {
            if let Some(v) = index.vector(id) {
                entries.push((id, v.to_vec(), doc.clone()));
            }
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            dim: index.dim(),
            entries,
        }
    })
}

/// Serialize a snapshot to a file.
///
/// # Errors
/// Returns [`VectorDbError::Persistence`] on I/O or serialization failure.
pub fn save(snapshot: &Snapshot, path: &Path) -> Result<(), VectorDbError> {
    let json =
        serde_json::to_string(snapshot).map_err(|e| VectorDbError::Persistence(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| VectorDbError::Persistence(e.to_string()))
}

/// Load a snapshot from a file.
///
/// # Errors
/// Returns [`VectorDbError::Persistence`] on I/O / parse failure or an
/// unsupported version.
pub fn load(path: &Path) -> Result<Snapshot, VectorDbError> {
    let json =
        std::fs::read_to_string(path).map_err(|e| VectorDbError::Persistence(e.to_string()))?;
    let snap: Snapshot =
        serde_json::from_str(&json).map_err(|e| VectorDbError::Persistence(e.to_string()))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(VectorDbError::Persistence(format!(
            "unsupported snapshot version {}",
            snap.version
        )));
    }
    Ok(snap)
}

/// Restore a snapshot into any index type: vectors are inserted as stored
/// (no re-embedding), documents land at their original ids.
pub fn restore_into<I: VectorIndex>(
    snapshot: Snapshot,
    index: &mut I,
    put_doc: impl FnMut(DocId, Document),
) -> Result<(), VectorDbError> {
    if index.dim() != snapshot.dim {
        return Err(VectorDbError::DimensionMismatch {
            expected: index.dim(),
            got: snapshot.dim,
        });
    }
    let mut put_doc = put_doc;
    for (id, vector, doc) in snapshot.entries {
        index.insert(id, vector)?;
        put_doc(id, doc);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::HashingEmbedder;
    use crate::hnsw::HnswIndex;
    use crate::metric::Metric;
    use crate::store::DocStore;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vectordb-test-{}-{name}.json", std::process::id()))
    }

    fn seeded_collection() -> Collection<FlatIndex> {
        let c = Collection::new(
            Box::new(HashingEmbedder::new(32, 5)),
            FlatIndex::new(32, Metric::Cosine),
        );
        c.add(Document::new("alpha policy").with_meta("topic", "a"))
            .unwrap();
        c.add(Document::new("beta handbook").with_meta("topic", "b"))
            .unwrap();
        c
    }

    #[test]
    fn snapshot_roundtrip_through_disk() {
        let c = seeded_collection();
        let snap = snapshot_flat(&c);
        assert_eq!(snap.entries.len(), 2);

        let path = temp_path("roundtrip");
        save(&snap, &path).unwrap();
        let loaded = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.dim, 32);
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0].2.metadata["topic"], "a");
    }

    #[test]
    fn restore_into_flat_preserves_search() {
        let c = seeded_collection();
        let before = c.query("alpha policy", 1).unwrap();
        let snap = snapshot_flat(&c);

        let mut index = FlatIndex::new(32, Metric::Cosine);
        let mut store = DocStore::new();
        restore_into(snap, &mut index, |id, doc| store.put(id, doc)).unwrap();
        let query_vec = HashingEmbedder::new(32, 5).embed("alpha policy");
        use crate::embed::Embedder;
        let hits = index.search(&query_vec, 1).unwrap();
        assert_eq!(hits[0].0, before[0].id);
        assert_eq!(store.get(hits[0].0).unwrap().text, "alpha policy");
    }

    #[test]
    fn restore_into_hnsw_rebuilds_graph() {
        let c = seeded_collection();
        let snap = snapshot_flat(&c);
        let mut hnsw = HnswIndex::new(32, Metric::Cosine, 4, 16, 1);
        let mut store = DocStore::new();
        restore_into(snap, &mut hnsw, |id, doc| store.put(id, doc)).unwrap();
        assert_eq!(hnsw.len(), 2);
    }

    #[test]
    fn wrong_dim_restore_fails() {
        let c = seeded_collection();
        let snap = snapshot_flat(&c);
        let mut index = FlatIndex::new(16, Metric::Cosine);
        let err = restore_into(snap, &mut index, |_, _| {}).unwrap_err();
        assert!(matches!(err, VectorDbError::DimensionMismatch { .. }));
    }

    #[test]
    fn missing_file_errors() {
        let err = load(Path::new("/nonexistent/vectordb.json")).unwrap_err();
        assert!(matches!(err, VectorDbError::Persistence(_)));
    }

    #[test]
    fn version_mismatch_errors() {
        let path = temp_path("version");
        std::fs::write(&path, r#"{"version":99,"dim":2,"entries":[]}"#).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, VectorDbError::Persistence(msg) if msg.contains("version")));
    }
}
