//! Scalar-quantized (SQ8) flat index.
//!
//! Stores vectors as u8 codes with per-vector (min, scale) — 4× less memory
//! than f32 — and scans with asymmetric distance (f32 query against
//! dequantized codes on the fly). Recall loss is negligible for the hashing
//! embeddings used here; the memory drop is what matters when a handbook
//! corpus has to live on an edge device next to the SLM.

use std::collections::HashMap;

use crate::error::VectorDbError;
use crate::index::{check_query, VectorIndex};
use crate::metric::Metric;

/// One quantized vector: codes plus the affine dequantization parameters.
#[derive(Debug, Clone)]
struct Sq8Vector {
    codes: Vec<u8>,
    min: f32,
    scale: f32,
}

impl Sq8Vector {
    fn quantize(v: &[f32]) -> Self {
        let min = v.iter().copied().fold(f32::INFINITY, f32::min);
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
        let codes = v
            .iter()
            .map(|&x| (((x - min) / scale).round()).clamp(0.0, 255.0) as u8)
            .collect();
        Self { codes, min, scale }
    }

    fn dequantize_into(&self, out: &mut [f32]) {
        for (o, &c) in out.iter_mut().zip(&self.codes) {
            *o = self.min + f32::from(c) * self.scale;
        }
    }
}

/// A flat index over SQ8-quantized vectors.
#[derive(Debug, Clone)]
pub struct Sq8FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    vectors: Vec<Sq8Vector>,
    position: HashMap<u64, usize>,
}

impl Sq8FlatIndex {
    /// An empty SQ8 index.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self {
            dim,
            metric,
            ids: Vec::new(),
            vectors: Vec::new(),
            position: HashMap::new(),
        }
    }

    /// Approximate memory held by the codes (excluding the id maps).
    pub fn memory_bytes(&self) -> usize {
        self.vectors.len() * (self.dim + 2 * std::mem::size_of::<f32>())
    }

    /// The dequantized vector for `id`, if present (for accuracy checks).
    pub fn reconstruct(&self, id: u64) -> Option<Vec<f32>> {
        self.position.get(&id).map(|&p| {
            let mut out = vec![0.0; self.dim];
            self.vectors[p].dequantize_into(&mut out);
            out
        })
    }
}

impl VectorIndex for Sq8FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        let q = Sq8Vector::quantize(&vector);
        match self.position.get(&id) {
            Some(&pos) => self.vectors[pos] = q,
            None => {
                self.position.insert(id, self.ids.len());
                self.ids.push(id);
                self.vectors.push(q);
            }
        }
        Ok(())
    }

    fn remove(&mut self, id: u64) -> bool {
        let Some(pos) = self.position.remove(&id) else {
            return false;
        };
        self.ids.swap_remove(pos);
        self.vectors.swap_remove(pos);
        if pos < self.ids.len() {
            self.position.insert(self.ids[pos], pos);
        }
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, VectorDbError> {
        check_query(self.dim, query, k)?;
        let mut scratch = vec![0.0f32; self.dim];
        let mut hits: Vec<(u64, f32)> = self
            .ids
            .iter()
            .zip(&self.vectors)
            .map(|(&id, qv)| {
                qv.dequantize_into(&mut scratch);
                (id, self.metric.similarity(query, &scratch))
            })
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_add(1);
        (0..dim)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn quantization_error_is_small() {
        let v = pseudo_vec(3, 64);
        let q = Sq8Vector::quantize(&v);
        let mut back = vec![0.0; 64];
        q.dequantize_into(&mut back);
        let range = 1.0f32; // values in [-0.5, 0.5]
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() <= range / 255.0, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_vector_quantizes_exactly() {
        let v = vec![0.25f32; 8];
        let q = Sq8Vector::quantize(&v);
        let mut back = vec![0.0; 8];
        q.dequantize_into(&mut back);
        assert_eq!(back, v);
    }

    #[test]
    fn top1_matches_exact_flat_index() {
        let mut sq8 = Sq8FlatIndex::new(32, Metric::Cosine);
        let mut flat = FlatIndex::new(32, Metric::Cosine);
        for id in 0..200u64 {
            let v = pseudo_vec(id * 977, 32);
            sq8.insert(id, v.clone()).unwrap();
            flat.insert(id, v).unwrap();
        }
        let mut agree = 0;
        for q in 0..20u64 {
            let query = pseudo_vec(q * 31 + 7, 32);
            let a = sq8.search(&query, 1).unwrap()[0].0;
            let b = flat.search(&query, 1).unwrap()[0].0;
            if a == b {
                agree += 1;
            }
        }
        assert!(agree >= 18, "top-1 agreement {agree}/20");
    }

    #[test]
    fn memory_is_about_a_quarter() {
        let mut sq8 = Sq8FlatIndex::new(128, Metric::Cosine);
        for id in 0..50u64 {
            sq8.insert(id, pseudo_vec(id, 128)).unwrap();
        }
        let f32_bytes = 50 * 128 * 4;
        assert!(sq8.memory_bytes() * 3 < f32_bytes, "{}", sq8.memory_bytes());
    }

    #[test]
    fn upsert_and_remove() {
        let mut sq8 = Sq8FlatIndex::new(4, Metric::Euclidean);
        sq8.insert(1, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        sq8.insert(1, vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        assert_eq!(sq8.len(), 1);
        let rec = sq8.reconstruct(1).unwrap();
        assert!(rec[1] > 0.9);
        assert!(sq8.remove(1));
        assert!(!sq8.remove(1));
        assert!(sq8.search(&[0.0; 4], 1).unwrap().is_empty());
    }

    #[test]
    fn dimension_checked() {
        let mut sq8 = Sq8FlatIndex::new(3, Metric::Cosine);
        assert!(matches!(
            sq8.insert(1, vec![0.0; 2]),
            Err(VectorDbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn works_inside_collection() {
        use crate::collection::Collection;
        use crate::embed::HashingEmbedder;
        use crate::store::Document;
        let c = Collection::new(
            Box::new(HashingEmbedder::new(128, 7)),
            Sq8FlatIndex::new(128, Metric::Cosine),
        );
        c.add(Document::new("annual leave is 14 days per year"))
            .unwrap();
        c.add(Document::new("uniforms must be worn in the store"))
            .unwrap();
        let hits = c.query("how many days of annual leave?", 1).unwrap();
        assert!(hits[0].document.text.contains("annual leave"));
    }
}
