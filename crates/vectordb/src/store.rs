//! Document store: the payload side of the vector database.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Stable document identifier.
pub type DocId = u64;

/// A stored document: text plus free-form string metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The document text (what gets embedded).
    pub text: String,
    /// Arbitrary metadata (topic, source, section…). BTreeMap for
    /// deterministic serialization.
    pub metadata: BTreeMap<String, String>,
}

impl Document {
    /// A document with no metadata.
    pub fn new(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            metadata: BTreeMap::new(),
        }
    }

    /// Builder-style metadata attachment.
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }
}

/// In-memory document store with monotonically assigned ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocStore {
    docs: HashMap<DocId, Document>,
    next_id: DocId,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a document, returning its assigned id.
    pub fn insert(&mut self, doc: Document) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        self.docs.insert(id, doc);
        id
    }

    /// Replace the document at an existing id (or create it).
    pub fn put(&mut self, id: DocId, doc: Document) {
        self.next_id = self.next_id.max(id + 1);
        self.docs.insert(id, doc);
    }

    /// Fetch a document.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Remove a document. Returns it if present.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        self.docs.remove(&id)
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterate over (id, document) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        let mut ids: Vec<DocId> = self.docs.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(move |id| (id, &self.docs[&id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let mut s = DocStore::new();
        let a = s.insert(Document::new("a"));
        let b = s.insert(Document::new("b"));
        assert!(b > a);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn get_and_remove() {
        let mut s = DocStore::new();
        let id = s.insert(Document::new("hello"));
        assert_eq!(s.get(id).unwrap().text, "hello");
        assert_eq!(s.remove(id).unwrap().text, "hello");
        assert!(s.get(id).is_none());
        assert!(s.remove(id).is_none());
    }

    #[test]
    fn put_advances_next_id() {
        let mut s = DocStore::new();
        s.put(10, Document::new("x"));
        let next = s.insert(Document::new("y"));
        assert!(next > 10);
    }

    #[test]
    fn metadata_builder() {
        let d = Document::new("t")
            .with_meta("topic", "leave")
            .with_meta("section", "3");
        assert_eq!(d.metadata["topic"], "leave");
        assert_eq!(d.metadata["section"], "3");
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut s = DocStore::new();
        s.put(5, Document::new("e"));
        s.put(1, Document::new("a"));
        s.put(3, Document::new("c"));
        let ids: Vec<DocId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, [1, 3, 5]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = DocStore::new();
        s.insert(Document::new("doc").with_meta("k", "v"));
        let json = serde_json::to_string(&s).unwrap();
        let back: DocStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(0).unwrap().metadata["k"], "v");
    }
}
