//! Table I demo: the three contradiction types (Logical, Prompt, Factual)
//! and how the framework scores them against faithful answers.
//!
//! ```text
//! cargo run -p bench --example contradiction_types
//! ```

use hallu_core::{DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

struct Case {
    kind: &'static str,
    question: &'static str,
    context: &'static str,
    faithful: &'static str,
    hallucinated: &'static str,
}

const CASES: &[Case] = &[
    Case {
        kind: "Logical",
        question: "Can you introduce Madison?",
        context: "The city of Madison has over 500 thousand residents. Big cities like Madison \
                  are busy urban centers.",
        faithful: "The city of Madison has over 500 thousand residents. Big cities like \
                   Madison are busy urban centers.",
        hallucinated: "The city of Madison has over 500 thousand residents. It is known for \
                       its small-town charm and quiet atmosphere with a population of 500 \
                       residents.",
    },
    Case {
        kind: "Prompt",
        question: "Describe a healthy breakfast that includes fruits and whole grains.",
        context: "A healthy breakfast includes fruits and whole grains. Oatmeal with berries \
                  is a great choice for breakfast.",
        faithful: "A healthy breakfast includes fruits and whole grains such as oatmeal with \
                   berries.",
        hallucinated: "A bowl of sugary cereal with milk and a side of bacon is a great choice \
                       for breakfast.",
    },
    Case {
        kind: "Factual",
        question: "What are the main ingredients in a traditional Margherita pizza?",
        context: "A traditional Margherita pizza is made with tomatoes, mozzarella cheese and \
                  fresh basil. The dough uses flour, water, salt and yeast.",
        faithful: "A traditional Margherita pizza is made with tomatoes, mozzarella cheese and \
                   fresh basil. The dough uses flour, water, salt and yeast.",
        hallucinated: "A traditional Margherita pizza is made with tomatoes, mozzarella cheese \
                       and fresh basil. The secret key ingredient of the pizza is a layer of \
                       sweet chocolate.",
    },
];

fn main() {
    println!("Table I — contradiction types and detector scores\n");
    for case in CASES {
        let mut detector = HallucinationDetector::new(
            vec![
                Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
                Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
            ],
            DetectorConfig::default(),
        );
        for r in [case.faithful, case.hallucinated, case.context] {
            detector.calibrate(case.question, case.context, r);
        }
        let good = detector
            .score(case.question, case.context, case.faithful)
            .score;
        let bad = detector
            .score(case.question, case.context, case.hallucinated)
            .score;
        println!("== {} contradiction ==", case.kind);
        println!("prompt:       {}", case.question);
        println!("faithful:     s = {good:.3}");
        println!(
            "hallucinated: s = {bad:.3}   <- {}",
            case.hallucinated.trim()
        );
        println!(
            "detected:     {}\n",
            if good > bad {
                "yes (hallucination scores lower)"
            } else {
                "NO"
            }
        );
    }
}
