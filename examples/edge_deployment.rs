//! Edge deployment walkthrough: quantize a model to int8, persist the f32
//! weights, reload them, and confirm the verification behaviour survives —
//! the MiniCPM "runs on the device" story end to end.
//!
//! ```text
//! cargo run -p bench --example edge_deployment --release
//! ```

use slm_runtime::bpe::Bpe;
use slm_runtime::config::ModelConfig;
use slm_runtime::model::TransformerLM;
use slm_runtime::prob::p_yes;
use slm_runtime::quant::{QuantizedLM, QuantizedWeights};
use slm_runtime::weights::ModelWeights;
use slm_runtime::weights_io;

fn main() {
    // A tokenizer trained on the target domain and a (synthetic) checkpoint.
    let corpus = [
        "the store operates from 9 am to 5 pm from sunday to saturday",
        "is the answer correct according to the context reply yes or no",
        "annual leave is 14 days per calendar year",
    ];
    let bpe = Bpe::train(&corpus, 300);
    let cfg = ModelConfig::minicpm_like(bpe.vocab_size());
    let weights = ModelWeights::synthetic(&cfg, 2024);
    let f32_model = TransformerLM::new(cfg.clone(), weights.clone());
    println!(
        "model: {} parameters ({} layers)",
        cfg.num_parameters(),
        cfg.n_layers
    );

    // 1. Quantize to int8 and compare memory.
    let quantized = QuantizedWeights::quantize(&weights);
    let f32_bytes = cfg.num_parameters() * 4;
    println!(
        "weights: {:.1} MiB f32  ->  {:.1} MiB int8 matrices",
        f32_bytes as f64 / (1024.0 * 1024.0),
        quantized.quantized_bytes() as f64 / (1024.0 * 1024.0),
    );

    // 2. The verification probability survives quantization.
    let q_model = QuantizedLM::new(cfg.clone(), &quantized);
    let question = "what are the working hours?";
    let context = "the store operates from 9 am to 5 pm from sunday to saturday";
    let response = "9 am to 5 pm";
    let prompt = bpe.encode(
        &format!("context: {context} question: {question} answer: {response} reply yes or no:"),
        true,
    );
    let p_f32 = p_yes(&f32_model, &bpe, question, context, response);
    let mut cache = q_model.new_cache();
    let logits = q_model.prefill(&prompt, &mut cache);
    let dist = tensor::nn::softmax(&logits);
    let yes = f64::from(dist[bpe.yes_token() as usize]);
    let no = f64::from(dist[bpe.no_token() as usize]);
    let p_int8 = if yes + no > 0.0 {
        yes / (yes + no)
    } else {
        0.5
    };
    println!(
        "P(yes): f32 {p_f32:.4}  int8 {p_int8:.4}  (drift {:.4})",
        (p_f32 - p_int8).abs()
    );

    // 3. Ship the weights as a file and reload them bit-exactly.
    let path = std::env::temp_dir().join("edge-deployment-weights.bin");
    weights_io::save_file(&path, &cfg, &weights).expect("save weights");
    let size = std::fs::metadata(&path).expect("stat").len();
    let (cfg2, weights2) = weights_io::load_file(&path).expect("load weights");
    std::fs::remove_file(&path).ok();
    let reloaded = TransformerLM::new(cfg2, weights2);
    let p_reloaded = p_yes(&reloaded, &bpe, question, context, response);
    println!(
        "weights file: {:.1} MiB on disk; reloaded P(yes) {p_reloaded:.4} (exact: {})",
        size as f64 / (1024.0 * 1024.0),
        p_reloaded == p_f32,
    );
}
