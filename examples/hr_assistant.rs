//! End-to-end HR assistant: ingest a handbook into the vector database,
//! answer questions with RAG, and verify every answer before serving it.
//!
//! ```text
//! cargo run -p bench --example hr_assistant
//! ```
//!
//! This is the full Fig. 2 flow through the high-level
//! [`rag::VerifiedRagPipeline`] API: (a) vector-DB retrieval + generation,
//! then (b) the proposed verification framework deciding whether each
//! generated answer is safe to show. Hallucinations are injected into some
//! answers to demonstrate the guardrail firing with its explanation.

use hallu_core::{DetectorConfig, HallucinationDetector};
use rag::generate::GenerationMode;
use rag::pipeline::RagPipeline;
use rag::verified::{GuardedAnswer, VerifiedRagPipeline};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::hnsw::HnswIndex;
use vectordb::metric::Metric;

const HANDBOOK: &[(&str, &str)] = &[
    (
        "hours",
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be at \
         least three shopkeepers to run a shop. Staff lockers are available in the back office.",
    ),
    (
        "leave",
        "Full-time employees are entitled to 14 days of annual leave per calendar year. Unused \
         leave can be carried over for three months into the next year. Requests go through \
         the portal.",
    ),
    (
        "uniform",
        "Uniforms must be worn at all times on the shop floor. A uniform allowance of $300 is \
         provided every year. Damaged uniforms are replaced at no cost after inspection.",
    ),
    (
        "media",
        "All media requests must be forwarded to the communications team. Employees must not \
         speak to journalists on behalf of the company.",
    ),
];

fn main() {
    // 1. Ingest the handbook into an HNSW-indexed vector collection.
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(256, 7)),
        HnswIndex::new(256, Metric::Cosine, 8, 64, 7),
    );
    // Cap answers at two sentences so the extractive generator stays on
    // topic even when retrieval returns more than one chunk.
    let rag = RagPipeline::new(collection, 42).with_llm(rag::generate::SimulatedLlm::new(2));
    for (topic, text) in HANDBOOK {
        let chunks = rag.ingest(text, topic).expect("ingest");
        println!("ingested {topic}: {chunks} chunk(s)");
    }

    // 2. The verification guardrail, wrapped with the RAG pipeline.
    let detector = HallucinationDetector::new(
        vec![
            Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
            Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
        ],
        DetectorConfig {
            parallel: true,
            ..Default::default()
        },
    );
    let mut assistant = VerifiedRagPipeline::new(rag, detector, 0.40);
    assistant
        .warm_up(&[
            "From what time does the store operate?",
            "How many days of annual leave do employees get?",
            "Is a uniform required on the shop floor?",
            "How should employees handle media requests?",
        ])
        .expect("warm-up");

    // 3. Serve faithful answers; inject failures for two questions to show
    //    the guardrail catching them.
    println!(
        "\n--- guarded Q&A (threshold {}) ---\n",
        assistant.threshold
    );
    let traffic = [
        (
            "From what time does the store operate?",
            GenerationMode::Correct,
        ),
        (
            "How many days of annual leave do employees get?",
            GenerationMode::Correct,
        ),
        (
            "Is a uniform required on the shop floor?",
            GenerationMode::Wrong,
        ),
        (
            "How should employees handle media requests?",
            GenerationMode::Partial,
        ),
    ];
    for (question, mode) in traffic {
        let answer = assistant.rag().answer(question, mode).expect("rag answer");
        match assistant.ask_with(answer).expect("verify") {
            GuardedAnswer::Served {
                answer,
                score,
                confidence,
            } => {
                println!("SERVE  (s={score:.3}, {confidence:?}) Q: {question}");
                println!("        A: {}", answer.response);
            }
            GuardedAnswer::Blocked {
                answer,
                score,
                suspected_sentence,
            } => {
                println!("BLOCK  (s={score:.3}) Q: {question}");
                println!("        withheld: {}", answer.response);
                if let Some(s) = suspected_sentence {
                    println!("        suspected hallucination: \"{s}\"");
                }
            }
        }
        println!();
    }
}
