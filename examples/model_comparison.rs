//! Compare all five approaches of §V-C (plus the extensions) on a fresh
//! synthetic dataset and print the Fig. 3-style leaderboard.
//!
//! ```text
//! cargo run -p bench --example model_comparison --release
//! ```
//!
//! Takes a couple of minutes in debug mode; use --release.

use bench::approaches::Approach;
use bench::runner::{score_dataset, task_examples, Task};
use eval::roc::auc;
use eval::sweep::best_f1;
use hallu_core::AggregationMean;
use hallu_dataset::DatasetBuilder;

fn main() {
    // A fresh seed — different from the one the figures use — so this
    // example doubles as a robustness check of the rankings.
    let dataset = DatasetBuilder::new(2026, 60).build();
    println!(
        "dataset: {} sets x 3 labeled responses (seed {})\n",
        dataset.len(),
        dataset.seed
    );

    let all = [
        Approach::Proposed,
        Approach::ChatGpt,
        Approach::PYes,
        Approach::Qwen2Only,
        Approach::MiniCpmOnly,
        Approach::ProposedGated,
        Approach::Ensemble3,
        Approach::Ensemble4,
        Approach::SelfCheck,
    ];

    println!(
        "{:<16} {:>18} {:>18} {:>8}",
        "approach", "F1 (vs wrong)", "F1 (vs partial)", "AUC"
    );
    for approach in all {
        let scores = score_dataset(approach, AggregationMean::Harmonic, &dataset);
        let wrong = task_examples(&scores, Task::CorrectVsWrong);
        let partial = task_examples(&scores, Task::CorrectVsPartial);
        let f1w = best_f1(&wrong).expect("examples").f1;
        let f1p = best_f1(&partial).expect("examples").f1;
        let a = auc(&partial);
        println!("{:<16} {f1w:>18.3} {f1p:>18.3} {a:>8.3}", approach.label());
    }
    println!("\nhigher is better everywhere; 'proposed' should lead the paper roster");
}
