//! Quickstart: score one RAG answer for hallucinations.
//!
//! ```text
//! cargo run -p bench --example quickstart
//! ```
//!
//! Builds the proposed two-SLM detector, calibrates it on a handful of
//! previous responses (Eq. 4's running statistics), and scores the paper's
//! own running example: correct, partially-correct and wrong answers about
//! store working hours.

use hallu_core::{DetectorConfig, HallucinationDetector};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;

fn main() {
    // The retrieved context and user question (§V-A's example).
    let context = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                   There should be at least three shopkeepers to run a shop.";
    let question = "What are the working hours?";

    // The proposed framework: Qwen2 + MiniCPM, sentence splitting, per-model
    // normalization, harmonic-mean checker.
    let mut detector = HallucinationDetector::new(
        vec![
            Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
            Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
        ],
        DetectorConfig::default(),
    );

    // Calibrate the per-model score statistics on previous traffic.
    for previous in [
        "The store opens at 9 AM.",
        "The store is open every day of the week.",
        "There are three shopkeepers per shop.",
        "The store closes at 5 PM sharp.",
        "Shops run from Sunday to Saturday.",
        "The store closes at midnight.",
        "Only one shopkeeper is required.",
        "Stores are closed on Sundays.",
    ] {
        detector.calibrate(question, context, previous);
    }

    let answers = [
        (
            "correct",
            "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
        ),
        (
            "partial",
            "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
        ),
        (
            "wrong",
            "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
        ),
    ];

    println!("question: {question}\ncontext:  {context}\n");
    for (label, answer) in answers {
        let result = detector.score(question, context, answer);
        println!("[{label}] s_i = {:.3}   {answer}", result.score);
        for s in &result.sentences {
            println!("         {:.3}  <- {}", s.combined, s.sentence);
        }
        println!();
    }
    println!("higher s_i = more likely correct; threshold it to flag hallucinations");
}
