//! Golden bitwise-parity suite for the batched scoring engine and the
//! sharded verification cache.
//!
//! The claim under test: batching, parallel probe execution, and memoized
//! verification are *performance* features — they must never change a
//! single decision. Every test here runs the same workload down two paths
//! (sequential/uncached vs batched/cached) and demands `==` on the typed
//! outcomes, which for the f64-carrying types below means bitwise equality
//! of every score, latency charge, and telemetry field.
//!
//! Coverage:
//! - zero load: a cached serving runtime is a transparent wrapper;
//! - overload: all three [`ShedPolicy`]s × all three [`FailurePolicy`]s
//!   under chaos faults, queue bound 2, 150 ms deadlines;
//! - `ask_batch` vs per-question `ask`, including the Eq. 4 normalizer;
//! - `score_all` (parallel + cached) vs `score_batch` (sequential) under
//!   injected faults;
//! - fault isolation: injected garbage, transients, and a hard-down model
//!   never leave an invalid entry in the cache.
//! - paged KV pool: copy-on-write sentence forks, LRU evict-then-refault,
//!   and pool exhaustion all score bitwise-identically to the contiguous
//!   uncached path;
//! - continuous batching: the shared-queue engine decides exactly what the
//!   barrier engine decides, down to identical telemetry snapshots.

use std::sync::Arc;

use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::Obs;
use rag::serving::{Priority, ServingConfig, ServingRuntime, ShedPolicy};
use rag::{FailurePolicy, RagPipeline, ResilientVerifiedPipeline, SimulatedLlm};
use slm_runtime::bpe::Bpe;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{
    CacheConfig, EngineVerifier, FallibleVerifier, FaultInjector, FaultProfile, ModelConfig,
    PagedKvPool, PagedPoolConfig, PagedPrefixCache, PrefixCache, PrefixCacheConfig, Reliable,
    TransformerLM, VerificationCache,
};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// A guarded pipeline over the HR corpus with fault-injected verifiers,
/// warmed on the question set (identical construction on every call, so two
/// calls yield bitwise-identical pipelines).
fn guarded(
    profiles: [FaultProfile; 2],
    policy: FailurePolicy,
) -> ResilientVerifiedPipeline<FlatIndex> {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .unwrap();
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .unwrap();
    let [p0, p1] = profiles;
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
        Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
    ];
    let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, policy);
    p.warm_up(&QUESTIONS).unwrap();
    p
}

/// The chaos profiles used throughout: both models flaky at a 20% mixed
/// fault rate (transients + stalls + garbage).
fn chaos() -> [FaultProfile; 2] {
    [FaultProfile::uniform(7, 0.2), FaultProfile::uniform(8, 0.2)]
}

/// Submit the standard overload workload: 30 requests, 5 ms apart, cycling
/// priorities Low/Normal/High and cycling the four questions (so every
/// question repeats ~7x — plenty of cache reuse).
fn submit_overload(rt: &mut ServingRuntime<FlatIndex>) {
    for i in 0..30u32 {
        let priority = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        rt.submit_at(
            5.0 * f64::from(i),
            QUESTIONS[i as usize % QUESTIONS.len()],
            priority,
        );
    }
}

/// The golden test: under overload (queue bound 2, 150 ms deadlines, chaos
/// faults) the batched+cached runtime decides *exactly* what the sequential
/// uncached runtime decides — same sheds, same deadline misses, same
/// verdicts, same virtual timestamps — across every shed policy × failure
/// policy combination.
#[test]
fn overload_outcomes_are_bitwise_identical_across_all_policies() {
    let shed_policies = [
        ShedPolicy::RejectNewest,
        ShedPolicy::ShedLowestPriority,
        ShedPolicy::LifoUnderOverload,
    ];
    let failure_policies = [
        FailurePolicy::Abstain,
        FailurePolicy::FailOpen,
        FailurePolicy::FailClosed,
    ];
    let mut total_hits = 0u64;
    for shed_policy in shed_policies {
        for failure_policy in failure_policies {
            let config = ServingConfig {
                queue_bound: Some(2),
                shed_policy,
                default_deadline_ms: 150.0,
            };
            let mut plain = ServingRuntime::new(guarded(chaos(), failure_policy), config);
            let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
            let mut batched =
                ServingRuntime::new(guarded(chaos(), failure_policy), config).with_cache(cache);
            submit_overload(&mut plain);
            submit_overload(&mut batched);
            plain.run_until_idle();
            batched.run_until_idle();
            assert_eq!(
                plain.drain_outcomes(),
                batched.drain_outcomes(),
                "{shed_policy:?} x {failure_policy:?}: caching must not move a single decision"
            );
            total_hits += batched.cache().unwrap().stats().hits;
        }
    }
    assert!(
        total_hits > 0,
        "repeated questions under overload must actually exercise the cache"
    );
}

/// Zero-pressure sanity: with no queue bound, no deadlines, and no faults, a
/// cached runtime is a transparent wrapper — bitwise identical to calling
/// the pipeline directly.
#[test]
fn zero_load_cached_runtime_is_a_transparent_wrapper() {
    let healthy = || {
        guarded(
            [FaultProfile::none(1), FaultProfile::none(2)],
            FailurePolicy::Abstain,
        )
    };
    let mut direct = healthy();
    let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
    let mut rt = ServingRuntime::new(healthy(), ServingConfig::default()).with_cache(cache);
    for (i, q) in QUESTIONS.iter().enumerate() {
        rt.submit_at(i as f64, q, Priority::Normal);
    }
    rt.run_until_idle();
    let outcomes = rt.drain_outcomes();
    assert_eq!(outcomes.len(), QUESTIONS.len());
    for (o, q) in outcomes.iter().zip(QUESTIONS) {
        let expected = direct.ask(q).unwrap();
        match &o.disposition {
            rag::Disposition::Completed(got) => assert_eq!(**got, expected, "{q}"),
            other => panic!("{q}: unexpected disposition {other:?}"),
        }
    }
}

/// `ask_batch` (generate-all, prefetch-all, then guard each) returns exactly
/// what per-question `ask` calls return, and leaves the Eq. 4 normalizer in
/// the same state — the prefetch must not observe a single score.
#[test]
fn ask_batch_matches_sequential_asks_under_chaos() {
    let questions = [QUESTIONS[0], QUESTIONS[1], QUESTIONS[0], QUESTIONS[3]];
    let mut sequential = guarded(chaos(), FailurePolicy::Abstain);
    let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
    let mut batched = guarded(chaos(), FailurePolicy::Abstain).with_cache(cache.clone());

    let want: Vec<_> = questions
        .iter()
        .map(|q| sequential.ask(q).unwrap())
        .collect();
    let got = batched.ask_batch(&questions).unwrap();
    assert_eq!(want, got, "batched answers must match sequential answers");
    assert_eq!(
        sequential.detector().normalizer(),
        batched.detector().normalizer(),
        "prefetching must leave calibration statistics untouched"
    );
    assert!(
        cache.stats().hits > 0,
        "the duplicate question must resolve from the cache: {:?}",
        cache.stats()
    );
}

/// Detector-level parity: `score_all` (parallel executor + warm cache) on a
/// duplicate-heavy item list equals `score_batch` on a sequential uncached
/// detector, verdict for verdict, under injected faults.
#[test]
fn score_all_matches_sequential_score_batch_under_chaos() {
    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";
    let responses = [
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
        "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
        "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
        // duplicate of the first item: must coalesce in the batch plan
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
    ];
    let items: Vec<(&str, &str, &str)> = responses.iter().map(|r| (Q, CTX, *r)).collect();

    let build = |parallel: bool| {
        let [p0, p1] = chaos();
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let config = DetectorConfig {
            parallel,
            ..DetectorConfig::default()
        };
        let mut d = ResilientDetector::try_new(verifiers, config).unwrap();
        for r in responses {
            d.calibrate(Q, CTX, r);
        }
        d
    };

    let sequential = build(false);
    let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
    let batched = build(true).with_cache(cache.clone());

    let want = sequential.score_batch(&items);
    let got = batched.score_all(&items);
    assert_eq!(
        want, got,
        "score_all must be bitwise-identical to score_batch"
    );
    assert!(
        cache.stats().hits > 0,
        "the duplicate item must resolve from the cache: {:?}",
        cache.stats()
    );
}

/// Fault isolation: a backend spewing garbage scores and transients — plus
/// one model that is completely down — must never poison the cache. Every
/// memoized entry holds a valid probability, and the dead model contributes
/// no entries at all.
#[test]
fn injected_faults_never_poison_the_cache() {
    const CTX: &str = "Annual leave entitlement is 14 days per calendar year. Unused leave \
                       carries over for three months.";
    const Q: &str = "How many days of annual leave per year?";
    let responses = [
        "Annual leave is 14 days per year. Unused leave carries over for three months.",
        "Annual leave is 30 days per year. Unused leave never carries over.",
        "Leave policy is generous.",
    ];
    let garbage_heavy = FaultProfile {
        transient_rate: 0.3,
        garbage_rate: 0.5,
        ..FaultProfile::none(41)
    };
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(qwen2_sim()),
            garbage_heavy,
        )),
        Box::new(FaultInjector::new(
            Reliable::new(minicpm_sim()),
            FaultProfile::down(42),
        )),
    ];
    let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
    let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default())
        .unwrap()
        .with_cache(cache.clone());

    let items: Vec<(&str, &str, &str)> = responses.iter().map(|r| (Q, CTX, *r)).collect();
    let _ = detector.score_all(&items);
    // a second pass maximizes the chance a poisoned entry would be replayed
    let _ = detector.score_all(&items);

    let entries = cache.entries_snapshot();
    assert!(
        !entries.is_empty(),
        "the surviving model must have produced cacheable outcomes"
    );
    for (key, outcome) in &entries {
        let p = outcome
            .score
            .expect("only outcomes carrying a score are cacheable");
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "cached entry for {key:?} holds an invalid probability {p}"
        );
        assert_ne!(
            key.model, "minicpm-2b-sim",
            "a hard-down model can never contribute a cache entry"
        );
    }
    let stats = cache.stats();
    assert!(
        stats.rejected > 0,
        "garbage scores must have been offered to — and refused by — the cache: {stats:?}"
    );
}

/// Prefix-cache regression: under the standard 20% chaos faults, an
/// engine-backed ensemble that prefills each `(question, context)` prefix
/// once and forks the KV snapshot per sentence scores *bitwise-identically*
/// to the same ensemble prefilling every probe from scratch — and the warm
/// path must actually be taken (hits > 0), so the parity claim is not
/// vacuous.
#[test]
fn prefix_cache_hits_never_change_scores_under_chaos() {
    const CTX: &str = "the store operates from 9 am to 5 pm from sunday to saturday. there \
                       should be at least three shopkeepers to run a shop.";
    const Q: &str = "what are the working hours?";
    // Multi-sentence responses: every sentence probes with the same
    // (question, context) prefix, so one response already exercises the
    // fork path several times per model.
    let responses = [
        "the store operates from 9 am. the store operates to 5 pm. open from sunday to saturday.",
        "the store operates from 9 am to 9 pm. the shop runs with three shopkeepers.",
        "working hours are from sunday to saturday. the store operates from 9 am to 5 pm.",
    ];

    // Identical construction per seed, so the plain and cached ensembles
    // start from bitwise-identical weights and fault streams.
    let engine = |seed: u64, prefix: &Option<Arc<PrefixCache>>| {
        let bpe = Bpe::train(
            &[
                CTX,
                Q,
                "working hours open shop runs with",
                "is the answer correct according to the context reply yes or no",
                "context question answer",
            ],
            250,
        );
        let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), seed);
        let mut v = EngineVerifier::new(format!("engine-{seed}"), model, bpe);
        if let Some(cache) = prefix {
            v = v.with_prefix_cache(cache.clone());
        }
        v
    };
    let build = |prefix: Option<Arc<PrefixCache>>| {
        let [p0, p1] = chaos();
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(engine(41, &prefix)), p0)),
            Box::new(FaultInjector::new(Reliable::new(engine(43, &prefix)), p1)),
        ];
        let mut d = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
        for r in responses {
            d.calibrate(Q, CTX, r);
        }
        d
    };

    let plain = build(None);
    let cache = Arc::new(PrefixCache::new(PrefixCacheConfig::default()));
    let cached = build(Some(cache.clone()));

    let items: Vec<(&str, &str, &str)> = responses.iter().map(|r| (Q, CTX, *r)).collect();
    let want = plain.score_batch(&items);
    let got = cached.score_batch(&items);
    assert_eq!(
        want, got,
        "a prefix-cache hit must never change a verdict or a score"
    );

    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "same-prefix sentence probes must resolve from forked snapshots: {stats:?}"
    );
    assert!(
        stats.inserts >= 2,
        "each model keys its own snapshot — one insert per engine: {stats:?}"
    );
}

// ---------------------------------------------------------------------------
// Paged KV pool parity wall
// ---------------------------------------------------------------------------

const PAGED_CTX: &str = "the store operates from 9 am to 5 pm from sunday to saturday. there \
                         should be at least three shopkeepers to run a shop.";
const PAGED_Q: &str = "what are the working hours?";

/// Multi-sentence responses for the paged chain: every sentence probes with
/// the same `(question, context)` prefix, so one response exercises
/// prefill → fork → extend several times per model.
const PAGED_RESPONSES: [&str; 3] = [
    "the store operates from 9 am. the store operates to 5 pm. open from sunday to saturday.",
    "the store operates from 9 am to 9 pm. the shop runs with three shopkeepers.",
    "working hours are from sunday to saturday. the store operates from 9 am to 5 pm.",
];

/// One fault-injected engine, identical per seed, optionally wired to a
/// shared paged prefix cache.
fn paged_engine(seed: u64, paged: &Option<Arc<PagedPrefixCache>>) -> EngineVerifier {
    let bpe = Bpe::train(
        &[
            PAGED_CTX,
            PAGED_Q,
            "working hours open shop runs with",
            "is the answer correct according to the context reply yes or no",
            "context question answer",
        ],
        250,
    );
    let model = TransformerLM::synthetic(ModelConfig::tiny(bpe.vocab_size()), seed);
    let mut v = EngineVerifier::new(format!("engine-{seed}"), model, bpe);
    if let Some(cache) = paged {
        v = v.with_paged_cache(cache.clone());
    }
    v
}

/// A calibrated two-engine chaos ensemble; construction is identical on
/// every call, so two ensembles differing only in the paged cache start
/// from bitwise-identical weights and fault streams.
fn paged_ensemble(paged: Option<Arc<PagedPrefixCache>>) -> ResilientDetector {
    let [p0, p1] = chaos();
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(paged_engine(41, &paged)),
            p0,
        )),
        Box::new(FaultInjector::new(
            Reliable::new(paged_engine(43, &paged)),
            p1,
        )),
    ];
    let mut d = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    for r in PAGED_RESPONSES {
        d.calibrate(PAGED_Q, PAGED_CTX, r);
    }
    d
}

/// The pool geometry for [`paged_engine`] models. `ModelConfig::tiny`'s
/// layer count and head width do not depend on the vocabulary size, so a
/// placeholder vocab yields the same page shape as the trained engines.
fn paged_geometry() -> ModelConfig {
    ModelConfig::tiny(64)
}

/// Tentpole chain under chaos: an ensemble that prefills each prefix once
/// into pooled pages and copy-on-write-forks the snapshot per sentence
/// scores bitwise-identically to the contiguous from-scratch ensemble —
/// and the warm path is really taken (hits and COW copies both observed).
#[test]
fn paged_forks_are_bitwise_invisible_under_chaos() {
    let plain = paged_ensemble(None);
    let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
        &paged_geometry(),
        256,
    )));
    let cache = Arc::new(PagedPrefixCache::new(
        pool.clone(),
        PrefixCacheConfig::default(),
    ));
    let paged = paged_ensemble(Some(cache.clone()));

    let items: Vec<(&str, &str, &str)> = PAGED_RESPONSES
        .iter()
        .map(|r| (PAGED_Q, PAGED_CTX, *r))
        .collect();
    let want = plain.score_batch(&items);
    let got = paged.score_batch(&items);
    assert_eq!(
        want, got,
        "a pooled COW fork must never change a verdict or a score"
    );

    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "same-prefix sentence probes must resolve from pooled forks: {stats:?}"
    );
    assert!(
        stats.inserts >= 2,
        "each model keys its own pooled snapshot: {stats:?}"
    );
    let pool_stats = pool.stats();
    assert!(
        pool_stats.cow_copies > 0,
        "extending a shared snapshot must copy-on-write its tail page: {pool_stats:?}"
    );
    assert_eq!(
        pool_stats.rejected, 0,
        "a generously sized pool must never reject: {pool_stats:?}"
    );
}

/// Evict-then-refault: with room for a single entry, the two engines evict
/// each other's snapshot on every insert, so warm probes keep refaulting
/// back through the cold path into recycled pages. Scores stay bitwise
/// identical, and once the ensemble and cache drop, every page returns to
/// the pool.
#[test]
fn paged_evict_then_refault_keeps_parity_and_returns_pages() {
    let plain = paged_ensemble(None);
    let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
        &paged_geometry(),
        256,
    )));
    let cache = Arc::new(PagedPrefixCache::new(
        pool.clone(),
        PrefixCacheConfig::with_max_entries(1),
    ));
    let paged = paged_ensemble(Some(cache.clone()));

    let items: Vec<(&str, &str, &str)> = PAGED_RESPONSES
        .iter()
        .map(|r| (PAGED_Q, PAGED_CTX, *r))
        .collect();
    let want = plain.score_batch(&items);
    let got = paged.score_batch(&items);
    assert_eq!(
        want, got,
        "evicting and refaulting a pooled snapshot must not move a score"
    );

    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "two engines sharing one slot must thrash the LRU: {stats:?}"
    );
    assert!(
        stats.inserts > 2,
        "a refault re-inserts the prefix it just lost: {stats:?}"
    );
    assert!(
        pool.stats().releases > 0,
        "evicted snapshots must hand their pages back: {:?}",
        pool.stats()
    );

    drop(paged);
    drop(cache);
    let end = pool.stats();
    assert_eq!(
        end.pages_live, 0,
        "after the ensemble and cache drop, no page may stay live: {end:?}"
    );
}

/// Exhaustion degradation: a pool too small to hold even one prefix rejects
/// every reservation with a typed error, the engines fall back to the
/// contiguous uncached path, and the verdicts stay bitwise identical — no
/// panic, no torn state, no leaked page.
#[test]
fn starved_paged_pool_degrades_without_changing_verdicts() {
    let plain = paged_ensemble(None);
    // Two 8-token pages cannot hold the (context, question) prefix, so
    // every pooled prefill is rejected up front.
    let mut config = PagedPoolConfig::for_model(&paged_geometry(), 2);
    config.block_tokens = 8;
    let pool = Arc::new(PagedKvPool::new(config));
    let cache = Arc::new(PagedPrefixCache::new(
        pool.clone(),
        PrefixCacheConfig::default(),
    ));
    let paged = paged_ensemble(Some(cache.clone()));

    let items: Vec<(&str, &str, &str)> = PAGED_RESPONSES
        .iter()
        .map(|r| (PAGED_Q, PAGED_CTX, *r))
        .collect();
    let want = plain.score_batch(&items);
    let got = paged.score_batch(&items);
    assert_eq!(
        want, got,
        "pool exhaustion must degrade to the uncached path, not change scores"
    );

    let stats = pool.stats();
    assert!(
        stats.rejected > 0,
        "the starved pool must actually have refused reservations: {stats:?}"
    );
    assert_eq!(
        stats.pages_live, 0,
        "a rejected reservation must not leave pages live: {stats:?}"
    );
    assert_eq!(
        cache.stats().inserts,
        0,
        "nothing can be cached when no prefix ever fits: {:?}",
        cache.stats()
    );
}

// ---------------------------------------------------------------------------
// Continuous batching parity wall
// ---------------------------------------------------------------------------

/// Detector-level continuous batching: `score_all` on a parallel detector
/// draining a shared work queue equals `score_batch` on a sequential
/// uncached detector, verdict for verdict, under injected faults.
#[test]
fn continuous_score_all_matches_sequential_score_batch_under_chaos() {
    const CTX: &str = "The store operates from 9 AM to 5 PM, from Sunday to Saturday. \
                       There should be at least three shopkeepers to run a shop.";
    const Q: &str = "What are the working hours?";
    let responses = [
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
        "The working hours are 9 AM to 5 PM. The store is open from Monday to Friday.",
        "The working hours are 9 AM to 9 PM. You do not need to work on weekends.",
        "The working hours are 9 AM to 5 PM. The store is open from Sunday to Saturday.",
    ];
    let items: Vec<(&str, &str, &str)> = responses.iter().map(|r| (Q, CTX, *r)).collect();

    let build = |parallel: bool, continuous: bool| {
        let [p0, p1] = chaos();
        let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
            Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
            Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
        ];
        let config = DetectorConfig {
            parallel,
            continuous,
            ..DetectorConfig::default()
        };
        let mut d = ResilientDetector::try_new(verifiers, config).unwrap();
        for r in responses {
            d.calibrate(Q, CTX, r);
        }
        d
    };

    let sequential = build(false, false);
    let cache = Arc::new(VerificationCache::new(CacheConfig::default()));
    let continuous = build(true, true).with_cache(cache.clone());

    let want = sequential.score_batch(&items);
    let got = continuous.score_all(&items);
    assert_eq!(
        want, got,
        "continuous batching must be bitwise-identical to sequential scoring"
    );
    assert!(
        cache.stats().hits > 0,
        "the duplicate item must resolve from the cache: {:?}",
        cache.stats()
    );
}

/// Serving-level continuous batching: under chaos overload, a runtime with
/// continuous batching switched on decides exactly what the barrier
/// (batch-boundary) runtime decides — same verdicts, sheds, and virtual
/// timestamps — and the two runs emit identical metric snapshots.
#[test]
fn continuous_serving_matches_the_barrier_engine_bitwise() {
    let config = ServingConfig {
        queue_bound: Some(2),
        shed_policy: ShedPolicy::ShedLowestPriority,
        default_deadline_ms: 150.0,
    };
    let run = |parallel: bool, continuous: bool, obs: &Obs| {
        let mut pipeline = guarded(chaos(), FailurePolicy::Abstain);
        pipeline.detector_mut().config.parallel = parallel;
        let mut rt = ServingRuntime::new(pipeline, config)
            .with_continuous_batching(continuous)
            .with_obs(obs);
        submit_overload(&mut rt);
        rt.run_until_idle();
        rt.drain_outcomes()
    };

    let obs_sequential = Obs::new();
    let obs_barrier = Obs::new();
    let obs_continuous = Obs::new();
    let sequential = run(false, false, &obs_sequential);
    let barrier = run(true, false, &obs_barrier);
    let continuous = run(true, true, &obs_continuous);

    assert_eq!(
        sequential, barrier,
        "the barrier engine must not move a verdict, shed, or timestamp"
    );
    assert_eq!(
        barrier, continuous,
        "continuous batching must not move a verdict, shed, or timestamp"
    );
    assert_eq!(
        obs_barrier.metrics_snapshot(),
        obs_continuous.metrics_snapshot(),
        "continuous and barrier runs must emit identical telemetry"
    );
}
