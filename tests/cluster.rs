//! Golden chaos-regression suite for the sharded verification cluster.
//!
//! The claims under test, in the `batch_parity` discipline:
//!
//! - **Chaos is bit-reproducible**: two runs of the same seeded
//!   [`ChaosPlan`] produce identical outcome sequences, identical metric
//!   snapshots, and identical flight records.
//! - **Chaos never invents verdicts**: under injected shard faults every
//!   request either degrades to a typed abstention/shed or decides exactly
//!   what a healthy single runtime decides for that question.
//! - **Blast-radius isolation**: killing one shard of eight loses at most
//!   that shard's keys — every other key's outcome is bitwise identical to
//!   the no-chaos run.
//! - **One outcome per request**, with the serving member named on every
//!   completed outcome.

use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::{critical_path, AlertEvent, Obs, SegmentKind, SloConfig, TraceContext, TraceTree};
use rag::cluster::{
    AbstainCause, ChaosPlan, ClusterConfig, ClusterDisposition, ClusterOutcome, ClusterRuntime,
    ClusterStats, DetectorKind, ReplicationConfig, RouteKind,
};
use rag::serving::{Priority, ServingConfig, ShardIdentity};
use rag::{FailurePolicy, RagPipeline, ResilientVerifiedPipeline, SimulatedLlm};
use slm_runtime::gossip::GossipConfig;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

/// A guarded pipeline over the HR corpus, warmed on the question set.
/// Identical construction per seed, so two calls with the same arguments
/// yield bitwise-identical pipelines.
fn pipeline(fault_rate: f64, seed_base: u64) -> ResilientVerifiedPipeline<FlatIndex> {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .unwrap();
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .unwrap();
    let profiles = if fault_rate > 0.0 {
        [
            FaultProfile::uniform(seed_base, fault_rate),
            FaultProfile::uniform(seed_base + 1, fault_rate),
        ]
    } else {
        [
            FaultProfile::none(seed_base),
            FaultProfile::none(seed_base + 1),
        ]
    };
    let [p0, p1] = profiles;
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(Reliable::new(qwen2_sim()), p0)),
        Box::new(FaultInjector::new(Reliable::new(minicpm_sim()), p1)),
    ];
    let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).unwrap();
    p
}

/// Member factory: one deterministic seed per (shard, replica).
fn factory(fault_rate: f64) -> impl FnMut(ShardIdentity) -> ResilientVerifiedPipeline<FlatIndex> {
    move |identity| {
        pipeline(
            fault_rate,
            1000 + u64::from(identity.shard) * 10 + u64::from(identity.replica),
        )
    }
}

/// Submit `n` requests, `spacing_ms` apart, cycling the four questions and
/// the three priority classes.
fn submit_load(cluster: &mut ClusterRuntime<FlatIndex>, n: u32, spacing_ms: f64) {
    for i in 0..n {
        let priority = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        cluster.submit_at(
            spacing_ms * f64::from(i),
            QUESTIONS[i as usize % QUESTIONS.len()],
            priority,
        );
    }
}

/// Generous per-member config: unbounded queues and effectively infinite
/// deadlines, so the only degradation in these tests comes from chaos.
fn roomy() -> ServingConfig {
    ServingConfig {
        queue_bound: None,
        default_deadline_ms: f64::INFINITY,
        ..ServingConfig::default()
    }
}

/// The standard chaos topology for this suite: 8 shards × (1 primary + 1
/// replica), fast probes, no spill.
fn chaos_config() -> ClusterConfig {
    ClusterConfig {
        replicas: 1,
        serving: roomy(),
        probe_interval_ms: 20.0,
        probe_timeout_ms: 10.0,
        ..ClusterConfig::default()
    }
}

/// Seeded plan used by the determinism and regression tests: 6 failure
/// episodes over the workload window on the 8×2 topology.
fn seeded_plan() -> ChaosPlan {
    ChaosPlan::seeded(0xC4A0_5001, 8, 1, 2_000.0, 6)
}

/// Golden chaos regression: under a seeded fault schedule, every request
/// that the cluster still decides gets the *same verdict class* the
/// healthy no-chaos run gives that request — chaos may only *remove*
/// answers (typed abstentions), never change one. This is the
/// cluster-scope analogue of `batch_parity`'s "same verdict multiset
/// modulo Abstain". (Exact scores drift with each member's Eq. 4
/// calibration history — a request failed over to a replica is scored by
/// a member with a different history — so the invariant is on verdicts,
/// not float identity; the no-replica bitwise claim is
/// `killing_one_shard_loses_only_that_shards_keys` below.)
#[test]
fn chaos_degrades_to_abstention_never_to_different_verdicts() {
    let run = |plan: ChaosPlan| {
        let mut cluster = ClusterRuntime::new(8, chaos_config(), factory(0.0)).with_chaos(plan);
        submit_load(&mut cluster, 96, 20.0);
        cluster.run_until_idle();
        let mut outcomes = cluster.drain_outcomes();
        outcomes.sort_by_key(|o| o.id);
        outcomes
    };
    let healthy = run(ChaosPlan::none());
    let chaotic = run(seeded_plan());
    assert_eq!(healthy.len(), 96, "one outcome per submission");
    assert_eq!(chaotic.len(), 96, "one outcome per submission, chaos too");

    let stats = ClusterStats::from_outcomes(&chaotic);
    let mut decided = 0;
    for (h, c) in healthy.iter().zip(&chaotic) {
        assert_eq!(h.id, c.id);
        match &c.disposition {
            ClusterDisposition::Completed(_) => {
                decided += 1;
                assert_eq!(
                    c.label(),
                    h.label(),
                    "chaos changed a verdict for {:?} (route {:?})",
                    c.question,
                    c.route
                );
                assert!(
                    c.served_by.is_some(),
                    "completed outcomes must name their member: {c:?}"
                );
            }
            ClusterDisposition::Abstained(_) | ClusterDisposition::Shed(_) => {}
            ClusterDisposition::Failed(e) => panic!("retrieval cannot fail here: {e}"),
        }
    }
    assert!(
        decided > 0,
        "the plan must leave room for decided verdicts: {stats:?}"
    );
    assert!(
        stats.cluster_abstained > 0 || stats.failovers > 0,
        "the plan must actually bite (faults observed): {stats:?}"
    );
}

/// Bit-reproducibility: two runs of the same seeded plan produce identical
/// outcome sequences, identical metric snapshots, and identical flight
/// records — chaos included, nothing left to wall clocks or hash order.
#[test]
fn seeded_chaos_runs_are_bitwise_reproducible() {
    let run = |obs: &Obs| {
        let mut cluster = ClusterRuntime::new(8, chaos_config(), factory(0.0))
            .with_obs(obs)
            .with_chaos(seeded_plan());
        submit_load(&mut cluster, 64, 25.0);
        cluster.run_until_idle();
        cluster.drain_outcomes()
    };
    let obs_a = Obs::new();
    let obs_b = Obs::new();
    let a = run(&obs_a);
    let b = run(&obs_b);
    assert_eq!(a, b, "same plan, same outcome sequence");
    assert_eq!(
        obs_a.metrics_snapshot(),
        obs_b.metrics_snapshot(),
        "same plan, same metric snapshot"
    );
    assert_eq!(
        obs_a.flight_records(),
        obs_b.flight_records(),
        "same plan, same flight records"
    );
}

/// Kill one shard of eight (primary only, no replicas, no spill): every
/// key homed elsewhere gets a bitwise-identical outcome to the no-chaos
/// run, and every key on the dead shard still gets a typed outcome.
#[test]
fn killing_one_shard_loses_only_that_shards_keys() {
    let config = ClusterConfig {
        replicas: 0,
        serving: roomy(),
        probe_interval_ms: 20.0,
        probe_timeout_ms: 10.0,
        ..ClusterConfig::default()
    };
    // Find the victim: the home shard of the first question.
    let mut probe = ClusterRuntime::new(8, config, factory(0.0));
    probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
    probe.run_until_idle();
    let victim = probe.drain_outcomes()[0].home_shard;

    let run = |plan: ChaosPlan| {
        let mut cluster = ClusterRuntime::new(8, config, factory(0.0)).with_chaos(plan);
        submit_load(&mut cluster, 64, 25.0);
        cluster.run_until_idle();
        let mut outcomes = cluster.drain_outcomes();
        outcomes.sort_by_key(|o| o.id);
        outcomes
    };
    let healthy = run(ChaosPlan::none());
    let wounded = run(ChaosPlan::none().crash(victim, 0, 300.0, f64::INFINITY));
    assert_eq!(healthy.len(), wounded.len());

    let mut lost = 0;
    for (h, w) in healthy.iter().zip(&wounded) {
        assert_eq!(h.id, w.id);
        if h.home_shard == victim {
            // The victim's keys may degrade — but only to typed cluster
            // abstentions with the crash/unavailability causes.
            match &w.disposition {
                ClusterDisposition::Abstained(
                    AbstainCause::ShardCrashed | AbstainCause::ShardUnavailable,
                ) => lost += 1,
                other => assert_eq!(
                    other, &h.disposition,
                    "victim keys either abstain or match: {w:?}"
                ),
            }
        } else {
            assert_eq!(
                h, w,
                "chaos on shard {victim} must not perturb other shards' keys"
            );
        }
    }
    assert!(
        lost > 0,
        "the crash window must actually cost some of the victim's keys"
    );
    assert!(
        wounded
            .iter()
            .any(|o| o.home_shard == victim
                && matches!(o.disposition, ClusterDisposition::Completed(_))),
        "keys served before the crash complete normally"
    );
}

/// Routing bookkeeping under health: primary routes only, served_by on
/// every outcome, home shard = serving shard, and the stats tally adds up.
#[test]
fn healthy_routing_names_the_primary_member_on_every_outcome() {
    let mut cluster = ClusterRuntime::new(
        8,
        ClusterConfig {
            replicas: 1,
            serving: roomy(),
            ..ClusterConfig::default()
        },
        factory(0.0),
    );
    submit_load(&mut cluster, 32, 30.0);
    cluster.run_until_idle();
    let outcomes: Vec<ClusterOutcome> = cluster.drain_outcomes();
    assert_eq!(outcomes.len(), 32);
    for o in &outcomes {
        assert_eq!(o.route, RouteKind::Primary, "{o:?}");
        let served_by = o.served_by.expect("healthy outcomes name their member");
        assert_eq!(served_by.shard, o.home_shard);
        assert_eq!(served_by.replica, 0);
        assert!(o.finished_at_ms >= o.submitted_at_ms);
    }
    let stats = ClusterStats::from_outcomes(&outcomes);
    assert_eq!(stats.total, 32);
    assert_eq!(
        stats.served + stats.blocked + stats.unverified + stats.abstained,
        32,
        "healthy cluster completes everything: {stats:?}"
    );
    assert_eq!(stats.failovers + stats.spills + stats.cluster_abstained, 0);
}

/// The self-healing topology for the gossip/replication suite: 8 shards ×
/// (1 primary + 1 replica), SWIM gossip detection, replicated caches.
fn healing_config() -> ClusterConfig {
    ClusterConfig {
        detector: DetectorKind::Gossip(GossipConfig::default()),
        replication: Some(ReplicationConfig::default()),
        ..chaos_config()
    }
}

/// Bit-reproducibility with every self-healing subsystem on: same seeded
/// chaos plan, same gossip seed → identical outcome sequences, metric
/// snapshots, flight records, *and* membership timelines. The gossip
/// protocol's randomized probe order is pure arithmetic on its seed.
#[test]
fn gossip_chaos_runs_are_bitwise_reproducible() {
    let run = |obs: &Obs| {
        let mut cluster = ClusterRuntime::new(8, healing_config(), factory(0.0))
            .with_obs(obs)
            .with_chaos(seeded_plan());
        submit_load(&mut cluster, 64, 25.0);
        cluster.run_until_idle();
        let outcomes = cluster.drain_outcomes();
        let timeline = cluster.membership_timeline().to_vec();
        (outcomes, timeline)
    };
    let obs_a = Obs::new();
    let obs_b = Obs::new();
    let (a, tl_a) = run(&obs_a);
    let (b, tl_b) = run(&obs_b);
    assert_eq!(a, b, "same plan + gossip seed, same outcome sequence");
    assert_eq!(
        tl_a, tl_b,
        "same plan + gossip seed, same membership timeline"
    );
    assert!(
        !tl_a.is_empty(),
        "the seeded plan must produce membership transitions"
    );
    assert_eq!(
        obs_a.metrics_snapshot(),
        obs_b.metrics_snapshot(),
        "same plan + gossip seed, same metric snapshot"
    );
    assert_eq!(
        obs_a.flight_records(),
        obs_b.flight_records(),
        "same plan + gossip seed, same flight records"
    );
}

/// The golden verdict invariant survives the new machinery: with gossip
/// detection and cache replication both on, seeded chaos may only remove
/// answers (typed abstentions/sheds), never change a decided verdict
/// relative to the healthy run of the same topology.
#[test]
fn chaos_with_gossip_and_replication_never_changes_a_verdict() {
    let run = |plan: ChaosPlan| {
        let mut cluster = ClusterRuntime::new(8, healing_config(), factory(0.0)).with_chaos(plan);
        submit_load(&mut cluster, 96, 20.0);
        cluster.run_until_idle();
        let mut outcomes = cluster.drain_outcomes();
        outcomes.sort_by_key(|o| o.id);
        outcomes
    };
    let healthy = run(ChaosPlan::none());
    let chaotic = run(seeded_plan());
    assert_eq!(healthy.len(), 96);
    assert_eq!(chaotic.len(), 96);
    let mut decided = 0;
    for (h, c) in healthy.iter().zip(&chaotic) {
        assert_eq!(h.id, c.id);
        match &c.disposition {
            ClusterDisposition::Completed(_) => {
                decided += 1;
                assert_eq!(
                    c.label(),
                    h.label(),
                    "chaos changed a verdict for {:?} (route {:?})",
                    c.question,
                    c.route
                );
            }
            ClusterDisposition::Abstained(_) | ClusterDisposition::Shed(_) => {}
            ClusterDisposition::Failed(e) => panic!("retrieval cannot fail here: {e}"),
        }
    }
    assert!(decided > 0, "the plan must leave room for decided verdicts");
}

/// Blast-radius isolation holds under gossip detection: killing one shard
/// of eight (no replicas, no spill) leaves every other key's outcome
/// bitwise identical to the no-chaos gossip run.
#[test]
fn killing_one_shard_of_eight_is_contained_under_gossip() {
    let config = ClusterConfig {
        replicas: 0,
        serving: roomy(),
        probe_interval_ms: 20.0,
        probe_timeout_ms: 10.0,
        detector: DetectorKind::Gossip(GossipConfig::default()),
        ..ClusterConfig::default()
    };
    let mut probe = ClusterRuntime::new(8, config, factory(0.0));
    probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
    probe.run_until_idle();
    let victim = probe.drain_outcomes()[0].home_shard;

    let run = |plan: ChaosPlan| {
        let mut cluster = ClusterRuntime::new(8, config, factory(0.0)).with_chaos(plan);
        submit_load(&mut cluster, 64, 25.0);
        cluster.run_until_idle();
        let mut outcomes = cluster.drain_outcomes();
        outcomes.sort_by_key(|o| o.id);
        outcomes
    };
    let healthy = run(ChaosPlan::none());
    let wounded = run(ChaosPlan::none().crash(victim, 0, 300.0, f64::INFINITY));
    assert_eq!(healthy.len(), wounded.len());
    let mut lost = 0;
    for (h, w) in healthy.iter().zip(&wounded) {
        assert_eq!(h.id, w.id);
        if h.home_shard == victim {
            match &w.disposition {
                ClusterDisposition::Abstained(
                    AbstainCause::ShardCrashed | AbstainCause::ShardUnavailable,
                ) => lost += 1,
                other => assert_eq!(other, &h.disposition),
            }
        } else {
            assert_eq!(
                h, w,
                "gossip chaos on shard {victim} must not perturb other shards' keys"
            );
        }
    }
    assert!(lost > 0, "the crash must actually cost some victim keys");
}

/// Self-healing end to end: a crashed primary's replica serves cache hits
/// on entries it never computed (shipped by the replication plane), and
/// the flap-damped failover changes the routing view at most once per
/// dwell window even under a flapping member.
#[test]
fn failover_targets_serve_replicated_entries_and_flaps_are_damped() {
    let mut config = healing_config();
    config.hysteresis = slm_runtime::HysteresisConfig::default();
    let mut probe = ClusterRuntime::new(4, config, factory(0.0));
    probe.submit_at(0.0, QUESTIONS[0], Priority::Normal);
    probe.run_until_idle();
    let home = probe.drain_outcomes()[0].home_shard;

    let plan = ChaosPlan::none()
        .crash(home, 0, 2_500.0, f64::INFINITY)
        .flap((home + 1) % 4, 0, 300.0, 80.0, 10);
    let mut cluster = ClusterRuntime::new(4, config, factory(0.0)).with_chaos(plan);
    // Warm the primary, then keep asking the same question after the crash.
    for i in 0..10u32 {
        cluster.submit_at(200.0 * f64::from(i), QUESTIONS[0], Priority::Normal);
    }
    for i in 0..6u32 {
        cluster.submit_at(
            2_700.0 + 200.0 * f64::from(i),
            QUESTIONS[0],
            Priority::Normal,
        );
    }
    cluster.run_until_idle();
    let outcomes = cluster.drain_outcomes();
    let failovers = outcomes
        .iter()
        .filter(|o| matches!(o.route, RouteKind::Failover { .. }))
        .count();
    assert!(failovers > 0, "the crash must fail over to the replica");
    let stats = cluster.cache_stats_total();
    assert!(
        stats.replicated_inserts > 0 && stats.replicated_hits > 0,
        "failover targets must serve entries they never computed: {stats:?}"
    );
    // Flap damping: a member readmitted after going down must have dwelt
    // down at least `min_dwell_ms` (HysteresisConfig::default = 200 ms,
    // doubling per flap inside the flap window), so the 10 fast flap
    // cycles collapse into a handful of routing transitions.
    let damper = slm_runtime::HysteresisConfig::default();
    let flapper = slm_runtime::MemberId {
        shard: (home + 1) % 4,
        replica: 0,
    };
    let mut went_down_at: Option<f64> = None;
    let mut flapper_downs = 0;
    for ev in cluster.membership_timeline() {
        if ev.member != flapper {
            continue;
        }
        if ev.up {
            if let Some(down_at) = went_down_at.take() {
                assert!(
                    ev.at_ms - down_at >= damper.min_dwell_ms,
                    "readmitted before the dwell window elapsed: down at \
                     {down_at}, up at {}",
                    ev.at_ms
                );
            }
        } else {
            flapper_downs += 1;
            went_down_at = Some(ev.at_ms);
        }
    }
    assert!(flapper_downs >= 1, "the flapping member must be detected");
    assert!(
        flapper_downs <= 4,
        "damping must absorb most of the 10 flap cycles, got {flapper_downs} downs"
    );
}

/// One fully-instrumented chaos run: gossip + replication + tracing +
/// SLO burn-rate alerting, returning the three observability artifacts
/// the golden assertions compare.
fn observed_run() -> (Vec<ClusterOutcome>, Vec<TraceTree>, String, Vec<AlertEvent>) {
    let mut cluster = ClusterRuntime::new(8, healing_config(), factory(0.0))
        .with_chaos(seeded_plan())
        .with_slos(vec![
            SloConfig::availability(0.99),
            SloConfig::latency(0.9, 500.0),
        ]);
    submit_load(&mut cluster, 64, 25.0);
    cluster.run_until_idle();
    let mut outcomes = cluster.drain_outcomes();
    outcomes.sort_by_key(|o| o.id);
    (
        outcomes,
        cluster.stitched_traces(),
        cluster.render_prometheus_federated(),
        cluster.alert_timeline().to_vec(),
    )
}

/// The tentpole acceptance claim: two runs from the same `(seed, config)`
/// emit bitwise-identical stitched trace trees, federated exposition
/// pages, and SLO alert timelines — the new observability planes inherit
/// the simulation's determinism end to end.
#[test]
fn traces_federation_and_alerts_are_bitwise_reproducible() {
    let (outcomes_a, traces_a, page_a, alerts_a) = observed_run();
    let (outcomes_b, traces_b, page_b, alerts_b) = observed_run();
    assert_eq!(outcomes_a, outcomes_b, "same plan, same outcome sequence");
    assert_eq!(traces_a, traces_b, "same plan, same stitched trace trees");
    assert_eq!(page_a, page_b, "same plan, same federated exposition page");
    assert_eq!(alerts_a, alerts_b, "same plan, same alert timeline");
    assert_eq!(traces_a.len(), 64, "one stitched trace tree per submission");
    assert!(
        !alerts_a.is_empty(),
        "the seeded plan must trip at least one burn-rate rule"
    );
}

/// Trace semantics: every request's tree is rooted at a router-scope
/// `request` span whose id is the pure function of `(trace_seed, id)`,
/// and the p99 completed request's critical path attributes >= 95% of its
/// wall time to named segments (queue + scoring for a completed request).
#[test]
fn stitched_traces_decompose_request_latency() {
    let (outcomes, traces, _, _) = observed_run();
    let trace_seed = ClusterConfig::default().trace_seed;
    let mut completed: Vec<&ClusterOutcome> = outcomes
        .iter()
        .filter(|o| matches!(o.disposition, ClusterDisposition::Completed(_)))
        .collect();
    assert!(!completed.is_empty(), "chaos must leave survivors");
    completed.sort_by(|a, b| {
        (a.finished_at_ms - a.submitted_at_ms).total_cmp(&(b.finished_at_ms - b.submitted_at_ms))
    });
    let p99 = completed[((completed.len() - 1) as f64 * 0.99).floor() as usize];
    let ctx = TraceContext::root(trace_seed, p99.id);
    let tree = traces
        .iter()
        .find(|t| t.trace_id == ctx.trace_id)
        .expect("the p99 request has a stitched trace");
    assert_eq!(tree.root.span.name, "request");
    assert_eq!(tree.root.span.id, ctx.span_id);
    assert_eq!(tree.root.span.source, "router");
    let path = critical_path(tree);
    assert!(
        path.attributed_fraction() >= 0.95,
        "p99 critical path must attribute >= 95% of wall time, got {:.3}",
        path.attributed_fraction()
    );
    assert!(
        path.ms_in(SegmentKind::Queue) + path.ms_in(SegmentKind::Scoring) > 0.0,
        "a completed request decomposes into queue/scoring time"
    );
    // Every submission's tree exists and is rooted at its derived ids.
    for o in &outcomes {
        let ctx = TraceContext::root(trace_seed, o.id);
        let tree = traces
            .iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("every request stitches into a tree");
        assert_eq!(tree.root.span.id, ctx.span_id, "root is the request span");
    }
}

/// Federation semantics: the merged fleet snapshot sums router counters
/// with member counters under one deterministic page — router-scope
/// series (submitted, routed, replicated), member-scope series
/// (serving outcomes), and the detector's probe counter all co-exist.
#[test]
fn federated_snapshot_spans_router_and_members() {
    let mut cluster =
        ClusterRuntime::new(8, healing_config(), factory(0.0)).with_chaos(seeded_plan());
    submit_load(&mut cluster, 64, 25.0);
    cluster.run_until_idle();
    let fed = cluster.federated();
    assert_eq!(fed.len(), 17, "router + 8 shards x 2 members");
    let snapshot = cluster.federated_snapshot();
    assert_eq!(
        snapshot.total("hallu_cluster_submitted_total"),
        64.0,
        "router counters pass through the merge"
    );
    assert!(
        snapshot.total("hallu_serving_outcomes_total") > 0.0,
        "member counters sum across sinks"
    );
    assert!(
        snapshot.total("hallu_detector_probes_total") > 0.0,
        "the failure detector's probes are mirrored"
    );
    let page = cluster.render_prometheus_federated();
    for family in [
        "hallu_cluster_routed_total",
        "hallu_cluster_replicated_total",
        "hallu_serving_outcomes_total",
    ] {
        assert!(page.contains(family), "federated page must carry {family}");
    }
    // Gauges keep member identity instead of being summed away.
    assert!(
        page.contains("member=\"s0r0\""),
        "gauges carry their member label on the federated page"
    );
}
