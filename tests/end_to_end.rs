//! Cross-crate integration tests: the full paper pipeline from dataset
//! generation through detection to evaluation.

use bench::approaches::Approach;
use bench::runner::{score_dataset, task_examples, Task};
use eval::roc::auc;
use eval::sweep::{best_f1, best_precision_with_min_recall};
use hallu_core::AggregationMean;
use hallu_dataset::{DatasetBuilder, ResponseLabel};

#[test]
fn proposed_detector_reaches_strong_f1_on_both_tasks() {
    let dataset = DatasetBuilder::new(7, 36).build();
    let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &dataset);
    let wrong = best_f1(&task_examples(&scores, Task::CorrectVsWrong)).unwrap();
    let partial = best_f1(&task_examples(&scores, Task::CorrectVsPartial)).unwrap();
    assert!(wrong.f1 >= 0.85, "wrong-task F1 {}", wrong.f1);
    assert!(partial.f1 >= 0.65, "partial-task F1 {}", partial.f1);
    assert!(wrong.f1 > partial.f1, "partial must be the harder task");
}

#[test]
fn ensemble_beats_singles_on_partial_task() {
    // The paper's central claim, checked on a seed the figures don't use.
    let dataset = DatasetBuilder::new(31_337, 48).build();
    let f1_of = |a: Approach| {
        let scores = score_dataset(a, AggregationMean::Harmonic, &dataset);
        best_f1(&task_examples(&scores, Task::CorrectVsPartial))
            .unwrap()
            .f1
    };
    let proposed = f1_of(Approach::Proposed);
    assert!(
        proposed > f1_of(Approach::Qwen2Only),
        "proposed {proposed} <= qwen2"
    );
    assert!(
        proposed > f1_of(Approach::MiniCpmOnly),
        "proposed {proposed} <= minicpm"
    );
    assert!(
        proposed > f1_of(Approach::PYes),
        "proposed {proposed} <= p(yes)"
    );
    assert!(
        proposed > f1_of(Approach::ChatGpt),
        "proposed {proposed} <= chatgpt"
    );
}

#[test]
fn auc_ranks_proposed_over_whole_response_baselines() {
    let dataset = DatasetBuilder::new(99, 36).build();
    let auc_of = |a: Approach| {
        let scores = score_dataset(a, AggregationMean::Harmonic, &dataset);
        auc(&task_examples(&scores, Task::CorrectVsPartial))
    };
    assert!(auc_of(Approach::Proposed) > auc_of(Approach::PYes));
}

#[test]
fn precision_constrained_operating_point_exists_for_proposed() {
    // Fig. 4's product requirement: a high-precision operating point with
    // recall >= 0.5 must exist.
    let dataset = DatasetBuilder::new(5, 36).build();
    let scores = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &dataset);
    for task in [Task::CorrectVsWrong, Task::CorrectVsPartial] {
        let point = best_precision_with_min_recall(&task_examples(&scores, task), 0.5).unwrap();
        assert!(point.recall >= 0.5);
        assert!(
            point.precision >= 0.7,
            "{:?}: p={}",
            task.label(),
            point.precision
        );
    }
}

#[test]
fn label_means_are_ordered_for_every_approach() {
    // Correct responses must average above partial above wrong for every
    // graded approach (the binary ChatGPT baseline is exempt from the
    // partial/wrong distinction).
    let dataset = DatasetBuilder::new(11, 36).build();
    for approach in [Approach::Proposed, Approach::PYes, Approach::Qwen2Only] {
        let scores = score_dataset(approach, AggregationMean::Harmonic, &dataset);
        let mean = |label: ResponseLabel| {
            let v: Vec<f64> = scores
                .iter()
                .filter(|s| s.label == label)
                .map(|s| s.score)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let c = mean(ResponseLabel::Correct);
        let p = mean(ResponseLabel::Partial);
        let w = mean(ResponseLabel::Wrong);
        assert!(
            c > p && p > w,
            "{}: c={c:.3} p={p:.3} w={w:.3}",
            approach.label()
        );
    }
}

#[test]
fn dataset_roundtrips_through_disk_and_scores_identically() {
    let dataset = DatasetBuilder::new(3, 12).build();
    let path = std::env::temp_dir().join(format!("e2e-dataset-{}.json", std::process::id()));
    hallu_dataset::io::save(&dataset, &path).unwrap();
    let reloaded = hallu_dataset::io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &dataset);
    let b = score_dataset(Approach::Proposed, AggregationMean::Harmonic, &reloaded);
    assert_eq!(a, b);
}
