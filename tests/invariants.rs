//! Cross-crate property tests: invariants that must hold for *any* input,
//! checked through the full pipeline rather than per module.

use bench::approaches::{build_detector, Approach};
use hallu_core::AggregationMean;
use hallu_dataset::DatasetBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Detector scores stay in [0, 1] for arbitrary printable inputs, split
    /// or not, calibrated or not.
    #[test]
    fn detector_scores_bounded_on_arbitrary_text(
        question in "[ -~]{0,60}",
        context in "[ -~]{0,120}",
        response in "[ -~]{0,120}",
        calibrate in proptest::bool::ANY,
    ) {
        let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
        if calibrate {
            detector.calibrate(&question, &context, &response);
        }
        let result = detector.score(&question, &context, &response);
        prop_assert!((0.0..=1.0).contains(&result.score), "score {}", result.score);
        for s in &result.sentences {
            prop_assert!((0.0..=1.0).contains(&s.combined));
            for &raw in &s.raw {
                prop_assert!((0.0..=1.0).contains(&raw));
            }
        }
    }

    /// The response score never exceeds the best sentence score and never
    /// falls below the worst (for every aggregation mean).
    #[test]
    fn response_score_bounded_by_sentence_extremes(
        response in "[a-zA-Z0-9 ,.]{10,150}",
        mean_idx in 0usize..5,
    ) {
        let mean = AggregationMean::ALL[mean_idx];
        let mut detector = build_detector(Approach::Proposed, mean);
        let ctx = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
        detector.calibrate("q", ctx, "The store opens at 9 AM.");
        let result = detector.score("q", ctx, &response);
        if result.sentences.is_empty() {
            prop_assert_eq!(result.score, 0.0);
        } else {
            let lo = result.sentences.iter().map(|s| s.combined).fold(f64::INFINITY, f64::min);
            let hi = result.sentences.iter().map(|s| s.combined).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(result.score >= lo - 1e-9, "{} < {lo}", result.score);
            prop_assert!(result.score <= hi + 1e-9, "{} > {hi}", result.score);
        }
    }

    /// Dataset generation upholds its structural contract for any seed/size.
    #[test]
    fn dataset_contract_for_any_seed(seed in 0u64..10_000, n in 1usize..30) {
        let d = DatasetBuilder::new(seed, n).build();
        prop_assert_eq!(d.len(), n);
        for set in &d.sets {
            prop_assert_eq!(set.responses.len(), 3);
            prop_assert!(!set.question.is_empty());
            prop_assert!(set.context.len() > set.question.len());
            use hallu_dataset::ResponseLabel;
            let correct = set.response(ResponseLabel::Correct);
            let partial = set.response(ResponseLabel::Partial);
            let wrong = set.response(ResponseLabel::Wrong);
            prop_assert!(correct.perturbed_sentences.is_empty());
            prop_assert_eq!(partial.perturbed_sentences.len(), 1);
            prop_assert_eq!(partial.ops.len(), 1);
            prop_assert!(!wrong.perturbed_sentences.is_empty());
            prop_assert_eq!(wrong.ops.len(), wrong.perturbed_sentences.len());
            prop_assert_ne!(&correct.text, &partial.text);
            prop_assert_ne!(&correct.text, &wrong.text);
        }
    }

    /// Splitting then re-joining loses no alphanumeric content, end to end
    /// through the detector's sentence report.
    #[test]
    fn sentence_report_preserves_content(response in "[a-zA-Z0-9 .!?]{0,150}") {
        let mut detector = build_detector(Approach::Qwen2Only, AggregationMean::Harmonic);
        let ctx = "Some context.";
        detector.calibrate("q", ctx, "Some response.");
        let result = detector.score("q", ctx, &response);
        let total: usize = response.chars().filter(|c| c.is_alphanumeric()).count();
        let kept: usize = result
            .sentences
            .iter()
            .map(|s| s.sentence.chars().filter(|c| c.is_alphanumeric()).count())
            .sum();
        prop_assert_eq!(total, kept);
    }

    /// `parallel: true` and `parallel: false` produce bitwise-identical
    /// results for arbitrary inputs — including under injected faults, where
    /// the resilient runtime's two-phase execution keeps breaker decisions
    /// in canonical order regardless of thread interleaving.
    #[test]
    fn parallel_equals_sequential_even_under_faults(
        response in "[a-zA-Z0-9 ,.!?]{0,200}",
        seed in 0u64..10_000,
        fault_pct in 0usize..5,
    ) {
        use hallu_core::{DetectorConfig, ResilientDetector};
        use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
        use slm_runtime::profiles::{minicpm_sim, qwen2_sim};

        let ctx = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
        let rate = fault_pct as f64 * 0.1;
        // plain detector: parallel flag must not change a single bit
        let plain = |parallel: bool| {
            let mut d = build_detector(Approach::Proposed, AggregationMean::Harmonic);
            d.config.parallel = parallel;
            d.calibrate("q", ctx, "The store opens at 9 AM.");
            d.score("q", ctx, &response)
        };
        prop_assert_eq!(plain(false), plain(true));
        // resilient detector under injected faults: same guarantee
        let resilient = |parallel: bool| {
            let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
                Box::new(FaultInjector::new(
                    Reliable::new(qwen2_sim()),
                    FaultProfile::uniform(seed, rate),
                )),
                Box::new(FaultInjector::new(
                    Reliable::new(minicpm_sim()),
                    FaultProfile::uniform(seed ^ 0xABCD, rate),
                )),
            ];
            let mut d = ResilientDetector::try_new(
                verifiers,
                DetectorConfig { parallel, ..Default::default() },
            )
            .expect("two verifiers");
            d.calibrate("q", ctx, "The store opens at 9 AM.");
            d.score("q", ctx, &response)
        };
        prop_assert_eq!(resilient(false), resilient(true));
    }

    /// Eq. 4 normalization is rank-preserving: for any pair of responses, the
    /// normalized detector orders them the same way as raw averaging when a
    /// single model is used (monotone transform invariance).
    #[test]
    fn single_model_normalization_preserves_order(
        a in "[a-zA-Z0-9 .]{5,80}",
        b in "[a-zA-Z0-9 .]{5,80}",
    ) {
        let ctx = "The store operates from 9 AM to 5 PM, from Sunday to Saturday.";
        let build = |normalize: bool| {
            let mut d = hallu_core::HallucinationDetector::new(
                vec![Box::new(slm_runtime::profiles::qwen2_sim())
                    as Box<dyn slm_runtime::verifier::YesNoVerifier>],
                hallu_core::DetectorConfig {
                    split: false,
                    normalize,
                    ..Default::default()
                },
            );
            for i in 0..10 {
                d.calibrate("q", ctx, &format!("The store opens at {} AM.", 8 + i % 3));
            }
            d
        };
        let norm = build(true);
        let raw = build(false);
        let (na, nb) = (norm.score("q", ctx, &a).score, norm.score("q", ctx, &b).score);
        let (ra, rb) = (raw.score("q", ctx, &a).score, raw.score("q", ctx, &b).score);
        // strict order must agree (ties may resolve either way)
        if ra > rb + 1e-12 {
            prop_assert!(na >= nb - 1e-12, "normalization flipped the order");
        } else if rb > ra + 1e-12 {
            prop_assert!(nb >= na - 1e-12, "normalization flipped the order");
        }
    }
}
