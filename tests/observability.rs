//! Workspace-level observability contract tests (DESIGN.md §9).
//!
//! 1. **Golden / bitwise neutrality**: a chaos-overload run through the
//!    full stack (serving runtime → guarded pipeline → resilient detector
//!    → fault injectors) decides exactly the same outcomes with a sink
//!    attached as without one.
//! 2. **Determinism**: two identical virtual-clock runs on fresh sinks
//!    emit bitwise-identical metric snapshots, span trees, and flight
//!    records.
//! 3. **Self-containment**: serving flight records and outcomes carry the
//!    request's priority class and the queue depth at decision time.

use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_obs::Obs;
use rag::{
    Disposition, FailurePolicy, Priority, RagPipeline, RequestOutcome, ResilientVerifiedPipeline,
    ServingConfig, ServingRuntime, ShedPolicy, SimulatedLlm,
};
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::{FallibleVerifier, FaultInjector, FaultProfile, Reliable};
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::metric::Metric;

const QUESTIONS: [&str; 4] = [
    "From what time does the store operate?",
    "How many days of annual leave per year?",
    "How many shopkeepers run a shop?",
    "Can unused leave be carried over?",
];

fn pipeline(obs: Option<&Obs>) -> ResilientVerifiedPipeline<FlatIndex> {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(128, 3)),
        FlatIndex::new(128, Metric::Cosine),
    );
    let rag = RagPipeline::new(collection, 7).with_llm(SimulatedLlm::new(2));
    rag.ingest(
        "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
         at least three shopkeepers to run a shop.",
        "hours",
    )
    .unwrap();
    rag.ingest(
        "Annual leave entitlement is 14 days per calendar year. Unused leave carries over \
         for three months.",
        "leave",
    )
    .unwrap();
    let profiles = [
        FaultProfile {
            transient_rate: 0.2,
            stall_rate: 0.05,
            garbage_rate: 0.05,
            ..FaultProfile::none(7)
        },
        FaultProfile {
            transient_rate: 0.2,
            ..FaultProfile::none(8)
        },
    ];
    let [p0, p1] = profiles;
    let mut i0 = FaultInjector::new(Reliable::new(qwen2_sim()), p0);
    let mut i1 = FaultInjector::new(Reliable::new(minicpm_sim()), p1);
    if let Some(obs) = obs {
        i0 = i0.with_obs(obs);
        i1 = i1.with_obs(obs);
    }
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![Box::new(i0), Box::new(i1)];
    let detector = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    let mut p = ResilientVerifiedPipeline::new(rag, detector, 0.45, FailurePolicy::Abstain);
    p.warm_up(&QUESTIONS).unwrap();
    p
}

/// A chaos-overload run: bounded queue, tight deadlines, mixed priorities.
fn run_scenario(obs: Option<&Obs>) -> Vec<RequestOutcome> {
    let mut rt = ServingRuntime::new(
        pipeline(obs),
        ServingConfig {
            queue_bound: Some(2),
            shed_policy: ShedPolicy::ShedLowestPriority,
            default_deadline_ms: 150.0,
        },
    );
    if let Some(obs) = obs {
        rt = rt.with_obs(obs);
    }
    for i in 0..24u32 {
        let priority = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        rt.submit_at(
            4.0 * f64::from(i),
            QUESTIONS[i as usize % QUESTIONS.len()],
            priority,
        );
    }
    rt.run_until_idle();
    rt.drain_outcomes()
}

/// Golden test: every Verdict, shed, and timestamp in the instrumented run
/// equals the bare run bitwise.
#[test]
fn instrumented_chaos_run_is_bitwise_identical() {
    let bare = run_scenario(None);
    let obs = Obs::new();
    let instrumented = run_scenario(Some(&obs));
    assert_eq!(bare, instrumented);
    assert!(
        !obs.flight_records().is_empty(),
        "the instrumented run must actually have recorded flights"
    );
    assert!(
        obs.metrics_snapshot().total("hallu_serving_outcomes_total") > 0.0,
        "the instrumented run must actually have counted outcomes"
    );
}

/// Determinism test: two identical virtual-clock runs produce identical
/// telemetry — metric snapshots, span trees, and flight records.
#[test]
fn identical_runs_emit_identical_telemetry() {
    let obs_a = Obs::new();
    let obs_b = Obs::new();
    let outcomes_a = run_scenario(Some(&obs_a));
    let outcomes_b = run_scenario(Some(&obs_b));
    assert_eq!(
        outcomes_a, outcomes_b,
        "the scenario itself is deterministic"
    );
    assert_eq!(
        obs_a.metrics_snapshot(),
        obs_b.metrics_snapshot(),
        "metric snapshots must match exactly"
    );
    assert_eq!(
        obs_a.span_tree(),
        obs_b.span_tree(),
        "span trees must match exactly"
    );
    assert_eq!(
        obs_a.flight_records(),
        obs_b.flight_records(),
        "flight records must match exactly"
    );
}

/// Satellite 2: shed flight records and outcomes are self-contained — the
/// priority class and queue depth at decision time ride along, so a shed
/// can be interpreted without replaying the queue that caused it.
#[test]
fn serving_outcomes_and_flights_are_self_contained() {
    let obs = Obs::new();
    let outcomes = run_scenario(Some(&obs));
    let sheds: Vec<&RequestOutcome> = outcomes
        .iter()
        .filter(|o| matches!(o.disposition, Disposition::Shed(_)))
        .collect();
    assert!(!sheds.is_empty(), "this load must shed");
    for o in &sheds {
        assert!(
            o.queue_depth_at_decision <= 2,
            "depth cannot exceed the queue bound: {o:?}"
        );
    }
    for record in obs
        .flight_records()
        .iter()
        .filter(|r| r.outcome.starts_with("shed:"))
    {
        assert!(record.field("shed", "reason").is_some(), "{record:?}");
        assert!(record.field("shed", "priority").is_some(), "{record:?}");
        assert!(record.field("shed", "queue_depth").is_some(), "{record:?}");
    }
    // Completed requests carry the guard decision in their record.
    let completed = obs
        .flight_records()
        .iter()
        .find(|r| !r.outcome.starts_with("shed:") && r.outcome != "interrupted")
        .cloned();
    if let Some(r) = completed {
        assert!(
            !r.events_named("service_start").is_empty(),
            "completed flights begin with admission context: {r:?}"
        );
    }
}
