//! Integration tests for the production-facing surface: threshold fitting,
//! explanations, drift monitoring, batch scoring, calibration persistence,
//! the learned meta-checker, and the quantized/persisted engine.

use bench::approaches::{build_detector, Approach};
use bench::runner::{score_dataset_with, task_examples, Task};
use hallu_core::threshold::{fit, Objective};
use hallu_core::{
    explain, response_features, AggregationMean, DriftMonitor, DriftStatus, LogisticCombiner,
};
use hallu_dataset::{DatasetBuilder, ResponseLabel};

/// The full production loop: calibrate → fit threshold → explain verdicts.
#[test]
fn calibrate_fit_explain_loop() {
    let dataset = DatasetBuilder::new(77, 24).build();
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let scores = score_dataset_with(&mut detector, &dataset);
    let fitted = fit(
        &task_examples(&scores, Task::CorrectVsPartial),
        Objective::MaxF1,
    )
    .unwrap();
    assert!(fitted.f1 > 0.6);

    // Explanations at the fitted threshold flag rejected responses' weakest
    // sentence.
    let set = &dataset.sets[0];
    let wrong = set.response(ResponseLabel::Wrong);
    let result = detector.score(&set.question, &set.context, &wrong.text);
    let explanation = explain(&result, fitted.threshold);
    assert!(
        !explanation.accepted,
        "wrong response must be rejected at the fitted threshold"
    );
    assert!(explanation.weakest_sentence.is_some());
    assert!(explanation.summary().contains("REJECT"));
}

/// Calibration statistics survive JSON persistence and transplanting into a
/// fresh detector at startup.
#[test]
fn calibration_persistence_roundtrip() {
    let dataset = DatasetBuilder::new(5, 12).build();
    let mut fitted = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let _ = score_dataset_with(&mut fitted, &dataset);

    let json = serde_json::to_string(fitted.normalizer()).unwrap();
    let restored: hallu_core::ModelNormalizer = serde_json::from_str(&json).unwrap();

    let mut fresh = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    fresh.set_normalizer(restored);
    let set = &dataset.sets[0];
    let r = &set.response(ResponseLabel::Partial).text;
    assert_eq!(
        fitted.score(&set.question, &set.context, r),
        fresh.score(&set.question, &set.context, r)
    );
}

/// Drift monitoring: scores from a shifted domain raise an alert while
/// in-domain traffic stays stable.
#[test]
fn drift_monitor_flags_domain_shift() {
    let dataset = DatasetBuilder::new(13, 24).build();
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let scores = score_dataset_with(&mut detector, &dataset);

    // Baseline from the response-level scores.
    let mut baseline = hallu_core::RunningStats::new();
    for s in &scores {
        baseline.update(s.score);
    }

    // In-domain window: replay the same scores → stable.
    let mut monitor = DriftMonitor::new(baseline.clone(), 30);
    for s in scores.iter().take(30) {
        monitor.observe(s.score);
    }
    assert_eq!(monitor.status(), DriftStatus::Stable);

    // Shifted window: a degenerate generator answering everything wrong.
    let mut shifted = DriftMonitor::new(baseline, 30);
    for s in scores
        .iter()
        .filter(|s| s.label == ResponseLabel::Wrong)
        .take(30)
        .cycle()
        .take(30)
    {
        shifted.observe(s.score);
    }
    assert_eq!(shifted.status(), DriftStatus::Drifted);
}

/// Batch scoring over a dataset slice matches one-by-one scoring.
#[test]
fn batch_scoring_is_consistent() {
    let dataset = DatasetBuilder::new(21, 6).build();
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let _ = score_dataset_with(&mut detector, &dataset);
    detector.config.parallel = true;

    let items: Vec<(&str, &str, &str)> = dataset
        .sets
        .iter()
        .flat_map(|s| {
            s.responses
                .iter()
                .map(move |r| (s.question.as_str(), s.context.as_str(), r.text.as_str()))
        })
        .collect();
    let batch = detector.score_batch(&items);
    assert_eq!(batch.len(), items.len());
    for ((q, c, r), result) in items.iter().zip(&batch) {
        assert_eq!(result, &detector.score(q, c, r));
    }
}

/// The learned meta-checker generalizes across dataset seeds.
#[test]
fn learned_combiner_transfers_across_seeds() {
    let train_set = DatasetBuilder::new(100, 36).build();
    let test_set = DatasetBuilder::new(200, 24).build();
    let mut detector = build_detector(Approach::Proposed, AggregationMean::Harmonic);
    let _ = score_dataset_with(&mut detector, &train_set);

    let collect = |ds: &hallu_dataset::Dataset| -> Vec<(hallu_core::ResponseFeatures, bool)> {
        ds.iter_examples()
            .filter(|(_, r)| r.label != ResponseLabel::Wrong)
            .map(|(s, r)| {
                let result = detector.score(&s.question, &s.context, &r.text);
                (
                    response_features(&result),
                    r.label == ResponseLabel::Correct,
                )
            })
            .collect()
    };
    let train = collect(&train_set);
    let test = collect(&test_set);
    let model = LogisticCombiner::fit(&train, 300, 0.5).unwrap();
    let correct = test
        .iter()
        .filter(|(f, y)| (model.predict(f) >= 0.5) == *y)
        .count();
    let acc = correct as f64 / test.len() as f64;
    assert!(acc >= 0.65, "transfer accuracy {acc}");
}

/// Quantized weights + persisted weights behave inside the verification path.
#[test]
fn engine_quantize_persist_verify() {
    use slm_runtime::bpe::Bpe;
    use slm_runtime::config::ModelConfig;
    use slm_runtime::model::TransformerLM;
    use slm_runtime::quant::QuantizedWeights;
    use slm_runtime::weights::ModelWeights;

    let bpe = Bpe::train(&["the store opens at nine reply yes or no"], 120);
    let cfg = ModelConfig::tiny(bpe.vocab_size());
    let weights = ModelWeights::synthetic(&cfg, 31);

    // quantize → dequantize → persist → load: still a working model
    let quantized = QuantizedWeights::quantize(&weights);
    let mut buf = Vec::new();
    slm_runtime::weights_io::save_f32(&mut buf, &cfg, &quantized.dequantize()).unwrap();
    let (cfg2, weights2) = slm_runtime::weights_io::load_f32(&mut buf.as_slice()).unwrap();
    let model = TransformerLM::new(cfg2, weights2);
    let p = slm_runtime::prob::p_yes(
        &model,
        &bpe,
        "open at nine?",
        "the store opens at nine",
        "nine",
    );
    assert!((0.0..=1.0).contains(&p));
}
