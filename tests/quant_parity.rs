//! Quantization parity wall: the int8 path must track f32 numerically at
//! every GEMM call site, track it behaviorally at the detector level, and be
//! bitwise-invisible to the serving machinery built for the f32 engine.
//!
//! Coverage:
//! - property tests pin the [`QuantizedMatrix`] round-trip error to the
//!   per-row half-scale bound for arbitrary shapes and values;
//! - every projection the transformer actually runs through the integer
//!   kernels (Q/K/V, attention output, SwiGLU gate/up/down, LM head) stays
//!   within a small relative error of its f32 twin;
//! - full int8 prefill logits track f32 logits (cosine + argmax);
//! - an int8 engine behind the paged COW prefix cache scores
//!   bitwise-identically to the same engine without the cache, under the
//!   standard 20% chaos faults — the pool machinery from the f32 tentpole
//!   drives the quantized model unchanged;
//! - golden-suite gate: a mixed-precision ensemble (int8 screeners + f32
//!   tie-breaker) under 20% chaos reproduces the all-f32 ensemble's scores
//!   within the eval tolerance, and reruns bitwise-identically.

use std::sync::Arc;

use eval::roc::auc;
use hallu_core::{DetectorConfig, ResilientDetector};
use hallu_dataset::{DatasetBuilder, ResponseLabel};
use proptest::prelude::*;
use slm_runtime::bpe::Bpe;
use slm_runtime::weights::ModelWeights;
use slm_runtime::{
    EngineVerifier, FallibleVerifier, FaultInjector, FaultProfile, ModelConfig, PagedKvPool,
    PagedPoolConfig, PagedPrefixCache, Precision, PrefixCacheConfig, QuantizedLM, QuantizedMatrix,
    Reliable, TransformerLM,
};
use tensor::{Int8Matrix, Linear, Matrix};

/// Eval-gate tolerance shared with `quant_sweep`: quantization may move a
/// detection score at most this far on average, and detection AUC by at most
/// this much.
const EVAL_TOLERANCE: f64 = 0.05;

/// Deterministic smooth activations in roughly [-1, 1].
fn activations(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((i * 37 + salt * 13) % 101) as f32 - 50.0) / 53.0)
        .collect()
}

fn rel_l2(got: &[f32], want: &[f32]) -> f32 {
    let num: f32 = got
        .iter()
        .zip(want)
        .map(|(g, w)| (g - w) * (g - w))
        .sum::<f32>()
        .sqrt();
    let den: f32 = want.iter().map(|w| w * w).sum::<f32>().sqrt();
    num / den.max(1e-12)
}

// ---------------------------------------------------------------------------
// Property tests: the storage round-trip bound
// ---------------------------------------------------------------------------

proptest! {
    /// Symmetric per-row quantization admits at most half a quantization
    /// step of error per element: |deq − orig| ≤ scale_r / 2 where
    /// scale_r = max|row| / 127.
    #[test]
    fn quantized_matrix_roundtrip_error_is_bounded_by_half_scale(
        rows in 1usize..8,
        cols in 1usize..16,
        vals in prop::collection::vec(-100.0f32..100.0, 128),
    ) {
        let m = Matrix::from_fn(rows, cols, |r, c| vals[(r * cols + c) % vals.len()]);
        let d = QuantizedMatrix::quantize(&m).dequantize();
        for r in 0..rows {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            for c in 0..cols {
                let err = (d.get(r, c) - m.get(r, c)).abs();
                prop_assert!(
                    err <= 0.5 * scale + 1e-6,
                    "({r},{c}): error {err} exceeds half-scale {}",
                    0.5 * scale
                );
            }
        }
    }

    /// The same bound holds for the kernel-layout [`Int8Matrix`] with its
    /// per-output-row calibration scales.
    #[test]
    fn int8_matrix_roundtrip_error_is_bounded_by_half_scale(
        in_f in 1usize..12,
        out_f in 1usize..12,
        vals in prop::collection::vec(-4.0f32..4.0, 64),
    ) {
        let w = Matrix::from_fn(in_f, out_f, |r, c| vals[(r * out_f + c) % vals.len()]);
        let q = Int8Matrix::calibrate(&w);
        let d = q.dequantize();
        for j in 0..out_f {
            let scale = q.scales()[j];
            for r in 0..in_f {
                let err = (d.get(r, j) - w.get(r, j)).abs();
                prop_assert!(err <= 0.5 * scale + 1e-6);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-call-site GEMM tolerance
// ---------------------------------------------------------------------------

/// Every projection the int8 engine routes through the integer kernels must
/// track its f32 twin within 2% relative L2 — checked per layer, per call
/// site, on both the single-row (`apply`, decode) and blocked
/// (`apply_block`, prefill) entry points.
#[test]
fn every_gemm_call_site_tracks_f32_within_tolerance() {
    let cfg = ModelConfig::qwen2_like(512);
    let w = ModelWeights::synthetic(&cfg, 0xCA11);
    let mut sites: Vec<(String, &Matrix)> = vec![("lm_head".into(), &w.lm_head)];
    for (l, layer) in w.layers.iter().enumerate() {
        for (name, m) in [
            ("wq", &layer.wq),
            ("wk", &layer.wk),
            ("wv", &layer.wv),
            ("wo", &layer.wo),
            ("w_gate", &layer.w_gate),
            ("w_up", &layer.w_up),
            ("w_down", &layer.w_down),
        ] {
            sites.push((format!("layer{l}.{name}"), m));
        }
    }
    assert_eq!(sites.len(), 1 + 7 * cfg.n_layers);
    for (site, wf) in &sites {
        let q = Int8Matrix::calibrate(wf);
        let x = activations(wf.rows(), site.len());
        let want = Linear::apply(*wf, &x);
        let got = Linear::apply(&q, &x);
        let err = rel_l2(&got, &want);
        assert!(err < 0.02, "{site}: single-row relative error {err}");

        let xs = Matrix::from_fn(6, wf.rows(), |r, c| activations(wf.rows(), r + 1)[c]);
        let want_b = Linear::apply_block(*wf, &xs);
        let got_b = Linear::apply_block(&q, &xs);
        for i in 0..xs.rows() {
            let err = rel_l2(got_b.row(i), want_b.row(i));
            assert!(err < 0.02, "{site}: blocked row {i} relative error {err}");
        }
    }
}

/// End-to-end logits: a full int8 prefill over a multi-block prompt tracks
/// the f32 engine's logits — same argmax, high cosine similarity. This is
/// the accumulated-error budget across all layers, norms and residuals.
#[test]
fn int8_prefill_logits_track_f32() {
    let cfg = ModelConfig::qwen2_like(512);
    let f32_model = TransformerLM::synthetic(cfg.clone(), 0x1A8);
    let int8_model = QuantizedLM::synthetic(cfg.with_precision(Precision::Int8), 0x1A8);
    for seed in 0..4u64 {
        let prompt: Vec<u32> = (0..48)
            .map(|i| ((i * 97 + seed * 31 + 5) % 512) as u32)
            .collect();
        let mut cf = f32_model.new_cache_with_capacity(prompt.len());
        let mut ci = int8_model.new_cache_with_capacity(prompt.len());
        let want = f32_model.prefill(&prompt, &mut cf);
        let got = int8_model.prefill(&prompt, &mut ci);
        let dot: f32 = got.iter().zip(&want).map(|(g, w)| g * w).sum();
        let cos = dot
            / (got.iter().map(|v| v * v).sum::<f32>().sqrt()
                * want.iter().map(|v| v * v).sum::<f32>().sqrt());
        assert!(cos > 0.99, "prompt {seed}: logit cosine similarity {cos}");
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
        };
        assert_eq!(argmax(&got), argmax(&want), "prompt {seed}: argmax moved");
    }
}

// ---------------------------------------------------------------------------
// Int8 under the paged serving machinery
// ---------------------------------------------------------------------------

const CTX: &str = "the store operates from 9 am to 5 pm from sunday to saturday. there \
                   should be at least three shopkeepers to run a shop.";
const Q: &str = "what are the working hours?";
const RESPONSES: [&str; 3] = [
    "the store operates from 9 am. the store operates to 5 pm. open from sunday to saturday.",
    "the store operates from 9 am to 9 pm. the shop runs with three shopkeepers.",
    "working hours are from sunday to saturday. the store operates from 9 am to 5 pm.",
];

fn golden_bpe() -> Bpe {
    Bpe::train(
        &[
            CTX,
            Q,
            "working hours open shop runs with",
            "is the answer correct according to the context reply yes or no",
            "context question answer",
        ],
        250,
    )
}

/// The standard chaos level from the batch-parity wall: a 20% mixed fault
/// rate (transients + stalls + garbage).
fn chaos(seed: u64) -> FaultProfile {
    FaultProfile::uniform(seed, 0.2)
}

/// One fault-injected *int8* engine, identical per seed, optionally wired to
/// a shared paged COW prefix cache.
fn int8_engine(seed: u64, paged: &Option<Arc<PagedPrefixCache>>) -> EngineVerifier<QuantizedLM> {
    let bpe = golden_bpe();
    let cfg = ModelConfig::tiny(bpe.vocab_size()).with_precision(Precision::Int8);
    let model = QuantizedLM::synthetic(cfg, seed);
    let mut v = EngineVerifier::new(format!("int8-engine-{seed}"), model, bpe);
    if let Some(cache) = paged {
        v = v.with_paged_cache(cache.clone());
    }
    v
}

fn int8_ensemble(paged: Option<Arc<PagedPrefixCache>>) -> ResilientDetector {
    let verifiers: Vec<Box<dyn FallibleVerifier>> = vec![
        Box::new(FaultInjector::new(
            Reliable::new(int8_engine(41, &paged)),
            chaos(7),
        )),
        Box::new(FaultInjector::new(
            Reliable::new(int8_engine(43, &paged)),
            chaos(8),
        )),
    ];
    let mut d = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    for r in RESPONSES {
        d.calibrate(Q, CTX, r);
    }
    d
}

/// The paged KV pool built for the f32 tentpole drives the int8 engine
/// unchanged: pooled COW forks under 20% chaos score bitwise-identically to
/// the contiguous uncached path, and the warm path is really taken.
#[test]
fn int8_paged_forks_are_bitwise_invisible_under_chaos() {
    let plain = int8_ensemble(None);
    let pool = Arc::new(PagedKvPool::new(PagedPoolConfig::for_model(
        &ModelConfig::tiny(64),
        256,
    )));
    let cache = Arc::new(PagedPrefixCache::new(
        pool.clone(),
        PrefixCacheConfig::default(),
    ));
    let paged = int8_ensemble(Some(cache.clone()));

    let items: Vec<(&str, &str, &str)> = RESPONSES.iter().map(|r| (Q, CTX, *r)).collect();
    let want = plain.score_batch(&items);
    let got = paged.score_batch(&items);
    assert_eq!(
        want, got,
        "a pooled COW fork must never change an int8 verdict or score"
    );
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "same-prefix probes must resolve from pooled forks: {stats:?}"
    );
    assert_eq!(
        pool.stats().rejected,
        0,
        "a generously sized pool must never reject: {:?}",
        pool.stats()
    );
}

// ---------------------------------------------------------------------------
// Golden-suite gate: mixed-precision ensemble under chaos
// ---------------------------------------------------------------------------

/// Per-response detection scores of a 3-member engine ensemble at the given
/// member precisions, under 20% chaos, on the golden synthetic dataset.
/// Construction is fully deterministic, so equal-precision calls reproduce
/// bitwise.
fn golden_scores(precisions: [Precision; 3]) -> Vec<(f64, bool)> {
    let dataset = DatasetBuilder::new(1105, 8).build();
    let corpus: Vec<String> = dataset
        .sets
        .iter()
        .flat_map(|s| {
            std::iter::once(s.context.clone())
                .chain(std::iter::once(s.question.clone()))
                .chain(s.responses.iter().map(|r| r.text.clone()))
        })
        .collect();
    let corpus_refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
    let bpe = Bpe::train(&corpus_refs, 300);

    let verifiers: Vec<Box<dyn FallibleVerifier>> = precisions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let cfg = ModelConfig::tiny(bpe.vocab_size()).with_precision(p);
            let seed = 40 + i as u64;
            let name = format!("engine-{i}");
            let v: Box<dyn FallibleVerifier> = match p {
                Precision::F32 => Box::new(FaultInjector::new(
                    Reliable::new(EngineVerifier::new(
                        name,
                        TransformerLM::synthetic(cfg, seed),
                        bpe.clone(),
                    )),
                    chaos(7 + i as u64),
                )),
                Precision::Int8 => Box::new(FaultInjector::new(
                    Reliable::new(EngineVerifier::new(
                        name,
                        QuantizedLM::synthetic(cfg, seed),
                        bpe.clone(),
                    )),
                    chaos(7 + i as u64),
                )),
            };
            v
        })
        .collect();
    let mut d = ResilientDetector::try_new(verifiers, DetectorConfig::default()).unwrap();
    for set in &dataset.sets {
        for r in &set.responses {
            d.calibrate(&set.question, &set.context, &r.text);
        }
    }
    let mut out = Vec::new();
    for set in &dataset.sets {
        for label in [ResponseLabel::Correct, ResponseLabel::Wrong] {
            let r = set.response(label);
            // identical fault streams on both sides make abstentions
            // coincide, so a neutral placeholder cannot mask drift
            let score = d
                .score(&set.question, &set.context, &r.text)
                .score()
                .unwrap_or(0.5);
            out.push((score, label == ResponseLabel::Correct));
        }
    }
    out
}

/// The golden gate: swapping two of three ensemble members to int8 under
/// 20% chaos moves the mean detection score by at most the eval tolerance
/// and the detection AUC by at most the same band — and the mixed run is
/// bitwise-reproducible.
#[test]
fn mixed_precision_golden_suite_stays_within_eval_tolerance_under_chaos() {
    use Precision::{Int8, F32};
    let f32_scores = golden_scores([F32, F32, F32]);
    let mixed_scores = golden_scores([Int8, Int8, F32]);
    assert_eq!(f32_scores.len(), mixed_scores.len());

    let mean_drift = f32_scores
        .iter()
        .zip(&mixed_scores)
        .map(|(&(a, _), &(b, _))| (a - b).abs())
        .sum::<f64>()
        / f32_scores.len() as f64;
    assert!(
        mean_drift <= EVAL_TOLERANCE,
        "mixed-precision mean score drift {mean_drift:.4} exceeds {EVAL_TOLERANCE}"
    );
    let auc_delta = (auc(&f32_scores) - auc(&mixed_scores)).abs();
    assert!(
        auc_delta <= EVAL_TOLERANCE,
        "mixed-precision AUC drift {auc_delta:.4} exceeds {EVAL_TOLERANCE}"
    );

    let rerun = golden_scores([Int8, Int8, F32]);
    assert_eq!(
        mixed_scores, rerun,
        "the mixed ensemble must rerun bitwise-identically under chaos"
    );
}
