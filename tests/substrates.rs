//! Cross-crate integration tests for the substrates: the transformer engine
//! with its tokenizer, the vector database inside the RAG pipeline, and the
//! splitter feeding the detector.

use hallu_core::{DetectorConfig, HallucinationDetector};
use rag::generate::GenerationMode;
use rag::pipeline::RagPipeline;
use slm_runtime::bpe::Bpe;
use slm_runtime::config::ModelConfig;
use slm_runtime::model::TransformerLM;
use slm_runtime::prob::p_yes;
use slm_runtime::profiles::{minicpm_sim, qwen2_sim};
use slm_runtime::verifier::YesNoVerifier;
use vectordb::collection::Collection;
use vectordb::embed::HashingEmbedder;
use vectordb::flat::FlatIndex;
use vectordb::hnsw::HnswIndex;
use vectordb::index::VectorIndex;
use vectordb::ivf::IvfIndex;
use vectordb::metric::Metric;

/// The engine path of Eq. 2: tokenizer + transformer + first-token P(yes).
#[test]
fn engine_extracts_first_token_probability_end_to_end() {
    let corpus = [
        "the store operates from 9 am to 5 pm from sunday to saturday",
        "context question answer is the answer correct according to the context reply yes or no",
        "working hours are 9 am to 5 pm",
    ];
    let bpe = Bpe::train(&corpus, 300);
    let model = TransformerLM::synthetic(ModelConfig::qwen2_like(bpe.vocab_size()), 7);

    let p1 = p_yes(
        &model,
        &bpe,
        "what are the working hours?",
        corpus[0],
        "9 am to 5 pm",
    );
    let p2 = p_yes(
        &model,
        &bpe,
        "what are the working hours?",
        corpus[0],
        "9 am to 9 pm",
    );
    assert!((0.0..=1.0).contains(&p1));
    assert!((0.0..=1.0).contains(&p2));
    // Synthetic weights are uninformative, but the probability must be a
    // real function of the input, computed in one forward pass.
    assert_ne!(p1, p2);
}

/// All three index types retrieve the same top hit on a small corpus.
#[test]
fn flat_ivf_hnsw_agree_on_clear_queries() {
    let docs = [
        "annual leave entitlement is 14 days per calendar year",
        "the probation period lasts three months for new employees",
        "uniforms must be worn at all times inside the store",
        "salaries are paid on day 25 of each month",
        "expense claims must be submitted within 30 days",
    ];
    let embedder = HashingEmbedder::new(128, 5);
    let mut flat = FlatIndex::new(128, Metric::Cosine);
    let mut ivf = IvfIndex::new(128, Metric::Cosine, 2, 2, 5);
    let mut hnsw = HnswIndex::new(128, Metric::Cosine, 8, 32, 5);
    use vectordb::embed::Embedder;
    for (i, d) in docs.iter().enumerate() {
        let v = embedder.embed(d);
        flat.insert(i as u64, v.clone()).unwrap();
        ivf.insert(i as u64, v.clone()).unwrap();
        hnsw.insert(i as u64, v).unwrap();
    }
    ivf.build(10);
    for (query, expect) in [
        ("how long is probation for a new employee?", 1u64),
        ("when are salaries paid?", 3),
        ("how many days of annual leave?", 0),
    ] {
        let q = embedder.embed(query);
        assert_eq!(flat.search(&q, 1).unwrap()[0].0, expect, "flat: {query}");
        assert_eq!(ivf.search(&q, 1).unwrap()[0].0, expect, "ivf: {query}");
        assert_eq!(hnsw.search(&q, 1).unwrap()[0].0, expect, "hnsw: {query}");
    }
}

/// RAG answers feed straight into the detector; grounded answers pass,
/// injected ones fail.
#[test]
fn rag_to_detector_roundtrip() {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(256, 9)),
        FlatIndex::new(256, Metric::Cosine),
    );
    let pipeline = RagPipeline::new(collection, 1).with_llm(rag::generate::SimulatedLlm::new(2));
    pipeline
        .ingest(
            "The store operates from 9 AM to 5 PM, from Sunday to Saturday. There should be \
             at least three shopkeepers to run a shop.",
            "hours",
        )
        .unwrap();

    let mut detector = HallucinationDetector::new(
        vec![
            Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>,
            Box::new(minicpm_sim()) as Box<dyn YesNoVerifier>,
        ],
        DetectorConfig::default(),
    );

    let question = "From what time does the store operate?";
    let good = pipeline.answer(question, GenerationMode::Correct).unwrap();
    let bad = pipeline.answer(question, GenerationMode::Wrong).unwrap();
    for a in [&good, &bad] {
        detector.calibrate(&a.question, &a.context, &a.response);
    }
    // pad calibration with neutral variants
    for i in 0..8 {
        detector.calibrate(
            question,
            &good.context,
            &format!("The store runs shifts, case {i}."),
        );
    }

    let sg = detector
        .score(&good.question, &good.context, &good.response)
        .score;
    let sb = detector
        .score(&bad.question, &bad.context, &bad.response)
        .score;
    assert!(sg > sb, "grounded {sg} vs injected {sb}");
}

/// Hybrid (dense + BM25) retrieval feeds the RAG pipeline: the fused ids
/// resolve back to documents that answer the question.
#[test]
fn hybrid_retrieval_end_to_end() {
    use vectordb::embed::Embedder;
    use vectordb::hybrid::HybridSearcher;
    use vectordb::store::{DocStore, Document};

    let embedder = HashingEmbedder::new(128, 11);
    let mut searcher = HybridSearcher::new(FlatIndex::new(128, Metric::Cosine));
    let mut store = DocStore::new();
    for text in [
        "The store operates from 9 AM to 5 PM from Sunday to Saturday.",
        "Annual leave entitlement is 14 days per calendar year.",
        "Expense claims must be submitted within 30 days with original receipts.",
    ] {
        let id = store.insert(Document::new(text));
        searcher.insert(id, text, embedder.embed(text)).unwrap();
    }
    let q = "how soon must expense claims with receipts be submitted?";
    let hits = searcher.search(q, &embedder.embed(q), 1).unwrap();
    let doc = store.get(hits[0].0).unwrap();
    assert!(doc.text.contains("Expense claims"), "{}", doc.text);
}

/// The splitter's sentence count drives the detector's per-sentence report.
#[test]
fn splitter_and_detector_agree_on_sentence_counts() {
    let mut detector = HallucinationDetector::new(
        vec![Box::new(qwen2_sim()) as Box<dyn YesNoVerifier>],
        DetectorConfig::default(),
    );
    let ctx = "The store opens at 9 AM. Dr. Lee manages the floor.";
    detector.calibrate("q", ctx, "The store opens at 9 AM.");
    let response = "The store opens at 9 AM. Dr. Lee manages the floor. Ask at the desk.";
    let result = detector.score("who manages the floor?", ctx, response);
    assert_eq!(
        result.sentences.len(),
        text_engine::split_sentences(response).len()
    );
    assert_eq!(result.sentences.len(), 3); // "Dr." must not split
}

/// Persistence: a vector snapshot restored into a fresh HNSW index serves
/// the RAG pipeline identically.
#[test]
fn snapshot_restore_preserves_retrieval() {
    let collection = Collection::new(
        Box::new(HashingEmbedder::new(64, 3)),
        FlatIndex::new(64, Metric::Cosine),
    );
    for text in [
        "alpha policy on leave",
        "beta policy on uniforms",
        "gamma policy on email",
    ] {
        collection
            .add(vectordb::store::Document::new(text))
            .unwrap();
    }
    let before = collection.query("uniform policy", 1).unwrap()[0].id;

    let snap = vectordb::persist::snapshot_flat(&collection);
    let mut restored = HnswIndex::new(64, Metric::Cosine, 4, 16, 3);
    let mut store = vectordb::store::DocStore::new();
    vectordb::persist::restore_into(snap, &mut restored, |id, doc| store.put(id, doc)).unwrap();

    use vectordb::embed::Embedder;
    let q = HashingEmbedder::new(64, 3).embed("uniform policy");
    let after = restored.search(&q, 1).unwrap()[0].0;
    assert_eq!(before, after);
    assert!(store.get(after).unwrap().text.contains("uniform"));
}
