//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace benches use — groups, throughput,
//! sample size, `Bencher::iter` — with plain wall-clock timing and one
//! summary line per benchmark. No statistics, plots, or comparisons.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 100,
        }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed samples to aim for (scaled down by this stub).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Time `f`'s `Bencher::iter` body and print a summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "  {}/{}: {per_iter:?}/iter ({} iters){rate}",
            self.name,
            id.into(),
            bencher.iters
        );
        self
    }

    /// End the group. (No-op beyond matching the upstream API.)
    pub fn finish(self) {}
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: one warm-up call, then timed iterations capped at
    /// ~50 ms of wall clock or 1000 iterations, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 1000 {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; this stub ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(64)).sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.finish();
    }
}
