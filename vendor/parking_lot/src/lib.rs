//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly. A poisoned lock
//! (a holder panicked) yields the inner guard anyway, matching
//! `parking_lot`'s behavior of not propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
