//! Boolean strategies.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The strategy type behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}
