//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Inclusive range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(self, rng: &mut StdRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>`.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate hash sets whose elements come from `element`. As upstream, the
/// set may end up smaller than requested when duplicates are drawn.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut out = HashSet::with_capacity(target);
        // Bounded retries: duplicate draws must not loop forever on
        // low-entropy element strategies.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
