//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(...)]` header), `prop_assert*`/`prop_assume`,
//! numeric range strategies, a regex-subset string strategy, tuples,
//! `collection::{vec, hash_set}`, and `bool::ANY`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no entropy, fully reproducible) and failing inputs are
//! reported but **not shrunk**.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case + __rejects,
                );
                let __values = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __desc = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &__values,
                );
                let ($($arg,)+) = __values;
                let __outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.cases.saturating_mul(16).max(256),
                            "proptest `{}`: too many rejected cases (last: {})",
                            stringify!($name),
                            __why,
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case #{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __msg,
                            __desc,
                        );
                    }
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case (with an optional format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current test case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Rejects the current test case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn regex_subset_shapes(
            word in "[a-z]{3,8}",
            line in "[ -~]{0,20}",
            suffixed in "[a-z]{2,4}(s|ed|ing)",
            anything in "\\PC{0,10}",
        ) {
            prop_assert!((3..=8).contains(&word.chars().count()));
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(line.chars().count() <= 20);
            prop_assert!(line.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(
                suffixed.ends_with('s') || suffixed.ends_with("ed") || suffixed.ends_with("ing")
            );
            prop_assert!(anything.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec((0f64..1.0, crate::bool::ANY), 1..30),
            fixed in crate::collection::vec(0f64..1.0, 4),
            names in crate::collection::hash_set("[a-z]{4,9}", 2..6),
        ) {
            prop_assert!((1..30).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(xs.iter().all(|(p, _)| (0.0..1.0).contains(p)));
            prop_assert!(names.len() < 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("t", 0);
        let mut b = crate::test_runner::case_rng("t", 0);
        let s = "[a-zA-Z0-9 :.%$,!?-]{0,100}";
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
