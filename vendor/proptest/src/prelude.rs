//! Common imports for property tests, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Namespaced access to strategy modules, as in `prop::collection::vec`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}
