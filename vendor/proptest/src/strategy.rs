//! The [`Strategy`] trait: a recipe for generating one test input.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// Generates values of `Self::Value` from a seeded RNG.
///
/// Upstream proptest builds a shrink tree; this stand-in only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Debug + Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Debug + Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals act as regex-subset strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
