//! Regex-subset string generation.
//!
//! Supports the constructs this workspace's patterns use: literal characters,
//! escapes, character classes with ranges (`[a-zA-Z0-9 :.%$,!?-]`), the
//! `\PC` non-control property, groups of alternatives (`(s|ed|ing)`), and
//! `{n}`/`{m,n}`/`?`/`*`/`+` repetition. Unsupported syntax panics so a
//! silently-wrong generator can't masquerade as coverage.

use rand::rngs::StdRng;
use rand::Rng;

/// One repeatable unit of the pattern.
#[derive(Debug, Clone)]
struct Node {
    kind: Kind,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum Kind {
    /// A single literal character.
    Char(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// Any non-control character (`\PC` / `.`).
    NotControl,
    /// `(alt|alt|...)` where each alternative is a node sequence.
    Group(Vec<Vec<Node>>),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    let nodes = parse_sequence(&mut chars, pattern, false);
    assert!(chars.is_empty(), "unbalanced `)` in pattern `{pattern}`");
    let mut out = String::new();
    emit_sequence(&nodes, rng, &mut out);
    out
}

fn emit_sequence(nodes: &[Node], rng: &mut StdRng, out: &mut String) {
    for node in nodes {
        let reps = if node.min == node.max {
            node.min
        } else {
            rng.gen_range(node.min..=node.max)
        };
        for _ in 0..reps {
            match &node.kind {
                Kind::Char(c) => out.push(*c),
                Kind::Class(ranges) => out.push(pick_from_ranges(ranges, rng)),
                Kind::NotControl => out.push(pick_from_ranges(NOT_CONTROL, rng)),
                Kind::Group(alts) => {
                    let alt = &alts[rng.gen_range(0..alts.len())];
                    emit_sequence(alt, rng, out);
                }
            }
        }
    }
}

/// Printable sample space for `\PC`: ASCII, Latin, Cyrillic, CJK. (A sample,
/// not the full category complement — generation only needs valid members.)
const NOT_CONTROL: &[(char, char)] = &[
    (' ', '~'),
    ('\u{a1}', '\u{24f}'),
    ('\u{400}', '\u{44f}'),
    ('\u{4e00}', '\u{4e9f}'),
];

fn pick_from_ranges(ranges: &[(char, char)], rng: &mut StdRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
        .sum();
    let mut idx = rng.gen_range(0..total);
    for (lo, hi) in ranges {
        let span = *hi as u32 - *lo as u32 + 1;
        if idx < span {
            return char::from_u32(*lo as u32 + idx).expect("ranges avoid surrogates");
        }
        idx -= span;
    }
    unreachable!("index within total span")
}

/// Parse until end of input or an unconsumed `)`/`|` (when `in_group`).
fn parse_sequence(chars: &mut Vec<char>, pattern: &str, in_group: bool) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.last() {
        if in_group && (c == ')' || c == '|') {
            break;
        }
        chars.pop();
        let kind = match c {
            '[' => parse_class(chars, pattern),
            '(' => parse_group(chars, pattern),
            '\\' => parse_escape(chars, pattern),
            '.' => Kind::NotControl,
            ']' | ')' | '{' | '}' | '|' | '*' | '+' | '?' => {
                panic!("unsupported bare `{c}` in pattern `{pattern}`")
            }
            other => Kind::Char(other),
        };
        let (min, max) = parse_repetition(chars, pattern);
        nodes.push(Node { kind, min, max });
    }
    nodes
}

fn parse_group(chars: &mut Vec<char>, pattern: &str) -> Kind {
    let mut alts = Vec::new();
    loop {
        alts.push(parse_sequence(chars, pattern, true));
        match chars.pop() {
            Some('|') => {}
            Some(')') => return Kind::Group(alts),
            _ => panic!("unterminated group in pattern `{pattern}`"),
        }
    }
}

fn parse_class(chars: &mut Vec<char>, pattern: &str) -> Kind {
    let mut ranges: Vec<(char, char)> = Vec::new();
    loop {
        let c = match chars.pop() {
            None => panic!("unterminated class in pattern `{pattern}`"),
            Some(']') => return Kind::Class(ranges),
            Some('\\') => match parse_escape(chars, pattern) {
                Kind::Char(c) => c,
                _ => panic!("property escapes not supported inside classes: `{pattern}`"),
            },
            Some(c) => c,
        };
        // `a-z` range, unless `-` is the trailing literal before `]`.
        if chars.last() == Some(&'-') && chars.get(chars.len().wrapping_sub(2)) != Some(&']') {
            chars.pop();
            let hi = match chars.pop() {
                Some('\\') => match parse_escape(chars, pattern) {
                    Kind::Char(c) => c,
                    _ => panic!("bad range end in pattern `{pattern}`"),
                },
                Some(hi) if hi != ']' => hi,
                _ => panic!("bad range end in pattern `{pattern}`"),
            };
            assert!(c <= hi, "inverted range `{c}-{hi}` in pattern `{pattern}`");
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_escape(chars: &mut Vec<char>, pattern: &str) -> Kind {
    match chars.pop() {
        Some('n') => Kind::Char('\n'),
        Some('r') => Kind::Char('\r'),
        Some('t') => Kind::Char('\t'),
        Some('0') => Kind::Char('\0'),
        Some('P') => {
            // Negated one-letter property: only `\PC` (non-control) is used.
            match chars.pop() {
                Some('C') => Kind::NotControl,
                other => panic!("unsupported property \\P{other:?} in `{pattern}`"),
            }
        }
        Some(
            c @ ('\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '*' | '+' | '?' | '-' | '^'
            | '$' | '/' | '"' | '\'' | ' '),
        ) => Kind::Char(c),
        other => panic!("unsupported escape \\{other:?} in pattern `{pattern}`"),
    }
}

fn parse_repetition(chars: &mut Vec<char>, pattern: &str) -> (u32, u32) {
    match chars.last() {
        Some('{') => {
            chars.pop();
            let mut body = String::new();
            loop {
                match chars.pop() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => panic!("unterminated `{{` in pattern `{pattern}`"),
                }
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition in `{pattern}`"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse(&body);
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min = parse(lo);
                    let max = if hi.trim().is_empty() {
                        min + 8
                    } else {
                        parse(hi)
                    };
                    assert!(min <= max, "inverted repetition in `{pattern}`");
                    (min, max)
                }
            }
        }
        Some('?') => {
            chars.pop();
            (0, 1)
        }
        Some('*') => {
            chars.pop();
            (0, 8)
        }
        Some('+') => {
            chars.pop();
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn class_with_trailing_dash_and_symbols() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 :.%$,!?-]{0,100}", &mut r);
            assert!(s.len() <= 100);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " :.%$,!?-".contains(c)));
        }
    }

    #[test]
    fn printable_ascii_range_with_newline_escape() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~\\n]{0,40}", &mut r);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn group_alternation_concatenates() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{3,12}(s|ed|ing|ness|tion)", &mut r);
            assert!(
                ["s", "ed", "ing", "ness", "tion"]
                    .iter()
                    .any(|suf| s.ends_with(suf)),
                "{s}"
            );
        }
    }

    #[test]
    fn not_control_property() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,80}", &mut r);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut r = rng();
        let s = generate("ab{3}c", &mut r);
        assert_eq!(s, "abbbc");
    }
}
