//! Test-run configuration and per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a property test executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold: the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// Deterministic RNG for one case of one test: seeded from the fully
/// qualified test name and the case index, so runs are reproducible and
/// independent of execution order.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, then mix in the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    StdRng::seed_from_u64(hash)
}
