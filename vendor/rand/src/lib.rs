//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of `rand` 0.8 it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`]. The
//! generator is a SplitMix64 stream — statistically solid for simulation and
//! test workloads and fully deterministic for a given seed, which is all the
//! reproduction needs. Streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`, so seeded outputs are stable *within* this workspace only.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Range sampling, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g: f32 = rng.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let s = rng.gen_range(-10i64..=-2);
            assert!((-10..=-2).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn integer_draws_cover_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
