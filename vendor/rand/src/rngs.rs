//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: a SplitMix64 counter stream.
///
/// Not the upstream ChaCha12 `StdRng` — streams are deterministic per seed
/// within this workspace but differ from crates.io `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // pre-mix so nearby seeds do not yield nearby first outputs
        Self {
            state: splitmix64(seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64(self.state)
    }
}
