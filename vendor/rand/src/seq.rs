//! Sequence helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Slice extensions, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
    }
}
