//! Deserialization: every type reconstructs itself from a [`Value`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::value::{MapKey, Value};

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent. Errors by default; `Option`
    /// overrides this to yield `None` (serde's implicit-optional behavior).
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::new(format!("missing field `{field}`")))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::new(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if items.len() != $len {
                    return Err(Error::new(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::parse_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::parse_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

// ---- helpers used by the derive-generated code ----

/// View a value as object pairs, with the target type name in the error.
pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::new(format!("expected object for {ty}, got {}", v.kind())))
}

/// Extract a struct field; absent fields defer to
/// [`Deserialize::missing_field`] (so `Option` fields become `None`).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::new(format!("field `{name}`: {e}"))),
        None => T::missing_field(name),
    }
}

/// Extract a `#[serde(default)]` struct field.
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::new(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_fields_default_to_none_when_missing() {
        let got: Option<u32> = field(&[], "absent").unwrap();
        assert_eq!(got, None);
        let err = field::<u32>(&[], "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn numbers_cross_convert() {
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::Int(7)).unwrap(), 7.0);
        assert_eq!(u64::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u64::from_value(&Value::Float(7.5)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        use crate::ser::Serialize;
        let xs = vec![(1u64, vec![0.5f64]), (2, vec![])];
        let v = xs.to_value();
        let back: Vec<(u64, Vec<f64>)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(xs, back);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let back: BTreeMap<String, u32> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);

        let mut h = HashMap::new();
        h.insert(42u64, "doc".to_string());
        let back: HashMap<u64, String> = Deserialize::from_value(&h.to_value()).unwrap();
        assert_eq!(h, back);
    }
}
