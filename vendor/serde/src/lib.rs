//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal serialization framework that is *source-compatible* with how this
//! repository uses serde: `#[derive(Serialize, Deserialize)]` on named-field
//! structs and unit/tuple-variant enums, `#[serde(default)]`, and
//! `#[serde(skip_serializing_if = "path")]`. Instead of serde's visitor
//! architecture, everything round-trips through a concrete [`value::Value`]
//! tree; the companion `serde_json` vendor crate renders that tree as JSON.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
