//! Serialization: every type renders itself into a [`Value`].

use std::collections::{BTreeMap, HashMap};

use crate::value::{MapKey, Value};

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // sort for deterministic output regardless of hasher state
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
