//! The generic data tree every type serializes into.

/// A JSON-shaped value. Integers and floats are kept distinct so `u64`
/// fields (seeds, counters) round-trip exactly; objects preserve insertion
/// order for deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers the full i64/u64 range).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value; floats with zero fraction convert.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types usable as map keys (JSON object keys are strings).
pub trait MapKey: Sized {
    /// Render the key as a string.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn parse_key(s: &str) -> Result<Self, crate::de::Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn parse_key(s: &str) -> Result<Self, crate::de::Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn parse_key(s: &str) -> Result<Self, crate::de::Error> {
                s.parse().map_err(|_| {
                    crate::de::Error::new(format!("invalid integer map key `{s}`"))
                })
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
