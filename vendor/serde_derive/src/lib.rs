//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (a concrete value-tree model, not serde's visitor machinery) for
//! the shapes this workspace uses: named-field structs and enums with unit
//! or tuple variants, honoring `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`. Anything fancier (generics,
//! struct variants, renames) panics at compile time with a clear message —
//! extend the parser when the workspace needs more.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline): parse tokens into a tiny IR, then emit
//! the impl as a string and re-parse it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

/// Derive the vendored `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => serialize_struct(&item.name, fields),
        Shape::Enum(variants) => serialize_enum(variants),
    };
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive the vendored `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => deserialize_struct(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::de::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::value::Value) \
                 -> Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---- codegen ----

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut out =
        String::from("let mut __fields: Vec<(String, ::serde::value::Value)> = Vec::new();\n");
    for f in fields {
        let push = format!(
            "__fields.push((\"{n}\".to_string(), \
             ::serde::ser::Serialize::to_value(&self.{n})));",
            n = f.name
        );
        if let Some(skip) = &f.skip_if {
            out.push_str(&format!("if !{skip}(&self.{n}) {{ {push} }}\n", n = f.name));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    let _ = name;
    out.push_str("::serde::value::Value::Object(__fields)");
    out
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut out = format!("let __obj = ::serde::de::as_object(__v, \"{name}\")?;\nOk(Self {{\n");
    for f in fields {
        let getter = if f.default {
            "field_or_default"
        } else {
            "field"
        };
        out.push_str(&format!(
            "{n}: ::serde::de::{getter}(__obj, \"{n}\")?,\n",
            n = f.name
        ));
    }
    out.push_str("})");
    out
}

fn serialize_enum(variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        match v.arity {
            0 => out.push_str(&format!(
                "Self::{n} => ::serde::value::Value::String(\"{n}\".to_string()),\n",
                n = v.name
            )),
            1 => out.push_str(&format!(
                "Self::{n}(__f0) => ::serde::value::Value::Object(vec![(\
                 \"{n}\".to_string(), ::serde::ser::Serialize::to_value(__f0))]),\n",
                n = v.name
            )),
            arity => {
                let binders: Vec<String> = (0..arity).map(|i| format!("__f{i}")).collect();
                let values: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                    .collect();
                out.push_str(&format!(
                    "Self::{n}({binds}) => ::serde::value::Value::Object(vec![(\
                     \"{n}\".to_string(), ::serde::value::Value::Array(\
                     vec![{vals}]))]),\n",
                    n = v.name,
                    binds = binders.join(", "),
                    vals = values.join(", "),
                ));
            }
        }
    }
    out.push('}');
    out
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        match v.arity {
            0 => unit_arms.push_str(&format!("\"{n}\" => Ok(Self::{n}),\n", n = v.name)),
            1 => data_arms.push_str(&format!(
                "\"{n}\" => Ok(Self::{n}(::serde::de::Deserialize::from_value(__val)?)),\n",
                n = v.name
            )),
            arity => {
                let gets: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::de::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{n}\" => {{\n\
                     let __items = __val.as_array().ok_or_else(|| \
                         ::serde::de::Error::expected(\"array for variant {n}\", __val))?;\n\
                     if __items.len() != {arity} {{\n\
                         return Err(::serde::de::Error::new(format!(\
                             \"variant {n} expects {arity} values, got {{}}\", \
                             __items.len())));\n\
                     }}\n\
                     Ok(Self::{n}({gets}))\n\
                     }}\n",
                    n = v.name,
                    gets = gets.join(", "),
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => Err(::serde::de::Error::new(format!(\
             \"unknown variant `{{__other}}` for {name}\"))),\n\
         }},\n\
         ::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
         let (__k, __val) = &__pairs[0];\n\
         match __k.as_str() {{\n\
         {data_arms}\
         __other => Err(::serde::de::Error::new(format!(\
             \"unknown variant `{{__other}}` for {name}\"))),\n\
         }}\n\
         }},\n\
         __other => Err(::serde::de::Error::expected(\"{name} variant\", __other)),\n\
         }}"
    )
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let keyword = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("vendored serde_derive: `{name}` has no brace-delimited body"),
        }
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Skip `#[...]` attribute pairs, returning the serde-relevant ones seen.
fn take_attributes(toks: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = toks.get(*i + 1) {
            parse_serde_attr(attr.stream(), &mut default, &mut skip_if);
            *i += 2;
        } else {
            break;
        }
    }
    (default, skip_if)
}

fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    let _ = take_attributes(toks, i);
}

fn parse_serde_attr(stream: TokenStream, default: &mut bool, skip_if: &mut Option<String>) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment, #[default], etc.
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "default" => {
                    *default = true;
                    j += 1;
                }
                "skip_serializing_if" => {
                    // skip_serializing_if = "Some::path"
                    let Some(TokenTree::Literal(lit)) = inner.get(j + 2) else {
                        panic!("vendored serde_derive: malformed skip_serializing_if");
                    };
                    *skip_if = Some(unquote(&lit.to_string()));
                    j += 3;
                }
                other => panic!("vendored serde_derive: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            other => panic!("vendored serde_derive: unexpected attribute token `{other}`"),
        }
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (default, skip_if) = take_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        expect_punct(&toks, &mut i, ':');
        skip_type(&toks, &mut i);
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("vendored serde_derive: struct variant `{name}` not supported")
                }
                _ => {}
            }
        }
        // trailing comma (or end of stream)
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, arity });
    }
    variants
}

/// Count top-level comma-separated types inside a tuple variant's parens.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// Advance past a field type: everything up to the next top-level comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("vendored serde_derive: expected identifier, got {other:?}"),
    }
}

fn expect_punct(toks: &[TokenTree], i: &mut usize, ch: char) {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ch => *i += 1,
        other => panic!("vendored serde_derive: expected `{ch}`, got {other:?}"),
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}
