//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree as JSON text and parses JSON
//! back into it. Output conventions match upstream `serde_json` where the
//! workspace depends on them: compact `to_string`, two-space-indented
//! `to_string_pretty`, floats always printed with a decimal point or
//! exponent (`1.0`, not `1`), non-finite floats as `null`.

mod parse;
mod write;

use std::fmt;

pub use serde::value::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
///
/// # Errors
/// Infallible for tree-shaped data; kept fallible for API compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serialize to a pretty JSON string (two-space indent).
///
/// # Errors
/// Infallible for tree-shaped data; kept fallible for API compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Serialize compactly into a writer.
///
/// # Errors
/// Propagates writer I/O failures.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(write::compact(&value.to_value()).as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Parse a JSON string into any deserializable type.
///
/// # Errors
/// Malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::de::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(
            to_string(&1.0f64).unwrap(),
            "1.0",
            "floats keep a decimal point"
        );
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<Vec<u64>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let ugly = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&ugly.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, ugly);
        let unicode: String = from_str(r#""é中😀""#).unwrap();
        assert_eq!(unicode, "é中😀");
    }

    #[test]
    fn nested_value_round_trips() {
        let text = r#"{"a": [1, 2.5, null], "b": {"c": true, "d": "x"}}"#;
        let v: Value = from_str(text).unwrap();
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn pretty_format_matches_upstream_conventions() {
        let v: Value = from_str(r#"{"k": [1], "e": []}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ],\n  \"e\": []\n}"
        );
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn to_writer_writes_bytes() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u8, 2]).unwrap();
        assert_eq!(buf, b"[1,2]");
    }
}
