//! Recursive-descent JSON parser producing the vendored serde [`Value`] tree.

use serde::value::Value;

use crate::Error;

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape advanced past its digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar; input is a &str so
                    // boundaries are trustworthy.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid hex in \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse(r#""Aé😀\n""#).unwrap();
        assert_eq!(v, Value::String("Aé😀\n".to_string()));
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-12").unwrap(), Value::Int(-12));
        assert_eq!(parse("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert!(parse("1.2.3").is_err());
    }

    #[test]
    fn rejects_unpaired_surrogate() {
        assert!(parse(r#""\ud800""#).is_err());
    }
}
