//! JSON text rendering with upstream `serde_json` formatting conventions.

use std::fmt::Write as _;

use serde::value::Value;

pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                separate(out, i, indent, depth);
                write_value(out, item, indent, depth + 1);
            }
            close(out, items.is_empty(), indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                separate(out, i, indent, depth);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            close(out, pairs.is_empty(), indent, depth);
            out.push('}');
        }
    }
}

fn separate(out: &mut String, index: usize, indent: Option<&str>, depth: usize) {
    if index > 0 {
        out.push(',');
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str(pad);
        }
    }
}

fn close(out: &mut String, empty: bool, indent: Option<&str>, depth: usize) {
    // Empty containers render as `[]`/`{}` with no line break, matching
    // serde_json's pretty formatter.
    if empty {
        return;
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    if f == f.trunc() && f.abs() < 1e16 {
        // Match serde_json/ryu: integral floats keep a trailing `.0`.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_format_like_serde_json() {
        let mut s = String::new();
        write_float(&mut s, 2.0);
        assert_eq!(s, "2.0");
        s.clear();
        write_float(&mut s, 0.125);
        assert_eq!(s, "0.125");
        s.clear();
        write_float(&mut s, -3.0);
        assert_eq!(s, "-3.0");
    }
}
